"""SLA serving-gateway benchmarks.

Two macro cases time the ``serve-sim`` path — the gateway serving the
four-tenant million-user workload at one grid point, and the full
1/2/4-drive sweep behind ``python -m repro serve-sim`` — and each
asserts the sweep's headline findings as a guard: every request gets a
typed outcome (zero lost), every tenant makes its p999 SLO, and the
weighted fair share holds (the gold tier's mean response time beats
the batch tier's at every drive count).
"""

import pytest

from repro.experiments import serve_sim

from conftest import run_once


@pytest.fixture(scope="module")
def serve_config(quick_config):
    return quick_config


def test_gateway_serving_loop(benchmark, serve_config):
    points = run_once(
        benchmark,
        serve_sim.run_point,
        serve_config,
        drives=4,
        horizon_hours=1.0,
    )
    assert all(p.run_lost == 0 for p in points)
    assert all(p.slo_ok for p in points)


def test_serve_sim_sweep(benchmark, serve_config):
    result = run_once(
        benchmark,
        serve_sim.run,
        serve_config,
        horizon_hours=1.0,
    )
    assert result.all_complete
    assert result.slo_ok
    # Weighted fair sharing's headline: the premium tier's mean beats
    # the best-effort tier's at every drive count.
    for drives in serve_sim.DEFAULT_DRIVES:
        by_tenant = {
            p.tenant: p for p in result.points if p.drives == drives
        }
        assert (
            by_tenant["gold"].mean_response_seconds
            < by_tenant["batch"].mean_response_seconds
        )
