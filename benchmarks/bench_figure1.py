"""Figure 1 — the locate/rewind curve sweep from segment 0."""

from conftest import run_once

from repro.experiments import figure1


def test_figure1(benchmark):
    result = run_once(benchmark, figure1.run, 1)
    # Headline: sawtooth with ~5 s forward / ~25 s reverse dips.
    assert 4.0 < result.forward_dip_drop < 8.0
    assert 20.0 < result.reverse_dip_drop < 30.0
    assert 700 < result.dip_segments.size < 1000
    benchmark.extra_info["forward_dip_s"] = round(
        result.forward_dip_drop, 2
    )
    benchmark.extra_info["reverse_dip_s"] = round(
        result.reverse_dip_drop, 2
    )
