"""Lint-speed guard: the gate must stay cheap enough to run always.

A static-analysis pass only ratchets anything if developers actually
run it, and they only run it if it is fast.  The pytest-benchmark
case tracks the full-tree wall time in reports; the timed guards
pin the hard ceilings from the PR contracts: linting all of
``src/repro`` — parse, per-module rules, cross-module passes,
suppression filtering — must finish in under 10 seconds, and the
whole-program *flow* analysis (graph build + RPR007-RPR010) must
finish in under 30 seconds.
"""

import time
from pathlib import Path

import pytest

from repro.lint import flow_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"

#: Hard wall-time ceiling for one full-tree run (seconds).
FULL_TREE_BUDGET_SECONDS = 10.0

#: Hard wall-time ceiling for one flow-only analysis (seconds).
FLOW_BUDGET_SECONDS = 30.0


@pytest.fixture(scope="module")
def warm():
    """One throwaway run so import costs stay out of the measurement."""
    return run_lint([SRC], root=REPO_ROOT)


def test_full_tree_lint(benchmark, warm):
    run = benchmark(run_lint, [SRC], root=REPO_ROOT)
    assert run.files_checked == warm.files_checked


def test_full_tree_lint_under_budget(warm):
    """Timed guard (no pytest-benchmark): best of 3 under 10 s."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        run = run_lint([SRC], root=REPO_ROOT)
        best = min(best, time.perf_counter() - start)
    assert run.files_checked > 100
    assert best < FULL_TREE_BUDGET_SECONDS, (
        f"full-tree lint took {best:.2f}s — over the "
        f"{FULL_TREE_BUDGET_SECONDS:.0f}s budget; profile the rules "
        "before raising this ceiling"
    )


def test_flow_analysis_of_src_repro(benchmark, warm):
    """Track the whole-program flow pass (graph + RPR007-RPR010)."""
    run = benchmark(
        run_lint, [SRC], rules=flow_rules(), root=REPO_ROOT
    )
    assert run.files_checked == warm.files_checked


def test_flow_analysis_under_budget(warm):
    """Timed guard: flow-only analysis, best of 3 under 30 s.

    Every run rebuilds the symbol table and call graph from scratch
    (fresh ProjectContext), so this bounds the true cold cost the CI
    gate pays — not a memoized rerun.
    """
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        run = run_lint([SRC], rules=flow_rules(), root=REPO_ROOT)
        best = min(best, time.perf_counter() - start)
    assert run.files_checked > 100
    assert best < FLOW_BUDGET_SECONDS, (
        f"flow analysis took {best:.2f}s — over the "
        f"{FLOW_BUDGET_SECONDS:.0f}s budget; profile the graph "
        "build and fixpoint before raising this ceiling"
    )
