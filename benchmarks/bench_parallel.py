"""The parallel experiment engine on a reduced Figure 4 grid.

Two guarantees are measured/asserted here:

* **bit identity** — the ``workers=4`` run must reproduce the serial
  run cell for cell (count, mean, std, exact ``==``), on any machine,
  always;
* **speedup** — with at least 4 physical cores the fan-out must beat
  serial by >= 2.5x.  On smaller machines (CI shells, 1-2 core
  containers) the speedup is physically unobservable, so only the
  identity half is asserted there.
"""

from __future__ import annotations

import os
import time

from repro.experiments import ExperimentConfig, run_per_locate

from conftest import run_once

#: Reduced Figure 4 grid: enough work (~seconds serial) to amortize
#: pool start-up, small enough to keep the bench suite fast.
_GRID = (2, 4, 8, 16, 32, 64)
_ALGORITHMS = ("FIFO", "SORT", "LOSS", "OPT")


def _config() -> ExperimentConfig:
    return ExperimentConfig(lengths=_GRID, scale="quick")


def _assert_identical(serial, parallel) -> None:
    assert set(serial.points) == set(parallel.points)
    for key in serial.points:
        a, b = serial.points[key], parallel.points[key]
        assert a.total.count == b.total.count, key
        assert a.total.mean == b.total.mean, key
        assert a.total.std == b.total.std, key


def test_workers4_bit_identical_speedup(benchmark):
    config = _config()
    started = time.perf_counter()
    serial = run_per_locate(
        config, origin_at_start=False, algorithms=_ALGORITHMS,
        workers=1,
    )
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_once(
        benchmark, run_per_locate, config, False,
        algorithms=_ALGORITHMS, workers=4,
    )
    # Wall clock around the (single-round) benchmarked call, so the
    # speedup check also works under --benchmark-disable.
    parallel_seconds = time.perf_counter() - started
    _assert_identical(serial, parallel)

    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 2)
    cores = os.cpu_count() or 1
    benchmark.extra_info["cores"] = cores
    if cores >= 4:
        assert speedup >= 2.5, (
            f"workers=4 only {speedup:.2f}x faster than serial "
            f"({serial_seconds:.2f}s -> {parallel_seconds:.2f}s) "
            f"on {cores} cores"
        )


def test_workers2_bit_identical(benchmark):
    """The identity guarantee at a second worker count (and the cost
    of the chunked path itself relative to the legacy loop is visible
    in the timing columns across the two benches)."""
    config = _config()
    serial = run_per_locate(
        config, origin_at_start=False, algorithms=_ALGORITHMS,
        workers=1,
    )
    parallel = run_once(
        benchmark, run_per_locate, config, False,
        algorithms=_ALGORITHMS, workers=2,
    )
    _assert_identical(serial, parallel)
