"""Ablation — OPT via Held–Karp vs permutation enumeration.

The paper's OPT enumerates permutations (936 s for 12 locates on 1995
hardware).  Held–Karp is exact with a 2ⁿ table; this bench documents
the gap that lets our OPT cover the whole published range instantly.
"""

import time

import pytest

from repro.geometry import generate_tape
from repro.model import LocateTimeModel
from repro.scheduling import BruteForceOptScheduler, OptScheduler
from repro.workload import UniformWorkload


@pytest.fixture(scope="module")
def setup():
    tape = generate_tape(seed=1)
    model = LocateTimeModel(tape)
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=11
    )
    origin, batch = workload.sample_batch_with_origin(9, False)
    return model, origin, batch.tolist()


def test_held_karp_at_12(benchmark):
    tape = generate_tape(seed=1)
    model = LocateTimeModel(tape)
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=13
    )
    origin, batch = workload.sample_batch_with_origin(12, False)
    schedule = benchmark(
        OptScheduler().schedule, model, origin, batch.tolist()
    )
    benchmark.extra_info["estimate_s"] = round(
        schedule.estimated_seconds, 1
    )


def test_exactness_and_speed_vs_brute_force(benchmark, setup):
    model, origin, batch = setup

    brute = benchmark.pedantic(
        BruteForceOptScheduler().schedule,
        args=(model, origin, batch),
        rounds=1,
        iterations=1,
    )
    brute_cpu = benchmark.stats.stats.mean

    started = time.perf_counter()
    dp = OptScheduler().schedule(model, origin, batch)
    dp_cpu = time.perf_counter() - started

    assert dp.estimated_seconds == pytest.approx(
        brute.estimated_seconds
    )
    # 9! permutations vs a 512-entry table.
    assert dp_cpu < brute_cpu
    benchmark.extra_info["held_karp_cpu_s"] = round(dp_cpu, 4)
