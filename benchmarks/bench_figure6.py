"""Figure 6 — CPU seconds to generate a schedule.

Absolute values are modern-hardware numbers; the reproduction target is
the growth ordering: OPT exponential, LOSS clearly superlinear, the
others cheap.
"""

from conftest import run_once

from repro.experiments import ExperimentConfig, figure6


def test_figure6(benchmark):
    config = ExperimentConfig(
        scale="quick", lengths=(4, 8, 12, 64, 192)
    )
    result = run_once(benchmark, figure6.run, config)

    # OPT's cost explodes with size while SORT stays flat.
    opt8 = result.point("OPT", 8).cpu.mean
    opt12 = result.point("OPT", 12).cpu.mean
    assert opt12 > 4 * opt8

    # LOSS at 192 costs more CPU than SORT at 192.
    loss = result.point("LOSS", 192).cpu.mean
    sort = result.point("SORT", 192).cpu.mean
    assert loss > sort

    benchmark.extra_info["opt@12_s"] = round(opt12, 5)
    benchmark.extra_info["loss@192_s"] = round(loss, 5)
