"""LTSP frontier — exact solver throughput and the n = 1536 guard.

The acceptance bar for the exact LTSP scheduler is hard: a full-tape
batch of 1536 requests must solve in under 60 seconds.  In practice
the interval-flow construction solves it in well under a second, so
the guard has two orders of magnitude of headroom — if it ever trips,
the solver regressed from near-linear to something combinatorial.
"""

import time

import pytest

from repro.geometry import generate_tape
from repro.model import LinearizedModel, LocateTimeModel
from repro.scheduling import get_scheduler
from repro.workload import UniformWorkload

#: The ISSUE acceptance ceiling for a full-tape exact solve.
EXACT_WALL_CLOCK_CEILING_S = 60.0


@pytest.fixture(scope="module")
def setup():
    tape = generate_tape(seed=1)
    model = LocateTimeModel(tape)
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=17
    )
    return model, LinearizedModel(model), workload


def _batch(workload, size):
    origin, batch = workload.sample_batch_with_origin(size, False)
    return origin, batch.tolist()


def test_exact_at_192(benchmark, setup):
    model, linear, workload = setup
    origin, batch = _batch(workload, 192)
    schedule = benchmark(
        get_scheduler("LTSP-exact").schedule, linear, origin, batch
    )
    assert len(schedule) == 192


def test_exact_at_1536_under_the_ceiling(benchmark, setup):
    model, linear, workload = setup
    origin, batch = _batch(workload, 1536)
    exact = get_scheduler("LTSP-exact")

    started = time.perf_counter()
    schedule = exact.schedule(linear, origin, batch)
    wall = time.perf_counter() - started

    assert len(schedule) == 1536
    assert wall < EXACT_WALL_CLOCK_CEILING_S
    benchmark.extra_info["wall_clock_s"] = round(wall, 3)
    benchmark.extra_info["ceiling_s"] = EXACT_WALL_CLOCK_CEILING_S
    benchmark(exact.schedule, linear, origin, batch)


def test_sweep_at_1536(benchmark, setup):
    model, linear, workload = setup
    origin, batch = _batch(workload, 1536)
    schedule = benchmark(
        get_scheduler("LTSP-sweep").schedule, linear, origin, batch
    )
    assert len(schedule) == 1536
