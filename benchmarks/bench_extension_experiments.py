"""Extension experiments as benchmarks: generations and optimality."""

from conftest import run_once

from repro.experiments import ExperimentConfig, drive_generations, optimality


def test_drive_generations(benchmark):
    result = run_once(
        benchmark,
        drive_generations.run,
        ExperimentConfig(scale="quick"),
    )
    # Scheduling keeps paying on every generation, and faster hardware
    # raises absolute throughput across the board.
    for profile in result.profiles:
        assert result.speedup(profile) > 1.5
    assert (
        result.points[("IBM3590", "LOSS")].per_hour
        > result.points[("DLT7000", "LOSS")].per_hour
        > result.points[("DLT4000", "LOSS")].per_hour
    )
    for profile in result.profiles:
        benchmark.extra_info[f"{profile}_loss_per_hour"] = round(
            result.points[(profile, "LOSS")].per_hour, 1
        )


def test_optimality_gaps(benchmark):
    result = run_once(
        benchmark,
        optimality.run,
        ExperimentConfig(scale="quick"),
    )
    # LOSS stays within a bounded factor of the lower bound at sizes
    # far beyond OPT's reach; FIFO does not.
    for length in (48, 96, 192):
        loss = result.gaps[("LOSS", length)].mean
        fifo = result.gaps[("FIFO", length)].mean
        assert loss < 40.0
        assert fifo > 2 * loss
    benchmark.extra_info["loss_gap_pct_at_96"] = round(
        result.gaps[("LOSS", 96)].mean, 1
    )
