"""Figure 4 — mean time per locate, random starting point."""

from conftest import run_once

from repro.experiments import ExperimentConfig, figure4


def test_figure4(benchmark):
    config = ExperimentConfig(scale="quick", max_length=192)
    result = run_once(benchmark, figure4.run, config)

    # Published orderings at representative sizes.
    fifo = result.point("FIFO", 96).per_locate_mean
    sort = result.point("SORT", 96).per_locate_mean
    sltf = result.point("SLTF", 96).per_locate_mean
    loss = result.point("LOSS", 96).per_locate_mean
    assert loss < sltf < sort < fifo
    # FIFO flat near the random-random mean of ~72 s.
    assert 65 < fifo < 80
    # OPT best where it runs (the paper's 93 I/Os/hour at N = 10
    # corresponds to ~38.7 s per locate).
    opt10 = result.point("OPT", 10).per_locate_mean
    assert 33 < opt10 < 45
    assert opt10 <= result.point("LOSS", 10).per_locate_mean + 1e-9

    benchmark.extra_info["fifo@96"] = round(fifo, 1)
    benchmark.extra_info["loss@96"] = round(loss, 1)
    benchmark.extra_info["opt@10"] = round(opt10, 1)
