"""Extension benchmarks — the paper's future-work algorithms.

Compares the quadratic dense LOSS against the sparse-graph
contraction variant the paper sketches, and measures what Or-opt
refinement buys on top of LOSS.
"""

import numpy as np
import pytest

from repro.geometry import generate_tape
from repro.model import LocateTimeModel
from repro.scheduling import (
    ImprovedLossScheduler,
    LossScheduler,
    SparseLossScheduler,
)
from repro.workload import UniformWorkload

BATCH = 384

#: Entry-point seed for the wear-comparison batch sample.
WEAR_SAMPLE_SEED = 3


@pytest.fixture(scope="module")
def setup():
    tape = generate_tape(seed=1)
    model = LocateTimeModel(tape)
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=23
    )
    origin, batch = workload.sample_batch_with_origin(BATCH, False)
    return model, origin, batch.tolist()


def test_sparse_loss_matches_dense_quality(benchmark, setup):
    model, origin, batch = setup
    sparse = benchmark.pedantic(
        SparseLossScheduler().schedule,
        args=(model, origin, batch),
        rounds=1,
        iterations=1,
    )
    dense = LossScheduler().schedule(model, origin, batch)
    # The paper's hope for the sparse variant: same quality class.
    assert sparse.estimated_seconds < 1.1 * dense.estimated_seconds
    benchmark.extra_info["sparse_s"] = round(sparse.estimated_seconds, 1)
    benchmark.extra_info["dense_s"] = round(dense.estimated_seconds, 1)


def test_oropt_refinement_gain(benchmark, setup):
    model, origin, batch = setup
    # Use a smaller batch: Or-opt works on raw requests.
    small = batch[:96]
    improved = benchmark.pedantic(
        ImprovedLossScheduler().schedule,
        args=(model, origin, small),
        rounds=1,
        iterations=1,
    )
    base = LossScheduler().schedule(model, origin, small)
    gain = 1.0 - improved.estimated_seconds / base.estimated_seconds
    assert gain >= -1e-9
    benchmark.extra_info["gain_pct"] = round(100 * gain, 2)


def test_lookahead_is_not_enough(benchmark, setup):
    """The negative ablation: one step of lookahead does not buy
    LOSS's regret advantage."""
    from repro.scheduling import LookaheadScheduler

    model, origin, batch = setup
    small = batch[:96]
    lookahead = benchmark.pedantic(
        LookaheadScheduler().schedule,
        args=(model, origin, small),
        rounds=1,
        iterations=1,
    )
    loss = LossScheduler().schedule(model, origin, small)
    assert loss.estimated_seconds <= 1.02 * lookahead.estimated_seconds
    benchmark.extra_info["lookahead_s"] = round(
        lookahead.estimated_seconds, 1
    )
    benchmark.extra_info["loss_s"] = round(loss.estimated_seconds, 1)


def test_probing_calibration_speedup(benchmark):
    from repro.geometry.probing import probing_calibrate

    tape = generate_tape(seed=1)
    model = LocateTimeModel(tape)
    result = benchmark.pedantic(
        probing_calibrate,
        args=(model.oracle(), tape.total_segments, tape.num_tracks),
        rounds=1,
        iterations=1,
    )
    dense_probes = 2 * tape.total_segments
    assert result.probes < dense_probes / 20
    assert result.max_observable_error(tape.all_key_points()) == 0
    benchmark.extra_info["probes"] = result.probes
    benchmark.extra_info["dense_probes"] = dense_probes


def test_wear_savings_of_scheduling(benchmark):
    from repro.drive import SimulatedDrive, WearMeter
    from repro.scheduling import FifoScheduler, execute_schedule

    tape = generate_tape(seed=1)
    model = LocateTimeModel(tape)
    rng = np.random.default_rng(WEAR_SAMPLE_SEED)
    batch = rng.choice(tape.total_segments, 96, replace=False).tolist()

    def run_both():
        fifo_meter = WearMeter()
        execute_schedule(
            SimulatedDrive(model, wear_meter=fifo_meter),
            FifoScheduler().schedule(model, 0, batch),
        )
        loss_meter = WearMeter()
        execute_schedule(
            SimulatedDrive(model, wear_meter=loss_meter),
            LossScheduler().schedule(model, 0, batch),
        )
        return fifo_meter, loss_meter

    fifo_meter, loss_meter = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert loss_meter.passes < 0.6 * fifo_meter.passes
    benchmark.extra_info["fifo_passes"] = round(fifo_meter.passes, 1)
    benchmark.extra_info["loss_passes"] = round(loss_meter.passes, 1)
