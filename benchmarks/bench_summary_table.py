"""Section 8 — the "results in a nutshell" operating points."""

from conftest import run_once

from repro.experiments import ExperimentConfig, summary_table


def test_summary_table(benchmark):
    result = run_once(
        benchmark, summary_table.run, ExperimentConfig(scale="quick")
    )

    # Published: FIFO ~50/h, OPT@10 ~93/h, LOSS@96 ~124/h,
    # LOSS@1024 ~285/h, READ@1536 ~391/h; 192 I/Os drop from 3.87 h to
    # 1.37 h under LOSS.
    assert abs(result.fifo_rate - 50) < 8
    assert abs(result.opt_rate_at_10 - 93) < 12
    assert abs(result.loss_rate_at_96 - 124) < 18
    assert abs(result.loss_rate_at_1024 - 285) < 40
    assert abs(result.read_rate_at_1536 - 391) < 25
    assert abs(result.fifo_hours_192 - 3.87) < 0.5
    assert abs(result.loss_hours_192 - 1.37) < 0.35

    benchmark.extra_info["fifo_per_hour"] = round(result.fifo_rate, 1)
    benchmark.extra_info["opt10_per_hour"] = round(
        result.opt_rate_at_10, 1
    )
    benchmark.extra_info["loss96_per_hour"] = round(
        result.loss_rate_at_96, 1
    )
    benchmark.extra_info["loss1024_per_hour"] = round(
        result.loss_rate_at_1024, 1
    )
