"""Cache-sim — hit rate and response time vs. staging capacity.

Not a figure from the paper: this benchmarks the disk staging cache
extension (``repro.cache``) under the Zipf workload and asserts the
headline finding — with capacity at or above 5 % of the hot set, mean
response time is strictly below the cache-off baseline.
"""

from conftest import run_once

from repro.experiments import ExperimentConfig, cache_sim

#: Hot set and the sweep (1 %, 5 %, 20 %, 50 % of it).
HOT_SET = 2_000
CAPACITIES = (20, 100, 400, 1_000)


def test_cache_sim_sweep(benchmark):
    config = ExperimentConfig(scale="quick")
    result = run_once(
        benchmark,
        cache_sim.run,
        config,
        capacities=CAPACITIES,
        hot_set=HOT_SET,
        rate_per_hour=120.0,
        horizon_hours=4.0,
    )

    by_capacity = {p.capacity_segments: p for p in result.points}
    # Acceptance: >= 5% of the hot set beats the cache-off baseline.
    for capacity in (100, 400, 1_000):
        assert (
            by_capacity[capacity].mean_seconds
            < result.baseline_mean_seconds
        )
    # More capacity never hurts the hit rate on this sweep.
    hit_rates = [by_capacity[c].hit_rate for c in CAPACITIES]
    assert hit_rates == sorted(hit_rates)
    # The cache absorbs a meaningful share of a skewed stream.
    assert by_capacity[100].hit_rate > 0.10

    benchmark.extra_info["baseline_mean_min"] = round(
        result.baseline_mean_seconds / 60.0, 1
    )
    benchmark.extra_info["mean_min@5%"] = round(
        by_capacity[100].mean_seconds / 60.0, 1
    )
    benchmark.extra_info["hit_rate@5%"] = round(
        by_capacity[100].hit_rate, 3
    )
