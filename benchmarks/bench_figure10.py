"""Figure 10 — LOSS sensitivity to locate-model errors, OPT immunity."""

from conftest import run_once

from repro.experiments import ExperimentConfig, figure10


def test_figure10(benchmark):
    config = ExperimentConfig(
        scale="quick", lengths=(2, 8, 12, 48, 128)
    )
    result = run_once(benchmark, figure10.run, config)

    # E <= 2 s has little effect; E = 10 s degrades by ~1-2% in the
    # middle of the range.
    for length in (8, 48, 128):
        assert abs(result.increase[(1.0, length)].mean) < 2.5
        assert abs(result.increase[(2.0, length)].mean) < 3.0
    mid_e10 = [
        result.increase[(10.0, length)].mean for length in (8, 48, 128)
    ]
    assert max(mid_e10) > 0.5
    assert max(mid_e10) < 6.0

    # OPT is exactly immune (the even/odd error sums to a constant
    # over any complete schedule).
    for stats in result.opt_increase.values():
        assert abs(stats.mean) < 1e-6

    benchmark.extra_info["loss_e10_max_pct"] = round(max(mid_e10), 2)
