"""Section 3 — locate-time aggregates vs the published measurements."""

from conftest import run_once

from repro.experiments import section3_stats


def test_section3_aggregates(benchmark):
    result = run_once(
        benchmark, section3_stats.run, 1, 100_000
    )
    # Published anchors: 96.5 s from BOT, 72.4 s random-random,
    # ~180 s max.
    assert abs(result.mean_from_bot - 96.5) < 6.0
    assert abs(result.mean_random - 72.4) < 5.0
    assert 150.0 < result.max_locate < 195.0
    benchmark.extra_info["mean_from_bot"] = round(result.mean_from_bot, 2)
    benchmark.extra_info["mean_random"] = round(result.mean_random, 2)
    benchmark.extra_info["max_locate"] = round(result.max_locate, 1)
