"""Figure 7 — utilization curves per schedule length and transfer size."""

from conftest import run_once

from repro.experiments import ExperimentConfig, figure7


def test_figure7(benchmark):
    config = ExperimentConfig(
        scale="quick", lengths=(1, 10, 96, 512, 1024)
    )
    result = run_once(benchmark, figure7.run, config)

    # Paper Section 8 readings: solitary I/Os need 50-100 MB for good
    # utilization; scheduling brings the requirement down to 10-25 MB.
    solitary = result.megabytes[(0.5, 1)]
    scheduled = result.megabytes[(0.5, 1024)]
    assert 50 < solitary < 150
    assert scheduled < 25

    # A 10-request schedule at ~30 MB per request reaches a disk-like
    # data rate (the paper's headline comparison).
    batch10 = result.megabytes[(0.5, 10)]
    assert 20 < batch10 < 80

    benchmark.extra_info["mb@1_50pct"] = round(solitary, 1)
    benchmark.extra_info["mb@10_50pct"] = round(batch10, 1)
    benchmark.extra_info["mb@1024_50pct"] = round(scheduled, 1)
