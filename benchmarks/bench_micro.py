"""Micro-benchmarks of the hot substrate paths.

Not figures from the paper — these track the cost of the primitives the
simulation studies hammer: vectorized locate-time evaluation, distance
matrix construction, and single-schedule generation per algorithm.
"""

import numpy as np
import pytest

from repro.geometry import generate_tape
from repro.model import LocateTimeModel, schedule_distance_matrix
from repro.scheduling import get_scheduler
from repro.workload import UniformWorkload, trial_state, trial_workload

#: Entry-point seed for the benchmark's own segment sampling.
SAMPLE_SEED = 0


@pytest.fixture(scope="module")
def setup():
    tape = generate_tape(seed=1)
    return tape, LocateTimeModel(tape)


def test_vectorized_locate_sweep(benchmark, setup):
    tape, model = setup
    destinations = np.arange(tape.total_segments)
    times = benchmark(model.locate_times, 0, destinations)
    assert times.shape == (tape.total_segments,)


def test_distance_matrix_256(benchmark, setup):
    tape, model = setup
    rng = np.random.default_rng(SAMPLE_SEED)
    segments = rng.choice(tape.total_segments, 256, replace=False)
    matrix = benchmark(schedule_distance_matrix, model, 0, segments)
    assert matrix.shape == (257, 256)


def test_trial_state_derivation_1k(benchmark):
    # The per-trial seed hash runs once per (trial, length) cell of a
    # sweep; it must stay negligible next to the scheduling work.
    states = benchmark(
        lambda: [trial_state(0, 16, trial) for trial in range(1_000)]
    )
    assert len(set(states)) == 1_000


def test_trial_workload_batch_16(benchmark, setup):
    tape, _ = setup

    def one_trial():
        workload = trial_workload(tape.total_segments, 0, 16, 7)
        return workload.sample_batch_with_origin(16, False)

    origin, batch = benchmark(one_trial)
    assert len(batch) == 16


@pytest.mark.parametrize(
    "name", ["SORT", "SLTF", "SCAN", "WEAVE", "LOSS"]
)
def test_schedule_generation_512(benchmark, setup, name):
    tape, model = setup
    workload = UniformWorkload(total_segments=tape.total_segments,
                               seed=17)
    origin, batch = workload.sample_batch_with_origin(512, False)
    scheduler = get_scheduler(name)
    schedule = benchmark(
        scheduler.schedule, model, origin, batch.tolist()
    )
    assert len(schedule) == 512
