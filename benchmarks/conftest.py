"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper at a
reduced trial scale (the ``quick`` scale preserves every published
ordering), runs it exactly once under pytest-benchmark's timer, and
asserts the figure's headline finding as a guard.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def quick_config():
    """Full grid at quick trial counts."""
    return ExperimentConfig(scale="quick")


@pytest.fixture(scope="session")
def short_config():
    """Truncated grid for the heavier sweeps."""
    return ExperimentConfig(scale="quick", max_length=256)


def run_once(benchmark, function, *args, **kwargs):
    """Run a macro-experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
