"""Figure 9 — estimate error with the wrong tape's key points."""

from conftest import run_once

from repro.experiments import ExperimentConfig, figure8, figure9


def test_figure9(benchmark):
    config = ExperimentConfig(scale="quick", max_length=1024)
    result = run_once(benchmark, figure9.run, config)
    errors = {p.length: abs(p.mean) for p in result.points}

    # "The consequence is disastrous, with the typical difference
    # between estimated and measured time about 20%."
    mid_range = [errors[n] for n in (96, 128, 192, 256)]
    assert max(mid_range) > 15.0
    assert min(mid_range) > 8.0

    # And it dwarfs the right-key-points error of Figure 8.
    right = figure8.run(ExperimentConfig(scale="quick", max_length=256))
    right_errors = {p.length: abs(p.mean) for p in right.points}
    assert errors[256] > 4 * right_errors[256]

    benchmark.extra_info["typical_err_pct"] = round(
        sum(mid_range) / len(mid_range), 1
    )
