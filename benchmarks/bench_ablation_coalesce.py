"""Ablation — the LOSS coalescing threshold T.

The paper: "Experiments show that 1410 (the size of 2 sections) is a
good choice for T, and that the quality of the schedule is not highly
sensitive to T."  This sweep regenerates that claim and also shows why
coalescing exists at all: the CPU cost of LOSS collapses.
"""

import time

import numpy as np
import pytest

from repro.geometry import generate_tape
from repro.model import LocateTimeModel
from repro.scheduling import LossScheduler
from repro.workload import UniformWorkload

THRESHOLDS = (175, 350, 704, 1410, 2820, 5640)
BATCH = 384
TRIALS = 4


@pytest.fixture(scope="module")
def setup():
    tape = generate_tape(seed=1)
    return tape, LocateTimeModel(tape)


def _mean_estimate(model, threshold, trials=TRIALS):
    workload = UniformWorkload(
        total_segments=model.geometry.total_segments, seed=3
    )
    scheduler = LossScheduler(threshold=threshold)
    totals = []
    for _ in range(trials):
        origin, batch = workload.sample_batch_with_origin(BATCH, False)
        schedule = scheduler.schedule(model, origin, batch.tolist())
        totals.append(schedule.estimated_seconds)
    return float(np.mean(totals))


def test_threshold_insensitivity(benchmark, setup):
    _, model = setup

    def sweep():
        return {t: _mean_estimate(model, t) for t in THRESHOLDS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reference = results[1410]
    # Quality is flat over the whole factor-of-8 range up to the
    # paper's T = 1410 (two sections)...
    for threshold in (175, 350, 704):
        assert abs(results[threshold] - reference) / reference < 0.03, (
            threshold
        )
    # ...and degrades clearly beyond it, which is why 1410 is "a good
    # choice": the most CPU-saving coalescing that is still free.
    assert results[2820] > 1.05 * reference
    assert results[5640] > results[2820]
    for threshold, total in results.items():
        benchmark.extra_info[f"T={threshold}"] = round(total, 1)


def test_coalescing_pays_for_itself(benchmark, setup):
    _, model = setup
    workload = UniformWorkload(
        total_segments=model.geometry.total_segments, seed=5
    )
    origin, batch = workload.sample_batch_with_origin(BATCH, False)

    coalesced = benchmark.pedantic(
        LossScheduler(threshold=1410).schedule,
        args=(model, origin, batch.tolist()),
        rounds=1,
        iterations=1,
    )
    coalesced_cpu = benchmark.stats.stats.mean

    started = time.perf_counter()
    raw = LossScheduler(threshold=None).schedule(
        model, origin, batch.tolist()
    )
    raw_cpu = time.perf_counter() - started

    # Big CPU saving, near-equal schedule quality.
    assert coalesced_cpu < raw_cpu / 3
    assert coalesced.estimated_seconds < 1.25 * raw.estimated_seconds
    benchmark.extra_info["raw_cpu_s"] = round(raw_cpu, 3)
