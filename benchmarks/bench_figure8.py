"""Figure 8 — percent error of estimated LOSS schedule times."""

from conftest import run_once

from repro.experiments import ExperimentConfig, figure8


def test_figure8(benchmark):
    config = ExperimentConfig(scale="quick")
    result = run_once(benchmark, figure8.run, config)
    by_length = {p.length: p.mean for p in result.points}

    # Published shape: well under 1-2% below 384 requests, growing to
    # ~5% at the largest schedules.
    assert abs(by_length[64]) < 2.0
    assert abs(by_length[384]) < 3.5
    assert 3.0 < abs(by_length[2048]) < 9.0
    assert abs(by_length[2048]) > abs(by_length[64])

    benchmark.extra_info["err@64_pct"] = round(by_length[64], 2)
    benchmark.extra_info["err@2048_pct"] = round(by_length[2048], 2)
