"""Ablation — SLTF's section fast path vs the literal O(n²) greedy.

The paper reduces SLTF from O(n²) locate evaluations to
O(n log n + k²) using two structural facts about the locate model; the
two implementations must produce equally good schedules while the fast
path wins on CPU for large batches.
"""

import time

import pytest

from repro.geometry import generate_tape
from repro.model import LocateTimeModel
from repro.scheduling import SltfNaiveScheduler, SltfScheduler
from repro.workload import UniformWorkload

BATCH = 768


@pytest.fixture(scope="module")
def setup():
    tape = generate_tape(seed=1)
    model = LocateTimeModel(tape)
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=7
    )
    origin, batch = workload.sample_batch_with_origin(BATCH, False)
    return model, origin, batch.tolist()


def test_fast_path_schedules(benchmark, setup):
    model, origin, batch = setup
    schedule = benchmark.pedantic(
        SltfScheduler().schedule,
        args=(model, origin, batch),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["estimate_s"] = round(
        schedule.estimated_seconds, 1
    )


def test_fast_path_matches_naive_and_wins_cpu(benchmark, setup):
    model, origin, batch = setup

    naive = benchmark.pedantic(
        SltfNaiveScheduler().schedule,
        args=(model, origin, batch),
        rounds=1,
        iterations=1,
    )
    naive_cpu = benchmark.stats.stats.mean

    started = time.perf_counter()
    fast = SltfScheduler().schedule(model, origin, batch)
    fast_cpu = time.perf_counter() - started

    # Same schedule quality at lower CPU cost.  Dense batches contain
    # equal-cost candidates whose tie-breaking legitimately diverges
    # between the two implementations, so equality holds to a fraction
    # of a percent rather than exactly.
    assert fast.estimated_seconds == pytest.approx(
        naive.estimated_seconds, rel=1e-2
    )
    assert fast_cpu < naive_cpu
    benchmark.extra_info["fast_cpu_s"] = round(fast_cpu, 4)
