"""Multi-drive library benchmarks.

Two macro cases time the ``library-sim`` sweep — the raw
``MultiDriveSystem`` serving loop at one grid point, and the full
1/2/4-drive sweep behind ``python -m repro library-sim`` — and each
asserts the sweep's headline finding as a guard: no request is ever
lost, and adding drives strictly lowers the mean response time.
"""

import pytest

from repro.experiments import library_sim
from repro.geometry import generate_tape
from repro.library import Cartridge, MultiDriveSystem, poisson_library_stream

from conftest import run_once

RATE_PER_HOUR = 240.0
HORIZON_SECONDS = 2 * 3600.0
CARTRIDGES = 8


@pytest.fixture(scope="module")
def shelf_and_requests():
    shelf = [
        Cartridge(f"tape-{i}", generate_tape(seed=i + 1))
        for i in range(CARTRIDGES)
    ]
    requests = poisson_library_stream(
        [c.label for c in shelf],
        rate_per_hour=RATE_PER_HOUR,
        total_segments=shelf[0].geometry.total_segments,
        seed=3,
        horizon_seconds=HORIZON_SECONDS,
    )
    return shelf, requests


def test_multidrive_serving_loop(benchmark, shelf_and_requests):
    shelf, requests = shelf_and_requests

    def serve():
        system = MultiDriveSystem(shelf, drives=4)
        stats = system.run(requests)
        return system, stats

    system, stats = benchmark(serve)
    assert stats.count + len(system.failed) == len(requests)
    assert system.lost == 0


def test_library_sim_sweep(benchmark, quick_config):
    result = run_once(
        benchmark,
        library_sim.run,
        quick_config,
        drives=(1, 2, 4),
        arms=(1,),
        assignments=("affinity",),
        horizon_hours=1.0,
    )
    assert result.all_complete
    means = [p.mean_response_seconds for p in result.points]
    assert all(m is not None for m in means)
    # The sweep's headline: each added drive strictly helps.
    assert means[0] > means[1] > means[2]


def test_library_sim_arm_sweep(benchmark, quick_config):
    result = run_once(
        benchmark,
        library_sim.run,
        quick_config,
        drives=(4,),
        arms=(1, 2),
        assignments=("affinity",),
        horizon_hours=2.0,
    )
    assert result.all_complete
    by_arms = {p.arms: p for p in result.points}
    one, two = by_arms[1], by_arms[2]
    # The arm-pool headline: at 4 drives the single arm is the
    # bottleneck; a second arm lowers mean response and keeps every
    # arm below saturation.
    assert two.mean_response_seconds < one.mean_response_seconds
    assert two.max_arm_occupancy < 0.90
