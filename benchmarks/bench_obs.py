"""Telemetry overhead benchmarks.

The observability layer's contract is that an *uninstrumented* run —
``bus=None``, the default — pays nothing beyond one ``is not None``
test per potential event.  The two pytest-benchmark cases track the
online system with and without full instrumentation (recorder plus
standard metrics) so the gap is visible in benchmark reports, and the
timed guard pins the contract's direction: the default no-bus path
must never be slower than a fully instrumented run (beyond timing
noise) — if it is, the default path is doing telemetry work it
should not.
"""

import pytest

from repro.geometry import generate_tape
from repro.obs import EventBus, TraceRecorder, bind_standard_metrics
from repro.online import BatchPolicy, TertiaryStorageSystem
from repro.workload import PoissonArrivals

RATE_PER_HOUR = 240.0
HORIZON_SECONDS = 4 * 3600.0


@pytest.fixture(scope="module")
def setup():
    tape = generate_tape(seed=1)
    requests = PoissonArrivals(
        rate_per_hour=RATE_PER_HOUR,
        total_segments=tape.total_segments,
        seed=3,
    ).batch(HORIZON_SECONDS)
    return tape, requests


def run_system(tape, requests, bus=None):
    system = TertiaryStorageSystem(
        geometry=tape, policy=BatchPolicy(max_batch=32), bus=bus
    )
    return system.run(requests)


def test_uninstrumented_run(benchmark, setup):
    tape, requests = setup
    stats = benchmark(run_system, tape, requests)
    assert stats.count == len(requests)


def test_fully_instrumented_run(benchmark, setup):
    tape, requests = setup

    def instrumented():
        bus = EventBus()
        TraceRecorder(bus)
        bind_standard_metrics(bus)
        return run_system(tape, requests, bus=bus)

    stats = benchmark(instrumented)
    assert stats.count == len(requests)


def test_no_bus_overhead_is_negligible(setup):
    """Timed guard (no pytest-benchmark): the no-bus default must not
    be slower than a fully instrumented run — its only addition over
    the pre-telemetry code is ``is not None`` tests."""
    import time

    tape, requests = setup
    run_system(tape, requests)  # warm caches out of the measurement

    def timed(bus_factory):
        best = float("inf")
        for _ in range(3):
            bus = bus_factory()
            start = time.perf_counter()
            run_system(tape, requests, bus=bus)
            best = min(best, time.perf_counter() - start)
        return best

    plain = timed(lambda: None)

    def full_bus():
        bus = EventBus()
        TraceRecorder(bus)
        bind_standard_metrics(bus)
        return bus

    instrumented = timed(full_bus)
    # The no-bus run must not be slower than full instrumentation by
    # more than timing noise; anything else means the default path is
    # doing telemetry work it should not.
    assert plain <= instrumented * 1.10
