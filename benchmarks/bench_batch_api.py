"""Batch locate-time API micro-benchmarks.

The ROADMAP once claimed the LOSS/SLTF hot path made per-pair Python
calls into the locate-time model.  That is no longer true — the model
exposes ``locate_times`` / ``times`` / ``pairwise_times`` and both
matrix construction and greedy selection go through them — and these
benchmarks keep it true: a counting spy wrapped around the model
asserts the vectorized entry points (not the scalar ``locate_time``)
carry the work, and the matrix micro-bench checks the batch result
against a scalar reference loop.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import generate_tape
from repro.model.distance_matrix import schedule_distance_matrix
from repro.model.locate import LocateTimeModel
from repro.scheduling import get_scheduler

BATCH = 64
SEED = 17


class CountingModel:
    """Delegating spy that counts scalar vs batch locate calls."""

    def __init__(self, model: LocateTimeModel) -> None:
        self._model = model
        self.geometry = model.geometry
        self.scalar_calls = 0
        self.batch_calls = 0

    def locate_time(self, source: int, destination: int) -> float:
        self.scalar_calls += 1
        return self._model.locate_time(source, destination)

    def locate_times(self, source, destinations) -> np.ndarray:
        self.batch_calls += 1
        return self._model.locate_times(source, destinations)

    def times(self, sources, destinations) -> np.ndarray:
        self.batch_calls += 1
        return self._model.times(sources, destinations)

    def pairwise_times(self, sources, destinations) -> np.ndarray:
        self.batch_calls += 1
        return self._model.pairwise_times(sources, destinations)


def _batch(model: LocateTimeModel, size: int = BATCH) -> np.ndarray:
    rng = np.random.default_rng(SEED)
    return rng.integers(
        0, model.geometry.total_segments, size=size, dtype=np.int64
    )


def test_matrix_uses_pairwise_batch_api(benchmark):
    """``schedule_distance_matrix`` is array-at-a-time, not per-pair."""
    model = LocateTimeModel(generate_tape(seed=SEED))
    segments = _batch(model)

    spy = CountingModel(model)
    rect = benchmark(schedule_distance_matrix, spy, 0, segments)

    assert spy.scalar_calls == 0
    assert spy.batch_calls >= 1
    # Scalar reference: entry [i, j] from the spec in distance_matrix.
    total = model.geometry.total_segments
    sources = [0] + [min(s + 1, total - 1) for s in segments]
    for i in (0, 1, len(segments)):
        for j in (0, len(segments) - 1):
            if i == j + 1:
                assert rect[i, j] == np.inf
            else:
                expected = model.locate_time(sources[i], int(segments[j]))
                assert rect[i, j] == expected


def test_loss_schedules_through_batch_api(benchmark):
    """LOSS matrix construction never falls back to scalar locates."""
    model = LocateTimeModel(generate_tape(seed=SEED))
    segments = [int(s) for s in _batch(model)]
    spy = CountingModel(model)
    scheduler = get_scheduler("LOSS")

    schedule = benchmark(scheduler.schedule, spy, 0, segments)

    assert len(schedule.requests) == len(segments)
    assert spy.scalar_calls == 0
    assert spy.batch_calls >= 1


def test_sltf_schedules_through_batch_api(benchmark):
    """SLTF's greedy scan costs candidates one source-row at a time."""
    model = LocateTimeModel(generate_tape(seed=SEED))
    segments = [int(s) for s in _batch(model)]
    spy = CountingModel(model)
    scheduler = get_scheduler("SLTF")

    schedule = benchmark(scheduler.schedule, spy, 0, segments)

    assert len(schedule.requests) == len(segments)
    assert spy.scalar_calls == 0
    assert spy.batch_calls >= 1
