"""Figure 5 — mean time per locate, starting at the beginning of tape."""

from conftest import run_once

from repro.experiments import ExperimentConfig, figure5


def test_figure5(benchmark):
    config = ExperimentConfig(scale="quick", max_length=192)
    result = run_once(benchmark, figure5.run, config)

    # With the head freshly at BOT, the single-request cost is the
    # BOT-to-random mean (~96.5 s), above Figure 4's ~72 s.
    fifo1 = result.point("FIFO", 1).per_locate_mean
    assert 88 < fifo1 < 105

    # The orderings of Figure 4 persist.
    loss = result.point("LOSS", 96).per_locate_mean
    sltf = result.point("SLTF", 96).per_locate_mean
    fifo = result.point("FIFO", 96).per_locate_mean
    assert loss < sltf < fifo

    benchmark.extra_info["fifo@1"] = round(fifo1, 1)
    benchmark.extra_info["loss@96"] = round(loss, 1)
