#!/usr/bin/env python
"""mypy error-count ratchet: the ceiling may only ever go down.

CI runs ``python tools/check_mypy_ratchet.py`` after installing mypy.
The script invokes mypy with the repo's pyproject configuration,
counts ``error:`` lines, and compares against the ceiling committed
in ``tools/mypy_ratchet.json``:

* count > ceiling  -> exit 1 (new type errors were introduced)
* count < ceiling  -> exit 0 with a reminder to tighten via --update
* count == ceiling -> exit 0

``--update`` rewrites the ceiling to the current count.  Like the
lint baseline, run it only after *fixing* errors — never to admit
new ones (the diff in review makes the direction obvious).

When mypy is not installed (the local container does not ship it)
the script prints a notice and exits 0 so local workflows keep
working; CI always installs mypy first, so the gate cannot be
skipped where it matters.
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
RATCHET_PATH = REPO_ROOT / "tools" / "mypy_ratchet.json"
_ERROR_RE = re.compile(r": error:")


def load_ceiling(path: Path = RATCHET_PATH) -> int:
    payload = json.loads(path.read_text(encoding="utf-8"))
    ceiling = payload["max_errors"]
    if not isinstance(ceiling, int) or ceiling < 0:
        raise SystemExit(f"malformed ratchet file: {path}")
    return ceiling


def save_ceiling(count: int, path: Path = RATCHET_PATH) -> None:
    payload = {
        "comment": (
            "mypy error-count ceiling; may only decrease. "
            "Update with: python tools/check_mypy_ratchet.py --update"
        ),
        "max_errors": count,
    }
    path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def run_mypy() -> tuple[int, str]:
    """Run mypy from the repo root; return (error_count, output)."""
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file",
         "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    output = result.stdout + result.stderr
    count = sum(
        1 for line in output.splitlines() if _ERROR_RE.search(line)
    )
    return count, output


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the ceiling to the current error count",
    )
    args = parser.parse_args(argv)
    if shutil.which("mypy") is None:
        try:
            import mypy  # noqa: F401
        except ImportError:
            print(
                "mypy is not installed; skipping the ratchet check "
                "(CI installs mypy and enforces it there)"
            )
            return 0
    count, output = run_mypy()
    if args.update:
        save_ceiling(count)
        print(f"mypy ratchet ceiling updated to {count}")
        return 0
    ceiling = load_ceiling()
    print(f"mypy: {count} error(s), ceiling {ceiling}")
    if count > ceiling:
        sys.stdout.write(output)
        print(
            f"FAIL: {count - ceiling} new mypy error(s) over the "
            "committed ceiling — fix them or discuss raising the "
            "ratchet in review"
        )
        return 1
    if count < ceiling:
        print(
            "note: error count dropped below the ceiling — tighten "
            "with: python tools/check_mypy_ratchet.py --update"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
