"""Protocol implemented by every tape drive in this package."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.geometry.tape import TapeGeometry


@runtime_checkable
class TapeDrive(Protocol):
    """The operations schedulers and executors rely on.

    A drive wraps one mounted cartridge.  ``position`` is the absolute
    segment number the head is parked at (i.e. the next segment a
    ``read`` would return); ``clock_seconds`` is the accumulated busy
    time of the mechanism.
    """

    @property
    def geometry(self) -> TapeGeometry:
        """Geometry of the mounted cartridge."""
        ...

    @property
    def position(self) -> int:
        """Current head position (absolute segment number)."""
        ...

    @property
    def clock_seconds(self) -> float:
        """Accumulated elapsed mechanism time."""
        ...

    def locate(self, segment: int) -> float:
        """Position the head to read ``segment``; return seconds taken."""
        ...

    def read(self, count: int = 1) -> float:
        """Read ``count`` segments forward; return seconds taken."""
        ...

    def rewind(self) -> float:
        """Rewind to the beginning of the tape; return seconds taken."""
        ...
