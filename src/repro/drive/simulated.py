"""The simulated DLT4000 drive.

A :class:`SimulatedDrive` executes the primitive operations of the paper
— ``locate``, ``read``, ``rewind``, and the READ-algorithm's full-tape
scan — against a locate-time model, accumulating elapsed mechanism time
and (optionally) an event log.  The model it is given determines whose
"reality" it simulates:

* with a plain :class:`~repro.model.LocateTimeModel` it is the paper's
  *model-driven simulation* (Section 5);
* with the ground-truth deviations of
  :func:`repro.drive.physical.ground_truth_drive` it stands in for the
  physical drive used in the validation measurements (Section 6).
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    REPOSITION_SECONDS,
    SEGMENT_TRANSFER_SECONDS,
)
from repro.exceptions import DriveError
from repro.model.rewind import rewind_time
from repro.obs.events import DriveEvent, DriveOperation, EventKind

#: Per-track-turnaround cost charged during a full-tape sequential read.
TRACK_TURNAROUND_SECONDS = REPOSITION_SECONDS


class SimulatedDrive:
    """Single-cartridge tape drive simulator.

    Parameters
    ----------
    model:
        Locate-time model (or perturbation wrapper) for the mounted
        cartridge; its geometry is the cartridge geometry.
    initial_position:
        Head position when the simulation starts (0 = freshly loaded).
    record_events:
        Keep a :class:`~repro.obs.events.DriveEvent` log.  Disable for
        large Monte-Carlo runs.
    bus:
        Optional :class:`~repro.obs.bus.EventBus`; every primitive
        operation is published as a
        :class:`~repro.obs.events.DriveOperation` (stamped with the
        drive clock at the operation's start).  ``None`` (the default)
        publishes nothing and costs nothing.
    """

    def __init__(
        self,
        model,
        initial_position: int = 0,
        record_events: bool = False,
        wear_meter=None,
        bus=None,
    ) -> None:
        self.model = model
        self.model.geometry.check_segment(initial_position)
        self._position = int(initial_position)
        self._clock = 0.0
        self._events: list[DriveEvent] | None = (
            [] if record_events else None
        )
        #: Optional :class:`repro.drive.wear.WearMeter` accumulating
        #: head travel across all operations.
        self.wear_meter = wear_meter
        #: Optional :class:`repro.obs.bus.EventBus` receiving one
        #: ``drive.op`` event per primitive operation.
        self.bus = bus

    # -- state ---------------------------------------------------------------

    @property
    def geometry(self):
        """Geometry of the mounted cartridge."""
        return self.model.geometry

    @property
    def position(self) -> int:
        """Current head position (absolute segment number)."""
        return self._position

    @property
    def clock_seconds(self) -> float:
        """Accumulated busy time."""
        return self._clock

    @property
    def events(self) -> list[DriveEvent]:
        """The event log (empty if recording is disabled)."""
        return list(self._events) if self._events is not None else []

    def _record(
        self, kind: EventKind, duration: float, source: int, destination: int
    ) -> None:
        if self._events is not None:
            self._events.append(
                DriveEvent(
                    kind=kind,
                    start_seconds=self._clock,
                    duration_seconds=duration,
                    source=source,
                    destination=destination,
                )
            )
        if self.bus is not None:
            self.bus.publish(
                DriveOperation(
                    seconds=self._clock,
                    kind=kind.value,
                    duration_seconds=duration,
                    source=source,
                    destination=destination,
                )
            )
        self._clock += duration

    def _transfer_seconds(self) -> float:
        """Per-segment transfer time of the mounted drive profile."""
        return getattr(
            self.model, "segment_transfer_seconds",
            SEGMENT_TRANSFER_SECONDS,
        )

    def _rewind_seconds(self, segment: int) -> float:
        """Rewind time at the mounted drive profile's scan speed."""
        if hasattr(self.model, "rewind_seconds"):
            return float(self.model.rewind_seconds(segment))
        return float(rewind_time(self.geometry, segment))

    # -- operations ------------------------------------------------------------

    def locate(self, segment: int) -> float:
        """Position the head to read ``segment``."""
        self.geometry.check_segment(segment)
        duration = self.model.locate_time(self._position, segment)
        if self.wear_meter is not None:
            self.wear_meter.add_travel(
                float(
                    self.model.travel_sections(
                        self._position, np.asarray([segment])
                    )[0]
                )
            )
        self._record(EventKind.LOCATE, duration, self._position, segment)
        self._position = int(segment)
        return duration

    def read(self, count: int = 1) -> float:
        """Transfer ``count`` segments, leaving the head just past them.

        The head parks at the following segment (clamped at the last
        segment of the tape, where the mechanism stops at end of data).
        """
        if count < 1:
            raise DriveError(f"read count must be >= 1, got {count}")
        end = self._position + count
        if end > self.geometry.total_segments:
            raise DriveError(
                f"read of {count} segments at {self._position} runs past "
                f"end of data ({self.geometry.total_segments} segments)"
            )
        duration = count * self._transfer_seconds()
        destination = min(end, self.geometry.total_segments - 1)
        if self.wear_meter is not None:
            self.wear_meter.add_travel(
                abs(
                    float(self.geometry.phys_of(destination))
                    - float(self.geometry.phys_of(self._position))
                )
            )
        self._record(EventKind.READ, duration, self._position, destination)
        self._position = destination
        return duration

    def rewind(self) -> float:
        """Rewind to the beginning of the tape."""
        duration = float(self._rewind_seconds(self._position))
        if self.wear_meter is not None:
            self.wear_meter.add_travel(
                float(self.geometry.phys_of(self._position))
            )
        self._record(EventKind.REWIND, duration, self._position, 0)
        self._position = 0
        return duration

    def read_entire_tape(self) -> float:
        """The READ algorithm's primitive: sequential scan plus rewind.

        Reads every segment from BOT to the end of data (rewinding first
        if necessary), turning around at each track end, then rewinds.
        Typical DLT4000 time: just under four hours.
        """
        total = 0.0
        if self._position != 0:
            total += self.rewind()
        geo = self.geometry
        read_seconds = geo.total_segments * self._transfer_seconds()
        turnaround = (geo.num_tracks - 1) * TRACK_TURNAROUND_SECONDS
        duration = read_seconds + turnaround
        last = geo.total_segments - 1
        if self.wear_meter is not None:
            # One end-to-end traversal per track.
            from repro.geometry.tape import TAPE_PHYS_LENGTH

            self.wear_meter.add_travel(geo.num_tracks * TAPE_PHYS_LENGTH)
        self._record(EventKind.FULL_READ, duration, 0, last)
        self._position = last
        total += duration
        total += self.rewind()
        return total

    # -- bulk helper -------------------------------------------------------------

    def service(self, segment: int, length: int = 1) -> float:
        """Locate to ``segment`` and read ``length`` segments."""
        return self.locate(segment) + self.read(length)

    def locate_times_from_here(self, segments) -> np.ndarray:
        """Vectorized what-if: locate times from the current position
        (does not move the head)."""
        return self.model.locate_times(
            self._position, np.asarray(segments, dtype=np.int64)
        )
