"""Ground-truth drive: the stand-in for the physical DLT4000.

The paper's validation (Section 6) compares *estimated* schedule
execution times (from the locate-time model) with *measured* times on
the real drive.  We have no real drive, so the measured side is played
by a :class:`~repro.drive.simulated.SimulatedDrive` whose locate times
deviate from the idealized model the way the paper reports the real
mechanism deviates:

* short locates near the physical track ends take slightly longer than
  the model predicts (the model "is less accurate" there — the stated
  reason estimate error grows with schedule length in Figure 8);
* every locate carries a small deterministic per-pair wobble, standing
  in for mechanical variation between the model's piecewise-linear fits
  and reality.

The deviations are deterministic, so repeated measurements of one
schedule agree — like re-running the same tape.
"""

from __future__ import annotations

from repro.drive.simulated import SimulatedDrive
from repro.geometry.tape import TapeGeometry
from repro.model.locate import LocateTimeModel
from repro.model.perturb import ShortLocateDeviation


def ground_truth_model(
    geometry: TapeGeometry,
    seed: int = 0,
    short_seconds: float = 30.0,
    bias_seconds: float = 0.45,
    noise_seconds: float = 0.35,
) -> ShortLocateDeviation:
    """The "real mechanism" locate-time function for a cartridge."""
    return ShortLocateDeviation(
        LocateTimeModel(geometry),
        short_seconds=short_seconds,
        bias_seconds=bias_seconds,
        noise_seconds=noise_seconds,
        seed=seed,
    )


def ground_truth_drive(
    geometry: TapeGeometry,
    seed: int = 0,
    initial_position: int = 0,
    record_events: bool = False,
    **deviation_kwargs,
) -> SimulatedDrive:
    """A drive whose measured times deviate from the idealized model.

    Use this wherever the paper uses the physical DLT4000: executing
    schedules for the validation and sensitivity experiments.
    """
    return SimulatedDrive(
        ground_truth_model(geometry, seed=seed, **deviation_kwargs),
        initial_position=initial_position,
        record_events=record_events,
    )
