"""Tape-wear accounting.

Section 2 of the paper makes wear the reason serpentine tape wins for
random I/O: Exabyte helical-scan tapes survive ~1,500 head passes while
DLT cartridges are rated for 500,000 — "more than 3.5 years of
continuous reading".  The wear meter turns the simulator's head travel
into those units: one *pass* is one end-to-end traversal of the tape,
and a cartridge's life budget is its rated pass count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.tape import TAPE_PHYS_LENGTH

#: Rated full-tape head passes (Quantum DLT, per the paper [Qua95]).
DLT_RATED_PASSES = 500_000

#: Rated passes for helical-scan Exabyte media, for contrast [Exa93].
EXABYTE_RATED_PASSES = 1_500


@dataclass
class WearMeter:
    """Accumulates physical head travel and converts it to passes.

    Attributes
    ----------
    rated_passes:
        Full-length passes the medium is rated for.
    travel_sections:
        Total head travel so far, in section units (tape length = 14).
    """

    rated_passes: int = DLT_RATED_PASSES
    travel_sections: float = 0.0

    def add_travel(self, sections: float) -> None:
        """Record head travel (any direction) in section units."""
        if sections < 0:
            raise ValueError("travel cannot be negative")
        self.travel_sections += sections

    @property
    def passes(self) -> float:
        """Equivalent full-length tape passes so far."""
        return self.travel_sections / TAPE_PHYS_LENGTH

    @property
    def life_used_fraction(self) -> float:
        """Fraction of the rated pass budget consumed."""
        return self.passes / self.rated_passes

    @property
    def passes_remaining(self) -> float:
        """Rated passes left before the medium is suspect."""
        return max(0.0, self.rated_passes - self.passes)

    def report(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.passes:.1f} passes "
            f"({100 * self.life_used_fraction:.4f}% of "
            f"{self.rated_passes:,} rated)"
        )
