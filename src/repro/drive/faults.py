"""Fault injection for the simulated drive.

Real tape mechanisms occasionally miss a position and retry: the servo
overshoots, the block header fails its checksum, the drive backs up and
re-approaches.  The paper's measurements average over such retries; the
simulator exposes them explicitly so robustness tests can check that

* schedules still complete (retries change time, never correctness);
* the scheduling advantage survives a retry-prone mechanism;
* estimate error grows gracefully with the fault rate.

A :class:`FaultyModel` wraps any locate-time model: each locate fails
independently with probability ``retry_probability``, costing one extra
approach (back up ``backup_sections`` at scan speed and read in again).
Faults are drawn from a deterministic per-pair hash, so a schedule
executes identically every time — like a drive with a specific worn
spot, not a coin flipped per run.
"""

from __future__ import annotations

import numpy as np

from repro.model.perturb import ModelWrapper

#: How far the mechanism backs up before the second approach.
DEFAULT_BACKUP_SECTIONS = 0.5


def _as_position_array(values, name: str) -> np.ndarray:
    """Validate segment positions and return them as uint64.

    A bare ``asarray(..., dtype=np.uint64)`` silently wraps negative
    values to huge positives and truncates fractional positions, so
    out-of-range input would produce an arbitrary (but plausible) fault
    mask instead of an error.  Reject negatives and non-finite values;
    round fractional positions to the nearest segment explicitly.
    """
    array = np.asarray(values)
    if array.dtype.kind == "f":
        if not np.all(np.isfinite(array)):
            raise ValueError(f"{name} must be finite")
        array = np.rint(array)
    elif array.dtype.kind not in "iu":
        raise ValueError(
            f"{name} must be numeric segment positions, got dtype "
            f"{array.dtype}"
        )
    if np.any(array < 0):
        raise ValueError(f"{name} must be >= 0")
    return array.astype(np.uint64)


class FaultyModel(ModelWrapper):
    """Locate-time model with deterministic positioning retries."""

    def __init__(
        self,
        base,
        retry_probability: float = 0.01,
        backup_sections: float = DEFAULT_BACKUP_SECTIONS,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= retry_probability <= 1.0:
            raise ValueError("retry_probability must be in [0, 1]")
        if backup_sections < 0:
            raise ValueError("backup_sections must be >= 0")
        super().__init__(base)
        self.retry_probability = float(retry_probability)
        self.backup_sections = float(backup_sections)
        self.seed = int(seed)

    def _fault_mask(self, sources, destinations) -> np.ndarray:
        """Deterministic Bernoulli(retry_probability) per (src, dst)."""
        mix = (
            _as_position_array(sources, "sources")
            * np.uint64(0x9E3779B97F4A7C15)
            ^ _as_position_array(destinations, "destinations")
            * np.uint64(0xD6E8FEB86659FD93)
            ^ np.uint64(self.seed * 0x2545F491 + 0x9E3779B9)
        )
        mix ^= mix >> np.uint64(33)
        mix *= np.uint64(0xC2B2AE3D27D4EB4F)
        mix ^= mix >> np.uint64(29)
        unit = mix.astype(np.float64) / float(2**64)
        return unit < self.retry_probability

    def retry_penalty_seconds(self) -> float:
        """Extra time one retry costs."""
        scan = getattr(
            self.base, "scan_seconds_per_section", 10.0
        )
        read = getattr(
            self.base, "read_seconds_per_section", 15.5
        )
        return self.backup_sections * (scan + read)

    def _transform(self, sources, destinations, times) -> np.ndarray:
        faults = self._fault_mask(
            np.broadcast_to(sources, np.shape(times)),
            np.broadcast_to(destinations, np.shape(times)),
        )
        return times + np.where(
            faults, self.retry_penalty_seconds(), 0.0
        )
