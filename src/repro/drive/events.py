"""Deprecated shim — drive event types moved to :mod:`repro.obs.events`.

The observability subsystem (``repro.obs``) generalizes the drive's
event log into the system-wide event taxonomy, and
:class:`~repro.obs.events.DriveEvent` / :class:`~repro.obs.events.EventKind`
now live there.  Importing them from here still works but warns once;
new code should import from ``repro.obs`` (or the ``repro.api``
facade).
"""

from __future__ import annotations

import warnings

from repro.obs import events as _events

_MOVED = ("DriveEvent", "EventKind")

#: Names whose deprecation has already been announced.  The guard
#: makes the warning fire exactly once per name per process, however
#: the caller's warning filters are configured — repeated accesses on
#: a hot path must not spam (or, under ``-W error``, crash) the run.
_warned: set[str] = set()


def __getattr__(name: str):
    if name in _MOVED:
        if name not in _warned:
            _warned.add(name)
            warnings.warn(
                f"repro.drive.events.{name} moved to repro.obs.events; "
                "this import path is deprecated and will be removed in "
                "a future release",
                DeprecationWarning,
                stacklevel=2,
            )
        return getattr(_events, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__() -> list[str]:
    return sorted(_MOVED)
