"""Event records emitted by the simulated drive."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(enum.Enum):
    """Categories of drive activity."""

    LOCATE = "locate"
    READ = "read"
    REWIND = "rewind"
    FULL_READ = "full_read"
    MOUNT = "mount"
    UNMOUNT = "unmount"


@dataclass(frozen=True, slots=True)
class DriveEvent:
    """One timed drive operation.

    Attributes
    ----------
    kind:
        What the drive did.
    start_seconds:
        Drive clock when the operation began.
    duration_seconds:
        How long it took.
    source, destination:
        Head position before and after the operation (absolute segment
        numbers; for reads the destination is the position just past the
        data read).
    """

    kind: EventKind
    start_seconds: float
    duration_seconds: float
    source: int
    destination: int

    @property
    def end_seconds(self) -> float:
        """Drive clock when the operation finished."""
        return self.start_seconds + self.duration_seconds
