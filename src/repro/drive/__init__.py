"""Simulated DLT4000 drives.

Public surface::

    from repro.drive import (
        SimulatedDrive, TapeDrive, DriveEvent, EventKind,
        ground_truth_drive, ground_truth_model,
    )
"""

from repro.drive.faults import FaultyModel
from repro.drive.interface import TapeDrive
from repro.drive.physical import ground_truth_drive, ground_truth_model
from repro.drive.simulated import SimulatedDrive, TRACK_TURNAROUND_SECONDS
from repro.drive.wear import (
    DLT_RATED_PASSES,
    EXABYTE_RATED_PASSES,
    WearMeter,
)
from repro.obs.events import DriveEvent, EventKind

__all__ = [
    "DLT_RATED_PASSES",
    "DriveEvent",
    "EXABYTE_RATED_PASSES",
    "EventKind",
    "FaultyModel",
    "SimulatedDrive",
    "TRACK_TURNAROUND_SECONDS",
    "TapeDrive",
    "WearMeter",
    "ground_truth_drive",
    "ground_truth_model",
]
