"""Execute a schedule on a drive and measure it.

The executor is the "measurement" side of the paper's validation: the
same :class:`~repro.scheduling.schedule.Schedule` can be *estimated*
(with :mod:`repro.scheduling.estimator` against a model) and *executed*
(here, against a drive whose locate times may deviate from that model).

With a ``bus`` attached, execution publishes one
:class:`~repro.obs.events.RequestLocated` and
:class:`~repro.obs.events.RequestRead` per request; when the caller
also passes the estimator's per-hop locate times
(``estimated_locate_seconds``), the locate events carry *estimated vs
actual* seconds — the per-hop model-error signal behind Figures 9–10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SEGMENT_TRANSFER_SECONDS
from repro.drive.simulated import (
    SimulatedDrive,
    TRACK_TURNAROUND_SECONDS,
)
from repro.obs.events import RequestLocated, RequestRead
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class ExecutionResult:
    """Measured execution of one schedule.

    Attributes
    ----------
    total_seconds:
        Wall time from schedule start to the last byte of the last
        request.
    locate_seconds, transfer_seconds:
        Decomposition of the total (for the whole-tape READ plan the
        rewinds and turnarounds count as "locate").
    completion_seconds:
        Per-request completion times, in schedule order (feeds the
        response-time metrics of the online system).
    rewind_seconds:
        Rewind time contained in ``locate_seconds`` (nonzero only for
        the whole-tape READ plan: lead-in plus final rewind), so
        positioning can be reported net of rewinds:
        ``(locate - rewind) + transfer + rewind == total``.
    """

    total_seconds: float
    locate_seconds: float
    transfer_seconds: float
    completion_seconds: np.ndarray
    rewind_seconds: float = 0.0

    @property
    def request_count(self) -> int:
        """Number of requests serviced."""
        return int(self.completion_seconds.size)

    @property
    def seconds_per_request(self) -> float:
        """The paper's "time per locate" metric."""
        return self.total_seconds / max(1, self.request_count)


def execute_schedule(
    drive: SimulatedDrive,
    schedule: Schedule,
    bus=None,
    estimated_locate_seconds=None,
    base_seconds: float | None = None,
) -> ExecutionResult:
    """Run a schedule on a drive, returning the measured times.

    The drive must already be positioned at ``schedule.origin`` (the
    usual case: it is wherever the previous batch left it).

    Parameters
    ----------
    drive, schedule:
        What to run, and on what.
    bus:
        Optional :class:`~repro.obs.bus.EventBus`; publishes
        ``request.locate`` / ``request.read`` events per request.
        ``None`` (the default) publishes nothing and adds no overhead.
    estimated_locate_seconds:
        Per-hop locate-time estimates in schedule order (from
        :func:`repro.scheduling.estimator.locate_sequence_times`),
        attached to the published locate events as
        ``estimated_seconds``.  Ignored without a bus.
    base_seconds:
        Simulation time corresponding to the drive clock at call time;
        published events are stamped ``base_seconds + elapsed``.
        Defaults to the drive clock itself.
    """
    if drive.position != schedule.origin:
        raise ValueError(
            f"drive at {drive.position}, schedule assumes "
            f"{schedule.origin}"
        )
    if (
        estimated_locate_seconds is not None
        and len(estimated_locate_seconds) != len(schedule)
    ):
        raise ValueError(
            f"{len(estimated_locate_seconds)} locate estimates for a "
            f"schedule of {len(schedule)} requests"
        )
    if schedule.whole_tape:
        return _execute_whole_tape(drive, schedule, bus, base_seconds)

    start = drive.clock_seconds
    base = start if base_seconds is None else base_seconds
    locate_total = 0.0
    transfer_total = 0.0
    completions = np.empty(len(schedule), dtype=np.float64)
    for index, request in enumerate(schedule):
        source = drive.position
        locate_seconds = drive.locate(request.segment)
        locate_total += locate_seconds
        if bus is not None:
            bus.publish(
                RequestLocated(
                    seconds=base + (drive.clock_seconds - start),
                    position=index,
                    source=source,
                    segment=request.segment,
                    actual_seconds=locate_seconds,
                    estimated_seconds=(
                        None if estimated_locate_seconds is None
                        else float(estimated_locate_seconds[index])
                    ),
                )
            )
        read_seconds = drive.read(request.length)
        transfer_total += read_seconds
        completions[index] = drive.clock_seconds - start
        if bus is not None:
            bus.publish(
                RequestRead(
                    seconds=base + float(completions[index]),
                    position=index,
                    segment=request.segment,
                    length=request.length,
                    actual_seconds=read_seconds,
                )
            )
    return ExecutionResult(
        total_seconds=drive.clock_seconds - start,
        locate_seconds=locate_total,
        transfer_seconds=transfer_total,
        completion_seconds=completions,
    )


def _execute_whole_tape(
    drive: SimulatedDrive,
    schedule: Schedule,
    bus=None,
    base_seconds: float | None = None,
) -> ExecutionResult:
    """READ plan: stream the whole tape; requests complete as they pass."""
    geo = drive.geometry
    transfer_seconds = getattr(
        drive.model, "segment_transfer_seconds", SEGMENT_TRANSFER_SECONDS
    )
    start = drive.clock_seconds
    base = start if base_seconds is None else base_seconds
    lead_in = 0.0
    if drive.position != 0:
        lead_in = drive.rewind()
    total = drive.read_entire_tape() + lead_in
    # read_entire_tape = sequential scan + turnarounds + final rewind;
    # back the rewind out of the known scan and turnaround components.
    final_rewind = (
        (total - lead_in)
        - geo.total_segments * transfer_seconds
        - (geo.num_tracks - 1) * TRACK_TURNAROUND_SECONDS
    )

    ends = np.fromiter(
        (min(r.end_segment, geo.total_segments) for r in schedule),
        dtype=np.int64,
        count=len(schedule),
    )
    tracks = geo.track_of(np.minimum(ends - 1, geo.total_segments - 1))
    completions = (
        lead_in
        + ends.astype(np.float64) * transfer_seconds
        + tracks.astype(np.float64) * TRACK_TURNAROUND_SECONDS
    )
    if bus is not None:
        for index, request in enumerate(schedule):
            bus.publish(
                RequestRead(
                    seconds=base + float(completions[index]),
                    position=index,
                    segment=request.segment,
                    length=request.length,
                    actual_seconds=request.length * transfer_seconds,
                )
            )
    transfer = len(schedule) * transfer_seconds
    return ExecutionResult(
        total_seconds=total,
        locate_seconds=total - transfer,
        transfer_seconds=transfer,
        completion_seconds=completions,
        rewind_seconds=lead_in + final_rewind,
    )
