"""Execute a schedule on a drive and measure it.

The executor is the "measurement" side of the paper's validation: the
same :class:`~repro.scheduling.schedule.Schedule` can be *estimated*
(with :mod:`repro.scheduling.estimator` against a model) and *executed*
(here, against a drive whose locate times may deviate from that model).

With a ``bus`` attached, execution publishes one
:class:`~repro.obs.events.RequestLocated` and
:class:`~repro.obs.events.RequestRead` per request; when the caller
also passes the estimator's per-hop locate times
(``estimated_locate_seconds``), the locate events carry *estimated vs
actual* seconds — the per-hop model-error signal behind Figures 9–10.

With a :class:`~repro.resilience.RetryPolicy` (``policy=``), execution
is *failure-hardened*: a drive that raises typed
:class:`~repro.exceptions.DriveFault` exceptions (see
:class:`~repro.resilience.FaultInjector`) is retried in place with
deterministic backoff, and on exhaustion the result carries honest
per-request ``success`` flags — a failed request's completion time is
NaN, never fabricated.  Without a policy (the default) the code path
is byte-identical to the pre-resilience executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SEGMENT_TRANSFER_SECONDS
from repro.drive.simulated import (
    SimulatedDrive,
    TRACK_TURNAROUND_SECONDS,
)
from repro.exceptions import DriveFault, NoSamplesError
from repro.obs.events import (
    RequestFailed,
    RequestLocated,
    RequestRead,
    RequestRetried,
)
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class ExecutionResult:
    """Measured execution of one schedule.

    Attributes
    ----------
    total_seconds:
        Wall time from schedule start to the last byte of the last
        request (including fault penalties and retry backoff, if any).
    locate_seconds, transfer_seconds:
        Decomposition of the total (for the whole-tape READ plan the
        rewinds and turnarounds count as "locate").
    completion_seconds:
        Per-request completion times, in schedule order (feeds the
        response-time metrics of the online system).  NaN for requests
        that failed permanently.
    rewind_seconds:
        Rewind time contained in ``locate_seconds`` (nonzero only for
        the whole-tape READ plan: lead-in plus final rewind), so
        positioning can be reported net of rewinds:
        ``(locate - rewind) + transfer + rewind == total``.
    success:
        Per-request success flags in schedule order; ``None`` on the
        non-hardened path, where every serviced request succeeded by
        construction.
    attempts:
        Per-request attempt counts (``None`` on the non-hardened path).
    fault_seconds:
        Time lost to fault penalties and retry backoff — the part of
        ``total_seconds`` that is neither locating nor transferring.
    """

    total_seconds: float
    locate_seconds: float
    transfer_seconds: float
    completion_seconds: np.ndarray
    rewind_seconds: float = 0.0
    success: np.ndarray | None = None
    attempts: np.ndarray | None = None
    fault_seconds: float = 0.0

    @property
    def request_count(self) -> int:
        """Number of requests in the executed schedule."""
        return int(self.completion_seconds.size)

    @property
    def completed_count(self) -> int:
        """Requests that actually completed."""
        if self.success is None:
            return self.request_count
        return int(np.count_nonzero(self.success))

    @property
    def failed_count(self) -> int:
        """Requests that exhausted their retry budget."""
        return self.request_count - self.completed_count

    @property
    def all_succeeded(self) -> bool:
        """Did every request complete?"""
        return self.failed_count == 0

    def failed_positions(self) -> np.ndarray:
        """Schedule positions of the failed requests."""
        if self.success is None:
            return np.empty(0, dtype=np.int64)
        return np.flatnonzero(~self.success).astype(np.int64)

    @property
    def seconds_per_request(self) -> float:
        """The paper's "time per locate" metric.

        Raises :class:`~repro.exceptions.NoSamplesError` for an empty
        execution — an average over zero requests is undefined, and
        silently reporting the raw total has hidden misconfigured
        experiments before (consistent with ``online.metrics``).
        """
        if self.request_count == 0:
            raise NoSamplesError(
                "no requests executed; seconds per request is undefined"
            )
        return self.total_seconds / self.request_count


def execute_schedule(
    drive: SimulatedDrive,
    schedule: Schedule,
    bus=None,
    estimated_locate_seconds=None,
    base_seconds: float | None = None,
    policy=None,
) -> ExecutionResult:
    """Run a schedule on a drive, returning the measured times.

    The drive must already be positioned at ``schedule.origin`` (the
    usual case: it is wherever the previous batch left it).

    Parameters
    ----------
    drive, schedule:
        What to run, and on what.
    bus:
        Optional :class:`~repro.obs.bus.EventBus`; publishes
        ``request.locate`` / ``request.read`` events per request.
        ``None`` (the default) publishes nothing and adds no overhead.
    estimated_locate_seconds:
        Per-hop locate-time estimates in schedule order (from
        :func:`repro.scheduling.estimator.locate_sequence_times`),
        attached to the published locate events as
        ``estimated_seconds``.  Ignored without a bus.
    base_seconds:
        Simulation time corresponding to the drive clock at call time;
        published events are stamped ``base_seconds + elapsed``.
        Defaults to the drive clock itself.
    policy:
        Optional :class:`~repro.resilience.RetryPolicy`.  With a
        policy, :class:`~repro.exceptions.DriveFault` exceptions from
        the drive are retried in place (bounded attempts, backoff,
        per-request timeout) and exhaustion is reported through the
        result's ``success`` flags.  Without one (the default), faults
        propagate and the code path is unchanged from the
        pre-resilience executor.  Ignored for whole-tape READ plans,
        whose single streaming pass has no per-request retry point.
    """
    if drive.position != schedule.origin:
        raise ValueError(
            f"drive at {drive.position}, schedule assumes "
            f"{schedule.origin}"
        )
    if (
        estimated_locate_seconds is not None
        and len(estimated_locate_seconds) != len(schedule)
    ):
        raise ValueError(
            f"{len(estimated_locate_seconds)} locate estimates for a "
            f"schedule of {len(schedule)} requests"
        )
    if schedule.whole_tape:
        return _execute_whole_tape(drive, schedule, bus, base_seconds)
    if policy is not None:
        return _execute_hardened(
            drive, schedule, policy, bus, estimated_locate_seconds,
            base_seconds,
        )

    start = drive.clock_seconds
    base = start if base_seconds is None else base_seconds
    locate_total = 0.0
    transfer_total = 0.0
    completions = np.empty(len(schedule), dtype=np.float64)
    for index, request in enumerate(schedule):
        source = drive.position
        locate_seconds = drive.locate(request.segment)
        locate_total += locate_seconds
        if bus is not None:
            bus.publish(
                RequestLocated(
                    seconds=base + (drive.clock_seconds - start),
                    position=index,
                    source=source,
                    segment=request.segment,
                    actual_seconds=locate_seconds,
                    estimated_seconds=(
                        None if estimated_locate_seconds is None
                        else float(estimated_locate_seconds[index])
                    ),
                )
            )
        read_seconds = drive.read(request.length)
        transfer_total += read_seconds
        completions[index] = drive.clock_seconds - start
        if bus is not None:
            bus.publish(
                RequestRead(
                    seconds=base + float(completions[index]),
                    position=index,
                    segment=request.segment,
                    length=request.length,
                    actual_seconds=read_seconds,
                )
            )
    return ExecutionResult(
        total_seconds=drive.clock_seconds - start,
        locate_seconds=locate_total,
        transfer_seconds=transfer_total,
        completion_seconds=completions,
    )


def _wait(drive, seconds: float) -> None:
    """Charge backoff time to a drive that can model idle time."""
    wait = getattr(drive, "wait", None)
    if wait is not None and seconds > 0.0:
        wait(seconds)


def _execute_hardened(
    drive,
    schedule: Schedule,
    policy,
    bus=None,
    estimated_locate_seconds=None,
    base_seconds: float | None = None,
) -> ExecutionResult:
    """Retry-in-place execution against a fault-raising drive.

    On a drive that never raises, the arithmetic is identical to the
    plain path: every request locates once and reads once, in order.
    """
    start = drive.clock_seconds
    base = start if base_seconds is None else base_seconds
    locate_total = 0.0
    transfer_total = 0.0
    completions = np.full(len(schedule), np.nan, dtype=np.float64)
    success = np.zeros(len(schedule), dtype=bool)
    attempts_taken = np.zeros(len(schedule), dtype=np.int64)
    for index, request in enumerate(schedule):
        request_start = drive.clock_seconds
        attempts = 0
        # The first attempt always locates (even when already at the
        # segment, matching the plain path); after a fault the head may
        # or may not still be on target.
        needs_locate = True
        while True:
            attempts += 1
            try:
                if needs_locate:
                    source = drive.position
                    locate_seconds = drive.locate(request.segment)
                    locate_total += locate_seconds
                    needs_locate = False
                    if bus is not None:
                        bus.publish(
                            RequestLocated(
                                seconds=base
                                + (drive.clock_seconds - start),
                                position=index,
                                source=source,
                                segment=request.segment,
                                actual_seconds=locate_seconds,
                                estimated_seconds=(
                                    None
                                    if estimated_locate_seconds is None
                                    else float(
                                        estimated_locate_seconds[index]
                                    )
                                ),
                            )
                        )
                read_seconds = drive.read(request.length)
                transfer_total += read_seconds
                completions[index] = drive.clock_seconds - start
                success[index] = True
                if bus is not None:
                    bus.publish(
                        RequestRead(
                            seconds=base + float(completions[index]),
                            position=index,
                            segment=request.segment,
                            length=request.length,
                            actual_seconds=read_seconds,
                        )
                    )
                break
            # repro: noqa RPR003 -- this handler IS the retry
            # machinery RPR003 protects: it retries in place, charges
            # backoff, and surfaces exhaustion as RequestFailed
            except DriveFault as fault:
                needs_locate = drive.position != request.segment
                elapsed = drive.clock_seconds - request_start
                exhausted = attempts >= policy.max_attempts
                timed_out = elapsed >= policy.request_timeout_seconds
                if exhausted or timed_out:
                    if bus is not None:
                        bus.publish(
                            RequestFailed(
                                seconds=base
                                + (drive.clock_seconds - start),
                                position=index,
                                segment=request.segment,
                                attempts=attempts,
                                reason=(
                                    "retry budget exhausted"
                                    if exhausted
                                    else "request timeout"
                                ),
                            )
                        )
                    break
                backoff = policy.backoff_seconds(
                    attempts, request.segment
                )
                _wait(drive, backoff)
                if bus is not None:
                    bus.publish(
                        RequestRetried(
                            seconds=base + (drive.clock_seconds - start),
                            position=index,
                            segment=request.segment,
                            attempt=attempts,
                            backoff_seconds=backoff,
                            kind=fault.kind,
                        )
                    )
        attempts_taken[index] = attempts
    total = drive.clock_seconds - start
    return ExecutionResult(
        total_seconds=total,
        locate_seconds=locate_total,
        transfer_seconds=transfer_total,
        completion_seconds=completions,
        success=success,
        attempts=attempts_taken,
        fault_seconds=max(0.0, total - locate_total - transfer_total),
    )


def _execute_whole_tape(
    drive: SimulatedDrive,
    schedule: Schedule,
    bus=None,
    base_seconds: float | None = None,
) -> ExecutionResult:
    """READ plan: stream the whole tape; requests complete as they pass."""
    geo = drive.geometry
    transfer_seconds = getattr(
        drive.model, "segment_transfer_seconds", SEGMENT_TRANSFER_SECONDS
    )
    start = drive.clock_seconds
    base = start if base_seconds is None else base_seconds
    lead_in = 0.0
    if drive.position != 0:
        lead_in = drive.rewind()
    total = drive.read_entire_tape() + lead_in
    # read_entire_tape = sequential scan + turnarounds + final rewind;
    # back the rewind out of the known scan and turnaround components.
    final_rewind = (
        (total - lead_in)
        - geo.total_segments * transfer_seconds
        - (geo.num_tracks - 1) * TRACK_TURNAROUND_SECONDS
    )

    ends = np.fromiter(
        (min(r.end_segment, geo.total_segments) for r in schedule),
        dtype=np.int64,
        count=len(schedule),
    )
    tracks = geo.track_of(np.minimum(ends - 1, geo.total_segments - 1))
    completions = (
        lead_in
        + ends.astype(np.float64) * transfer_seconds
        + tracks.astype(np.float64) * TRACK_TURNAROUND_SECONDS
    )
    if bus is not None:
        for index, request in enumerate(schedule):
            bus.publish(
                RequestRead(
                    seconds=base + float(completions[index]),
                    position=index,
                    segment=request.segment,
                    length=request.length,
                    actual_seconds=request.length * transfer_seconds,
                )
            )
    transfer = len(schedule) * transfer_seconds
    return ExecutionResult(
        total_seconds=total,
        locate_seconds=total - transfer,
        transfer_seconds=transfer,
        completion_seconds=completions,
        rewind_seconds=lead_in + final_rewind,
    )
