"""Execute a schedule on a drive and measure it.

The executor is the "measurement" side of the paper's validation: the
same :class:`~repro.scheduling.schedule.Schedule` can be *estimated*
(with :mod:`repro.scheduling.estimator` against a model) and *executed*
(here, against a drive whose locate times may deviate from that model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SEGMENT_TRANSFER_SECONDS
from repro.drive.simulated import (
    SimulatedDrive,
    TRACK_TURNAROUND_SECONDS,
)
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class ExecutionResult:
    """Measured execution of one schedule.

    Attributes
    ----------
    total_seconds:
        Wall time from schedule start to the last byte of the last
        request.
    locate_seconds, transfer_seconds:
        Decomposition of the total (for the whole-tape READ plan the
        rewinds and turnarounds count as "locate").
    completion_seconds:
        Per-request completion times, in schedule order (feeds the
        response-time metrics of the online system).
    """

    total_seconds: float
    locate_seconds: float
    transfer_seconds: float
    completion_seconds: np.ndarray

    @property
    def request_count(self) -> int:
        """Number of requests serviced."""
        return int(self.completion_seconds.size)

    @property
    def seconds_per_request(self) -> float:
        """The paper's "time per locate" metric."""
        return self.total_seconds / max(1, self.request_count)


def execute_schedule(
    drive: SimulatedDrive, schedule: Schedule
) -> ExecutionResult:
    """Run a schedule on a drive, returning the measured times.

    The drive must already be positioned at ``schedule.origin`` (the
    usual case: it is wherever the previous batch left it).
    """
    if drive.position != schedule.origin:
        raise ValueError(
            f"drive at {drive.position}, schedule assumes "
            f"{schedule.origin}"
        )
    if schedule.whole_tape:
        return _execute_whole_tape(drive, schedule)

    start = drive.clock_seconds
    locate_total = 0.0
    transfer_total = 0.0
    completions = np.empty(len(schedule), dtype=np.float64)
    for index, request in enumerate(schedule):
        locate_total += drive.locate(request.segment)
        transfer_total += drive.read(request.length)
        completions[index] = drive.clock_seconds - start
    return ExecutionResult(
        total_seconds=drive.clock_seconds - start,
        locate_seconds=locate_total,
        transfer_seconds=transfer_total,
        completion_seconds=completions,
    )


def _execute_whole_tape(
    drive: SimulatedDrive, schedule: Schedule
) -> ExecutionResult:
    """READ plan: stream the whole tape; requests complete as they pass."""
    geo = drive.geometry
    transfer_seconds = getattr(
        drive.model, "segment_transfer_seconds", SEGMENT_TRANSFER_SECONDS
    )
    start = drive.clock_seconds
    lead_in = 0.0
    if drive.position != 0:
        lead_in = drive.rewind()
    total = drive.read_entire_tape() + lead_in

    ends = np.fromiter(
        (min(r.end_segment, geo.total_segments) for r in schedule),
        dtype=np.int64,
        count=len(schedule),
    )
    tracks = geo.track_of(np.minimum(ends - 1, geo.total_segments - 1))
    completions = (
        lead_in
        + ends.astype(np.float64) * transfer_seconds
        + tracks.astype(np.float64) * TRACK_TURNAROUND_SECONDS
    )
    transfer = len(schedule) * transfer_seconds
    return ExecutionResult(
        total_seconds=total,
        locate_seconds=total - transfer,
        transfer_seconds=transfer,
        completion_seconds=completions,
    )
