"""SLTF: shortest locate time first.

The greedy analogue of the disk SSTF algorithm: from the current head
position, go to the request with the minimum locate time, repeat.

The paper observes two facts about the locate model that collapse the
naive O(n²) greedy to O(n log n + k²) where ``k`` is the number of
non-empty sections:

1. reading ahead within a section is faster than any locate that leaves
   the section, so once a section is entered all its requests are
   consumed in increasing segment order;
2. the nearest request inside another section is always that section's
   lowest-numbered request, so only one candidate per non-empty section
   needs a locate-time evaluation.

Three variants are provided (the ablation benchmark compares their
cost):

* :class:`SltfScheduler` — the section fast path (the paper's
  recommended form; registered as ``SLTF``);
* :class:`SltfNaiveScheduler` — the literal O(n²) greedy;
* :class:`SltfCoalesceScheduler` — greedy over distance-coalesced
  groups (threshold ``T``, default 1410 segments = two sections).

Tie-breaking is pinned, not incidental: both greedy variants scan
candidates in ascending ``(segment, length)`` order and take the
*first* minimum (``np.argmin``), so equal locate times resolve to the
lowest ``(segment, length)`` in both — the fast path and the naive
greedy therefore produce identical schedules, ties included
(regression-tested in ``tests/scheduling/test_sltf_ties.py``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.constants import DEFAULT_COALESCE_THRESHOLD
from repro.scheduling.base import Scheduler, register
from repro.scheduling.coalesce import (
    Group,
    coalesce_by_threshold,
    expand_groups,
)
from repro.scheduling.request import Request


def _out_position(model, request: Request) -> int:
    """Head position after consuming a request.

    Scalar arithmetic on the greedy hot path: the same clamp as
    :func:`repro.model.distance_matrix.out_positions` without paying
    for two array allocations and a vectorized call per request
    (bit-identical; pinned by the tie-break regression suite).
    """
    return min(
        request.segment + request.length,
        model.geometry.total_segments - 1,
    )


@register
class SltfScheduler(Scheduler):
    """Shortest locate time first via the per-section fast path."""

    name = "SLTF"

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        geo = model.geometry
        ordered = sorted(requests, key=lambda r: (r.segment, r.length))
        segments = np.fromiter(
            (r.segment for r in ordered), dtype=np.int64, count=len(ordered)
        )
        section_ids = geo.global_section_of(segments)

        # Section id -> list of requests, ascending (lists stay sorted).
        buckets: dict[int, list[Request]] = {}
        for request, sid in zip(ordered, section_ids.tolist()):
            buckets.setdefault(sid, []).append(request)

        schedule: list[Request] = []
        position = origin
        while buckets:
            here = int(geo.global_section_of(np.asarray([position]))[0])
            bucket = buckets.get(here)
            if bucket is not None:
                ahead = [r for r in bucket if r.segment >= position]
                if ahead:
                    # Fact 1: read ahead through the current section.
                    schedule.extend(ahead)
                    remaining = [r for r in bucket if r.segment < position]
                    if remaining:
                        buckets[here] = remaining
                    else:
                        del buckets[here]
                    position = _out_position(model, ahead[-1])
                    continue
            # Fact 2: only each section's first request can be nearest.
            sids = sorted(buckets)
            candidates = np.fromiter(
                (buckets[sid][0].segment for sid in sids),
                dtype=np.int64,
                count=len(sids),
            )
            times = model.locate_times(position, candidates)
            chosen = sids[int(np.argmin(times))]
            taken = buckets.pop(chosen)
            schedule.extend(taken)
            position = _out_position(model, taken[-1])
        return schedule


@register
class SltfNaiveScheduler(Scheduler):
    """The literal O(n²) greedy, kept as a cross-check and ablation."""

    name = "SLTF-naive"

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        remaining = sorted(requests, key=lambda r: (r.segment, r.length))
        schedule: list[Request] = []
        position = origin
        while remaining:
            segments = np.fromiter(
                (r.segment for r in remaining),
                dtype=np.int64,
                count=len(remaining),
            )
            times = model.locate_times(position, segments)
            index = int(np.argmin(times))
            chosen = remaining.pop(index)
            schedule.append(chosen)
            position = _out_position(model, chosen)
        return schedule


@register
class SltfCoalesceScheduler(Scheduler):
    """Greedy over distance-coalesced groups (the paper's threshold T)."""

    name = "SLTF-coalesce"

    def __init__(
        self, threshold: int = DEFAULT_COALESCE_THRESHOLD
    ) -> None:
        self.threshold = int(threshold)

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        groups = coalesce_by_threshold(requests, self.threshold)
        remaining: list[Group] = list(groups)
        out_order: list[Group] = []
        position = origin
        total = model.geometry.total_segments
        while remaining:
            firsts = np.fromiter(
                (g.first_segment for g in remaining),
                dtype=np.int64,
                count=len(remaining),
            )
            times = model.locate_times(position, firsts)
            index = int(np.argmin(times))
            chosen = remaining.pop(index)
            out_order.append(chosen)
            position = min(chosen.out_segment, total - 1)
        return expand_groups(out_order)
