"""OPT: exact optimal scheduling.

Scheduling a batch is an asymmetric traveling-salesman *path* problem
with a fixed start (the head position ``I``) and a free end (Section 4
of the paper).  The paper brute-forces all permutations, which is
practical to about 12 requests (936 CPU-seconds on 1995 hardware).  We
implement

* :func:`held_karp_path` — the exact Held–Karp dynamic program,
  O(2ⁿ·n²), which handles the paper's whole OPT range in milliseconds
  and remains exact; and
* :func:`brute_force_path` — literal permutation enumeration, kept as a
  cross-check for the DP (used by the test suite, n ≤ 9).

Both operate on the same distance matrix LOSS uses.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from repro.exceptions import BatchTooLarge
from repro.model.distance_matrix import schedule_distance_matrix
from repro.scheduling.base import Scheduler, register
from repro.scheduling.request import Request, request_lengths

#: Above this many requests the 2ⁿ table stops being a good idea.
DEFAULT_OPT_LIMIT = 16


def held_karp_path(distance: np.ndarray) -> list[int]:
    """Exact minimum path from row 0 through all columns.

    Parameters
    ----------
    distance:
        ``(n + 1, n)`` matrix: row 0 is the start node, row ``i + 1`` is
        "after request ``i``", column ``j`` is "to request ``j``".

    Returns
    -------
    Visit order as a list of request indices ``0..n-1``.
    """
    n = distance.shape[1]
    if n == 0:
        return []
    if n == 1:
        return [0]
    size = 1 << n
    infinity = float("inf")
    # Plain Python lists: the DP is called hundreds of thousands of
    # times on tiny batches, where per-mask numpy overhead dominates.
    inner = [row.tolist() for row in distance[1:, :]]
    cost = [[infinity] * n for _ in range(size)]
    parent = [[-1] * n for _ in range(size)]
    start_row = distance[0].tolist()
    for j in range(n):
        cost[1 << j][j] = start_row[j]

    for mask in range(1, size):
        row = cost[mask]
        for j in range(n):
            here = row[j]
            if here == infinity or not (mask >> j) & 1:
                continue
            edges = inner[j]
            for k in range(n):
                if (mask >> k) & 1:
                    continue
                extended = here + edges[k]
                nxt = mask | (1 << k)
                if extended < cost[nxt][k]:
                    cost[nxt][k] = extended
                    parent[nxt][k] = j

    full = size - 1
    final = cost[full]
    end = min(range(n), key=final.__getitem__)
    order = [end]
    mask = full
    while parent[mask][order[-1]] != -1:
        prev = parent[mask][order[-1]]
        mask ^= 1 << order[-1]
        order.append(prev)
    return order[::-1]


def brute_force_path(distance: np.ndarray) -> list[int]:
    """Permutation enumeration (the paper's OPT implementation)."""
    n = distance.shape[1]
    best_cost = np.inf
    best_order: tuple[int, ...] = tuple(range(n))
    for perm in itertools.permutations(range(n)):
        cost = distance[0, perm[0]]
        for a, b in zip(perm, perm[1:]):
            cost += distance[a + 1, b]
            if cost >= best_cost:
                break
        else:
            if cost < best_cost:
                best_cost = cost
                best_order = perm
    return list(best_order)


@register
class OptScheduler(Scheduler):
    """Exact optimal order via Held–Karp."""

    name = "OPT"

    def __init__(self, limit: int = DEFAULT_OPT_LIMIT) -> None:
        self.limit = int(limit)

    def _solve(self, distance: np.ndarray) -> list[int]:
        return held_karp_path(distance)

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        if len(requests) > self.limit:
            raise BatchTooLarge(len(requests), self.limit, self.name)
        segments = np.fromiter(
            (r.segment for r in requests),
            dtype=np.int64,
            count=len(requests),
        )
        distance = schedule_distance_matrix(
            model, origin, segments, lengths=request_lengths(requests)
        )
        order = self._solve(distance)
        return [requests[i] for i in order]


@register
class BruteForceOptScheduler(OptScheduler):
    """OPT by literal permutation enumeration (cross-check, n <= 9)."""

    name = "OPT-brute"

    def __init__(self, limit: int = 9) -> None:
        super().__init__(limit=limit)

    def _solve(self, distance: np.ndarray) -> list[int]:
        return brute_force_path(distance)
