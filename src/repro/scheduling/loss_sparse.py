"""Sparse-graph LOSS with path contraction — the paper's future work.

Section 4 of the paper sketches how to accelerate LOSS beyond its
quadratic cost: start from the coalesced representative cities, give
each city only a *logarithmic number* of short out-edges (its nearest
neighbours), run LOSS until it can proceed no further — producing a
disconnected collection of partial paths — then contract each partial
path into a single city and repeat on the reduced problem until one
connected path remains.  (The paper notes colleague David S. Johnson's
observation that modern TSP heuristics share this flavour.)

This module implements exactly that loop.  Where the paper proposes
generating the candidate edges by walking sections in weave order (a
device to avoid locate-time evaluations on 1995 hardware), we select
each city's ``k`` cheapest out-edges directly from vectorized
locate-time rows — the same edge set the weave walk approximates.

The result matches dense LOSS's schedule quality within a few percent
while touching only ``O(n log n)`` matrix entries per round; the
ablation benchmark quantifies both sides.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.constants import DEFAULT_COALESCE_THRESHOLD
from repro.exceptions import SchedulingError
from repro.model.distance_matrix import schedule_distance_matrix
from repro.scheduling.base import Scheduler, register
from repro.scheduling.coalesce import (
    coalesce_by_threshold,
    expand_groups,
)
from repro.scheduling.loss import loss_path_fragments
from repro.scheduling.request import Request

#: Below this many cities a dense matrix is cheaper than sparsifying.
DENSE_FALLBACK_SIZE = 24


def sparse_loss_order(
    distance: np.ndarray, out_degree_factor: float = 2.0
) -> list[int]:
    """Order all cities of a dense instance via sparse LOSS rounds.

    Parameters
    ----------
    distance:
        The ``(n + 1, n)`` matrix of
        :func:`repro.model.distance_matrix.schedule_distance_matrix`.
    out_degree_factor:
        Each round keeps ``ceil(factor * log2(m))`` cheapest out-edges
        per city.

    Returns
    -------
    Visit order over the ``n`` cities (0-based column indices).
    """
    n = distance.shape[1]
    if n == 0:
        return []
    # Current problem: a list of fragments, each a list of original
    # city indices; node 0 is the origin fragment.
    fragments: list[list[int]] = [[-1]] + [[j] for j in range(n)]

    while len(fragments) > 2:
        m = len(fragments)
        dense = _fragment_matrix(distance, fragments)
        if m <= DENSE_FALLBACK_SIZE:
            ordered = loss_path_fragments(dense)
            if len(ordered) != 1:
                raise SchedulingError(
                    "dense fallback failed to connect the path"
                )
            fragments = _stitch(fragments, ordered)
            break

        degree = max(2, math.ceil(out_degree_factor * math.log2(m)))
        sparse = _sparsify(dense, degree)
        pieces = loss_path_fragments(sparse)
        if len(pieces) >= m:
            # No edge was feasible at this degree; widen and retry.
            out_degree_factor *= 2
            continue
        fragments = _stitch(fragments, pieces)

    if len(fragments) == 2:
        # Origin fragment plus one other: join them.
        fragments = [fragments[0] + fragments[1]]
    order = [city for city in fragments[0] if city != -1]
    if sorted(order) != list(range(n)):
        raise SchedulingError("sparse LOSS lost cities while contracting")
    return order


def _fragment_matrix(
    distance: np.ndarray, fragments: list[list[int]]
) -> np.ndarray:
    """Distance matrix between fragments (tail-out to head-in)."""
    m = len(fragments)
    # Row index into the original matrix: the origin city is -1 and its
    # out-row is row 0; city j's out-row is j + 1.
    tails = np.asarray(
        [fragment[-1] + 1 for fragment in fragments], dtype=np.int64
    )
    heads = np.asarray(
        [max(0, fragment[0]) for fragment in fragments], dtype=np.int64
    )
    matrix = distance[tails][:, heads]
    matrix[:, 0] = np.inf
    np.fill_diagonal(matrix, np.inf)
    return matrix


def _sparsify(dense: np.ndarray, degree: int) -> np.ndarray:
    """Keep each row's ``degree`` cheapest finite out-edges."""
    m = dense.shape[0]
    sparse = np.full_like(dense, np.inf)
    degree = min(degree, m - 1)
    keep = np.argpartition(dense, degree - 1, axis=1)[:, :degree]
    rows = np.repeat(np.arange(m), degree)
    cols = keep.reshape(-1)
    sparse[rows, cols] = dense[rows, cols]
    return sparse


def _stitch(
    fragments: list[list[int]], pieces: list[list[int]]
) -> list[list[int]]:
    """Concatenate fragments according to this round's partial paths."""
    merged = [
        sum((fragments[index] for index in piece), [])
        for piece in pieces
    ]
    # Keep the origin fragment first for the next round's node 0.
    merged.sort(key=lambda fragment: fragment[0] != -1)
    return merged


@register
class SparseLossScheduler(Scheduler):
    """LOSS on a sparse nearest-neighbour graph with contraction."""

    name = "LOSS-sparse"

    def __init__(
        self,
        threshold: int = DEFAULT_COALESCE_THRESHOLD,
        out_degree_factor: float = 2.0,
    ) -> None:
        self.threshold = int(threshold)
        self.out_degree_factor = float(out_degree_factor)

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        groups = coalesce_by_threshold(requests, self.threshold)
        if len(groups) == 1:
            return expand_groups(groups)
        total = model.geometry.total_segments
        in_segments = np.fromiter(
            (g.first_segment for g in groups),
            dtype=np.int64,
            count=len(groups),
        )
        lengths = np.fromiter(
            (
                max(1, min(g.out_segment, total - 1) - g.first_segment)
                for g in groups
            ),
            dtype=np.int64,
            count=len(groups),
        )
        distance = schedule_distance_matrix(
            model, origin, in_segments, lengths=lengths
        )
        order = sparse_loss_order(
            distance, out_degree_factor=self.out_degree_factor
        )
        return expand_groups([groups[i] for i in order])
