"""FIFO: execute requests in arrival order.

The paper's baseline for unscheduled access: "perform the locates and
reads as they are presented, without reordering them".  On uniformly
random batches its per-locate cost is the random-to-random expected
locate time (~72 s), i.e. about 50 I/Os per hour.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.scheduling.base import Scheduler, register
from repro.scheduling.request import Request


@register
class FifoScheduler(Scheduler):
    """First in, first out — the do-nothing schedule."""

    name = "FIFO"

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        return requests
