"""Schedule result type."""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.scheduling.request import Request, request_segments


@dataclass(frozen=True)
class Schedule:
    """An ordered retrieval plan for one batch of requests.

    Attributes
    ----------
    requests:
        The batch, in execution order.
    origin:
        Head position ``I`` the schedule assumes at start.
    algorithm:
        Name of the producing scheduler (for reports).
    estimated_seconds:
        Model-estimated execution time (locates plus transfers), filled
        in by the scheduler.
    whole_tape:
        True for the READ algorithm: the plan is "read the entire tape
        and rewind", and the request order is informational only (sorted
        by segment, the order data streams by).
    """

    requests: tuple[Request, ...]
    origin: int
    algorithm: str
    estimated_seconds: float | None = None
    whole_tape: bool = False
    _segments_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def segments(self) -> np.ndarray:
        """First-segment numbers in execution order."""
        if "segments" not in self._segments_cache:
            self._segments_cache["segments"] = request_segments(
                self.requests
            )
        return self._segments_cache["segments"]

    def is_permutation_of(self, requests: Sequence[Request]) -> bool:
        """True if this schedule contains exactly the given requests."""
        return sorted(self.requests) == sorted(requests)

    def with_estimate(self, seconds: float) -> "Schedule":
        """Copy of the schedule with ``estimated_seconds`` filled in."""
        return Schedule(
            requests=self.requests,
            origin=self.origin,
            algorithm=self.algorithm,
            estimated_seconds=seconds,
            whole_tape=self.whole_tape,
        )
