"""READ: retrieve the batch by reading the entire tape.

"Read the entire tape sequentially and then rewind.  This avoids the
need to schedule the I/O's, and avoids using the locate operation."
(Section 4.)  For a DLT4000 this costs about 14,000 seconds regardless
of the batch, so it wins only for very dense batches — the paper's
crossover with LOSS is around 1536 uniformly random requests.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.scheduling.base import Scheduler, register
from repro.scheduling.request import Request


@register
class ReadEntireTapeScheduler(Scheduler):
    """Whole-tape sequential read; requests stream by in segment order."""

    name = "READ"

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        # The order is informational: data arrives in segment order.
        return sorted(requests, key=lambda r: (r.segment, r.length))

    def _whole_tape(self) -> bool:
        return True
