"""Coalescing nearby requests into representatives.

Section 4 of the paper (under SLTF) introduces two coalescing rules that
shrink the problem the quadratic algorithms (SLTF, LOSS) work on:

* **by section** — requests in the same section always travel together,
  because reading ahead within a section is faster than any locate out
  of it;
* **by distance threshold** — sort the requested segments; a segment
  within ``T`` of its predecessor joins the predecessor's group.  The
  paper finds ``T = 1410`` (two sections) works well and the schedule
  quality is not very sensitive to it.

A group is always consumed in increasing segment order (read-ahead), so
for scheduling purposes it behaves like a single request from its first
segment (the *in* city) to just past its last segment (the *out* city).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_COALESCE_THRESHOLD
from repro.geometry.tape import TapeGeometry
from repro.scheduling.request import Request


@dataclass(frozen=True)
class Group:
    """A coalesced run of requests, kept in increasing segment order."""

    requests: tuple[Request, ...]

    @property
    def first_segment(self) -> int:
        """Segment the head must locate to (the *in* city)."""
        return self.requests[0].segment

    @property
    def out_segment(self) -> int:
        """Head position after consuming the group (the *out* city)."""
        return self.requests[-1].end_segment

    def __len__(self) -> int:
        return len(self.requests)


def _sorted_requests(requests: Sequence[Request]) -> list[Request]:
    return sorted(requests, key=lambda r: (r.segment, r.length))


def coalesce_by_threshold(
    requests: Sequence[Request],
    threshold: int = DEFAULT_COALESCE_THRESHOLD,
) -> list[Group]:
    """Coalesce requests whose segment gap is below ``threshold``.

    Follows the paper's rule: after sorting, segment ``s_i`` joins the
    current group when ``s_i - s_{i-1} < T``; otherwise it starts the
    next representative.
    """
    ordered = _sorted_requests(requests)
    groups: list[Group] = []
    current: list[Request] = []
    for request in ordered:
        if current and request.segment - current[-1].segment < threshold:
            current.append(request)
        else:
            if current:
                groups.append(Group(tuple(current)))
            current = [request]
    if current:
        groups.append(Group(tuple(current)))
    return groups


def coalesce_by_section(
    geometry: TapeGeometry, requests: Sequence[Request]
) -> list[Group]:
    """Coalesce requests that share a physical section.

    Sections hold contiguous segment ranges, so after sorting this is a
    run-splitting pass on the global section id.
    """
    ordered = _sorted_requests(requests)
    segments = np.fromiter(
        (r.segment for r in ordered), dtype=np.int64, count=len(ordered)
    )
    section_ids = geometry.global_section_of(segments)
    groups: list[Group] = []
    start = 0
    for i in range(1, len(ordered) + 1):
        if i == len(ordered) or section_ids[i] != section_ids[start]:
            groups.append(Group(tuple(ordered[start:i])))
            start = i
    return groups


def expand_groups(groups: Sequence[Group]) -> list[Request]:
    """Flatten an ordered sequence of groups back into requests."""
    out: list[Request] = []
    for group in groups:
        out.extend(group.requests)
    return out
