"""LTSP: exact and approximate linear-tape schedulers.

The paper's OPT is an asymmetric-TSP path solver; our Held–Karp
implementation (:mod:`repro.scheduling.opt`) is exact but exponential,
so the heuristics are only ever certified against the true optimum for
batches of ~16 requests.  The Linear Tape Scheduling Problem literature
(Honoré, Simon & Suter 2021, arXiv:2112.09384; Cardonha & Cire 2021,
arXiv:2112.07018; Cardonha & Villa Real 2018, arXiv:1810.09005) shows
that once locate costs are *linear* in head travel the problem stops
being NP-hard: exact polynomial algorithms and constant-factor
sequencing policies exist.  This module brings that optimality frontier
to the serpentine model via the linearized cost adapter
(:class:`~repro.model.linearize.LinearizedModel`):

* :func:`exact_ltsp_order` — exact minimizer of total linear locate
  time, in O(n log n) time.  Serving a request moves the head from its
  entry coordinate to its exit coordinate "for free" (transfer time is
  order-independent), so the problem is the stacker-crane problem on a
  line with a fixed start and a free end (Atallah & Kosaraju 1988): per
  elementary interval of the line, the net number of deadhead crossings
  is forced by flow conservation, gaps between the occupied span and
  the start are bridged by one out-and-back, and an Eulerian path
  through arcs-plus-deadheads realizes the bound.  The per-interval
  lower bound (net imbalance, plus two crossings for any empty interval
  separating the start from work beyond it) matches the construction,
  so the result is exact — property-tested against Held–Karp and brute
  force on the linearized matrix in ``tests/scheduling/test_ltsp_oracle``.
* :class:`LtspExactScheduler` (``LTSP-exact``) — the exact linear order
  as a registered strategy (estimates still come from whatever model
  the caller schedules against).
* :class:`LtspRepairScheduler` (``LTSP-repair``) — the serpentine
  repair pass: exact linear order, then
  :func:`~repro.scheduling.improve.or_opt_order` relocation under the
  *true* piecewise distance matrix.
* :class:`LtspSweepScheduler` (``LTSP-sweep``) — the better of the two
  monotone sweeps, the classic linear-storage sequencing policy in the
  style analyzed by Cardonha & Cire.  Its total linear head travel
  (deadheads plus read legs) is at most ``3x`` the optimum: the sweep
  costs at most span + lead-in + 2 * (total read legs), and the optimum
  is at least the span term and at least the read legs
  (``docs/OPTIMALITY.md`` has the three-line proof).
* :class:`LtspGreedyScheduler` (``LTSP-greedy``) — nearest-entry-next
  under the linear cost, the linear analogue of SLTF (no constant
  factor; worst case Θ(log n), like nearest-neighbour on a line).

Tie-breaking everywhere is pinned, not incidental: batches are
canonicalized by ``(segment, length)`` before any coordinate math, so
every scheduler here is deterministic and invariant under relabeling of
the input batch.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import SchedulingError
from repro.model.distance_matrix import out_positions
from repro.scheduling.base import Scheduler, register
from repro.scheduling.improve import DEFAULT_MAX_ROUNDS, or_opt_order
from repro.scheduling.request import Request, request_lengths

#: Batch size above which the repair pass runs a single Or-opt sweep
#: instead of the full round budget (the sweep is O(n^2) per round).
DEFAULT_REPAIR_LIMIT = 512


def _canonical(requests: tuple[Request, ...]) -> list[Request]:
    """Relabeling-invariant batch order: ascending ``(segment, length)``."""
    return sorted(requests, key=lambda r: (r.segment, r.length))


def _coordinates(
    model, origin: int, requests: Sequence[Request]
) -> tuple[float, np.ndarray, np.ndarray]:
    """Origin, entry, and exit coordinates on the linear axis."""
    geometry = model.geometry
    segments = np.fromiter(
        (r.segment for r in requests), dtype=np.int64, count=len(requests)
    )
    lengths = request_lengths(requests)
    exits = out_positions(segments, lengths, geometry.total_segments)
    origin_phys = float(geometry.phys_of(int(origin)))
    entry_phys = np.asarray(geometry.phys_of(segments), dtype=np.float64)
    exit_phys = np.asarray(geometry.phys_of(exits), dtype=np.float64)
    return origin_phys, entry_phys, exit_phys


def linear_deadhead_sections(
    origin_phys: float,
    entry_phys: np.ndarray,
    exit_phys: np.ndarray,
    order: Sequence[int],
) -> float:
    """Total deadhead travel of a visit order, in section units.

    The linear analogue of summing the locate edges of a schedule:
    lead-in from the origin to the first entry, then from each exit to
    the next entry.
    """
    visit = np.asarray(order, dtype=np.int64)
    if visit.size == 0:
        return 0.0
    lead_in = abs(entry_phys[visit[0]] - origin_phys)
    if visit.size == 1:
        return float(lead_in)
    hops = np.abs(entry_phys[visit[1:]] - exit_phys[visit[:-1]])
    return float(lead_in + hops.sum())


def exact_ltsp_order(
    origin_phys: float,
    entry_phys: np.ndarray,
    exit_phys: np.ndarray,
) -> list[int]:
    """Exact minimum-deadhead visit order on the line.

    Parameters
    ----------
    origin_phys:
        Starting head coordinate.
    entry_phys, exit_phys:
        Per-request service arcs: serving request ``i`` requires being
        at ``entry_phys[i]`` and leaves the head at ``exit_phys[i]``
        (the travel between the two is the read leg, which every order
        pays equally and therefore does not count as deadhead).

    Returns
    -------
    A visit order (permutation of ``range(n)``) whose total deadhead —
    :func:`linear_deadhead_sections` — is minimal.  Ties between optimal
    orders resolve deterministically (smallest end coordinate, then
    input order within each coordinate pair).

    Notes
    -----
    This is the stacker-crane problem on a line with fixed start and
    free end.  Let the event coordinates (origin, entries, exits) cut
    the line into elementary intervals.  For a candidate end vertex
    ``t`` the optimum decomposes into three per-interval terms, each a
    lower bound on any feasible trajectory and jointly achievable:

    * *flow* — conservation forces the net deadhead crossings of each
      interval to ``delta - net_arcs`` (``delta`` is +1 between origin
      and ``t``);
    * *forced bridges* — an arc-free interval separating the
      origin/end span from arc work beyond it must be crossed out and
      back once;
    * *connectivity* — the multigraph of service arcs plus deadhead
      edges can still fall apart when arcs fly over an inner cluster
      without touching it (free movement stops at any coordinate, but
      an arc traversal is atomic).  Every component must join the
      single Euler walk, and any extra crossings come in out-and-back
      pairs, so the cheapest repair is a minimum spanning set of
      doubled intervals.  On a line the MST only ever uses gaps
      between consecutive active vertices, so Kruskal over those gaps
      is exact.

    The end vertex is chosen lazily: closed-form flow+bridge lower
    bounds for every ``t`` at once, then exact resolution (with the
    MST term) in increasing lower-bound order until the bound passes
    the best exact cost.  Extracting the service order from an
    Eulerian path of the final multigraph realises the bound exactly.
    """
    n = int(entry_phys.shape[0])
    if n == 0:
        return []
    if n == 1:
        return [0]

    coords = np.unique(
        np.concatenate(
            (np.asarray([origin_phys], dtype=np.float64),
             np.asarray(entry_phys, dtype=np.float64),
             np.asarray(exit_phys, dtype=np.float64))
        )
    )
    num_vertices = coords.shape[0]
    num_intervals = num_vertices - 1
    origin_idx = int(np.searchsorted(coords, origin_phys))
    entry_idx = np.searchsorted(coords, entry_phys).astype(np.int64)
    exit_idx = np.searchsorted(coords, exit_phys).astype(np.int64)

    if num_intervals == 0:
        # Everything (origin included) sits on one coordinate.
        return list(range(n))

    interval_len = np.diff(coords)

    # Per-interval service-arc crossing counts, via difference arrays.
    right_diff = np.zeros(num_vertices, dtype=np.int64)
    left_diff = np.zeros(num_vertices, dtype=np.int64)
    rightward = entry_idx < exit_idx
    leftward = entry_idx > exit_idx
    np.add.at(right_diff, entry_idx[rightward], 1)
    np.add.at(right_diff, exit_idx[rightward], -1)
    np.add.at(left_diff, exit_idx[leftward], 1)
    np.add.at(left_diff, entry_idx[leftward], -1)
    arcs_right = np.cumsum(right_diff)[:num_intervals]
    arcs_left = np.cumsum(left_diff)[:num_intervals]
    arc_net = arcs_right - arcs_left
    arc_free = (arcs_right + arcs_left) == 0

    # Prefix sums over intervals (index k sums intervals < k).
    def prefix(values: np.ndarray) -> np.ndarray:
        return np.concatenate(([0.0], np.cumsum(values)))

    cost_keep = prefix(interval_len * np.abs(arc_net))
    cost_plus = prefix(interval_len * np.abs(1 - arc_net))
    cost_minus = prefix(interval_len * np.abs(1 + arc_net))
    gap_len = prefix(interval_len * arc_free)

    arc_lo = int(min(entry_idx.min(), exit_idx.min()))
    arc_hi = int(max(entry_idx.max(), exit_idx.max()))

    # Closed-form flow + forced-bridge lower bound for every t at once.
    t_all = np.arange(num_vertices)
    lo = np.minimum(t_all, origin_idx)
    hi = np.maximum(t_all, origin_idx)
    inside_plus = np.where(
        t_all >= origin_idx,
        cost_plus[hi] - cost_plus[lo],
        cost_minus[hi] - cost_minus[lo],
    )
    flow_cost = cost_keep[num_intervals] - (
        cost_keep[hi] - cost_keep[lo]
    ) + inside_plus
    hull_lo = np.minimum(arc_lo, lo)
    hull_hi = np.maximum(arc_hi, hi)
    bridge_cost = 2.0 * (
        (gap_len[hull_hi] - gap_len[hull_lo]) - (gap_len[hi] - gap_len[lo])
    )
    lower_bound = flow_cost + bridge_cost

    def resolve(end_idx: int) -> tuple[float, np.ndarray, np.ndarray]:
        """Exact cost and deadhead multiplicities for one end vertex."""
        end_lo, end_hi = int(lo[end_idx]), int(hi[end_idx])
        delta = np.zeros(num_intervals, dtype=np.int64)
        delta[end_lo:end_hi] = 1 if end_idx >= origin_idx else -1
        flow = delta - arc_net
        dead_right = np.maximum(flow, 0)
        dead_left = np.maximum(-flow, 0)
        bridged = np.zeros(num_intervals, dtype=bool)
        bridged[int(hull_lo[end_idx]):int(hull_hi[end_idx])] = True
        bridged[end_lo:end_hi] = False
        bridged &= arc_free
        dead_right = dead_right + bridged
        dead_left = dead_left + bridged
        base_cost = float(lower_bound[end_idx])

        # Connectivity repair: union arcs and crossed intervals, then
        # Kruskal over gaps between consecutive active vertices.
        parent = list(range(num_vertices))

        def find(v: int) -> int:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        for u, v in zip(entry_idx.tolist(), exit_idx.tolist()):
            parent[find(u)] = find(v)
        crossed = (dead_right + dead_left) > 0
        active = np.zeros(num_vertices, dtype=bool)
        active[entry_idx] = True
        active[exit_idx] = True
        active[origin_idx] = True
        active[end_idx] = True
        active[:-1] |= crossed
        active[1:] |= crossed
        for k in np.flatnonzero(crossed).tolist():
            parent[find(k)] = find(k + 1)
        active_idx = np.flatnonzero(active)
        gaps = sorted(
            (
                float(coords[active_idx[i + 1]] - coords[active_idx[i]]),
                int(active_idx[i]),
                int(active_idx[i + 1]),
            )
            for i in range(active_idx.shape[0] - 1)
        )
        extra_cost = 0.0
        for gap, u, v in gaps:
            root_u, root_v = find(u), find(v)
            if root_u != root_v:
                parent[root_u] = root_v
                extra_cost += 2.0 * gap
                dead_right[u:v] += 1
                dead_left[u:v] += 1
        return base_cost + extra_cost, dead_right, dead_left

    # Lazy best-first over end vertices: resolve in lower-bound order
    # (ties to the smaller index) until the bound passes the best
    # exact cost; deterministic because updates require a strict win.
    best_cost = float(np.inf)
    best_dead: tuple[np.ndarray, np.ndarray] | None = None
    for end_idx in np.argsort(lower_bound, kind="stable").tolist():
        if lower_bound[end_idx] > best_cost:
            break
        total, dead_right, dead_left = resolve(int(end_idx))
        if total < best_cost:
            best_cost = total
            best_dead = (dead_right, dead_left)

    assert best_dead is not None  # at least one end vertex resolves
    dead_right, dead_left = best_dead
    return _euler_service_order(
        num_vertices, origin_idx, entry_idx, exit_idx,
        dead_right, dead_left,
    )


def _euler_service_order(
    num_vertices: int,
    origin_idx: int,
    entry_idx: np.ndarray,
    exit_idx: np.ndarray,
    dead_right: np.ndarray,
    dead_left: np.ndarray,
) -> list[int]:
    """Hierholzer walk over service arcs + deadheads; arc labels in order.

    Adjacency entries are ``[target, request_ids, remaining]``: service
    arcs grouped by (entry, exit) vertex pair carry their request ids;
    deadhead edges carry a multiplicity.  Entries are consumed in
    insertion order (arcs first, in canonical batch order), which makes
    the extracted order deterministic.
    """
    adjacency: list[list[list]] = [[] for _ in range(num_vertices)]
    groups: dict[tuple[int, int], list] = {}
    for request_id, (u, v) in enumerate(
        zip(entry_idx.tolist(), exit_idx.tolist())
    ):
        entry = groups.get((u, v))
        if entry is None:
            entry = [v, [], 0]
            groups[(u, v)] = entry
            adjacency[u].append(entry)
        entry[1].append(request_id)
        entry[2] += 1
    for k, count in enumerate(dead_right.tolist()):
        if count:
            adjacency[k].append([k + 1, None, count])
    for k, count in enumerate(dead_left.tolist()):
        if count:
            adjacency[k + 1].append([k, None, count])

    cursor = [0] * num_vertices
    stack: list[tuple[int, int]] = [(origin_idx, -1)]
    walk: list[int] = []
    while stack:
        vertex, _ = stack[-1]
        entries = adjacency[vertex]
        position = cursor[vertex]
        while position < len(entries) and entries[position][2] == 0:
            position += 1
        cursor[vertex] = position
        if position < len(entries):
            target, request_ids, _ = entries[position]
            entries[position][2] -= 1
            if request_ids is None:
                stack.append((target, -1))
            else:
                stack.append((target, request_ids.pop(0)))
        else:
            walk.append(stack.pop()[1])
    order = [label for label in reversed(walk) if label >= 0]
    if len(order) != entry_idx.shape[0]:
        raise SchedulingError(
            "LTSP Euler walk dropped requests: served "
            f"{len(order)} of {entry_idx.shape[0]}"
        )
    return order


@register
class LtspExactScheduler(Scheduler):
    """Exact optimal order under the linearized locate cost.

    The order minimizes total linear deadhead
    (:func:`exact_ltsp_order`); the schedule estimate still comes from
    whatever model the caller passes, so under the true piecewise model
    this is a (strong) heuristic, and under a
    :class:`~repro.model.linearize.LinearizedModel` it is exact.
    """

    name = "LTSP-exact"

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        batch = _canonical(requests)
        origin_phys, entry_phys, exit_phys = _coordinates(
            model, origin, batch
        )
        order = exact_ltsp_order(origin_phys, entry_phys, exit_phys)
        return [batch[i] for i in order]


@register
class LtspRepairScheduler(Scheduler):
    """Linear-exact order, repaired under the true piecewise model.

    The serpentine-repair pass of the optimality frontier: take the
    exact LTSP order (optimal for the linear relaxation) and run the
    Or-opt relocation search against the caller's actual distance
    matrix, recovering most of what the linearization dropped
    (reposition overheads, reversal penalties, read-in legs).  Never
    worse than ``LTSP-exact`` under the scheduling model.
    """

    name = "LTSP-repair"

    def __init__(
        self,
        *,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        repair_limit: int = DEFAULT_REPAIR_LIMIT,
    ) -> None:
        self.max_rounds = int(max_rounds)
        self.repair_limit = int(repair_limit)

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        batch = _canonical(requests)
        origin_phys, entry_phys, exit_phys = _coordinates(
            model, origin, batch
        )
        order = exact_ltsp_order(origin_phys, entry_phys, exit_phys)
        from repro.model.distance_matrix import schedule_distance_matrix

        segments = np.fromiter(
            (r.segment for r in batch), dtype=np.int64, count=len(batch)
        )
        distance = schedule_distance_matrix(
            model, origin, segments, lengths=request_lengths(batch)
        )
        rounds = (
            self.max_rounds
            if len(batch) <= self.repair_limit
            else 1
        )
        repaired = or_opt_order(distance, order, max_rounds=rounds)
        return [batch[i] for i in repaired]


@register
class LtspSweepScheduler(Scheduler):
    """The better of the two monotone sweeps under the linear cost.

    The classic linear-storage sequencing policy: serve requests in
    ascending entry order, or in descending entry order, whichever
    costs less linear deadhead from the current origin.  Total linear
    head travel is at most three times the exact optimum (see
    ``docs/OPTIMALITY.md``).  Ties prefer the ascending sweep.
    """

    name = "LTSP-sweep"

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        batch = _canonical(requests)
        origin_phys, entry_phys, exit_phys = _coordinates(
            model, origin, batch
        )
        ascending = np.argsort(entry_phys, kind="stable").tolist()
        descending = np.argsort(-entry_phys, kind="stable").tolist()
        up_sections = linear_deadhead_sections(
            origin_phys, entry_phys, exit_phys, ascending
        )
        down_sections = linear_deadhead_sections(
            origin_phys, entry_phys, exit_phys, descending
        )
        order = ascending if up_sections <= down_sections else descending
        return [batch[i] for i in order]


@register
class LtspGreedyScheduler(Scheduler):
    """Nearest-entry-next under the linear cost (linear SLTF).

    From the current exit coordinate, serve the request with the
    nearest entry coordinate; equal distances resolve to the lowest
    ``(segment, length)``.  Kept as the cheap baseline policy of the
    frontier — no constant approximation factor (nearest-neighbour on a
    line is Θ(log n) in the worst case), but near-exact on uniform
    batches.
    """

    name = "LTSP-greedy"

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        batch = _canonical(requests)
        origin_phys, entry_phys, exit_phys = _coordinates(
            model, origin, batch
        )
        remaining = list(range(len(batch)))
        position = origin_phys
        order: list[int] = []
        while remaining:
            distances = np.abs(entry_phys[remaining] - position)
            # argmin's first-occurrence tie rule is the pinned
            # tie-break: `remaining` holds canonical (segment, length)
            # order.
            chosen = remaining.pop(int(np.argmin(distances)))
            order.append(chosen)
            position = float(exit_phys[chosen])
        return [batch[i] for i in order]
