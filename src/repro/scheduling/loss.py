"""LOSS: the greedy asymmetric-TSP heuristic of Lawler et al. [LLKS85].

SLTF is "too greedy": taking the closest request now can force a very
long locate later.  LOSS repairs this: at each step it considers, for
every city, the gap between its shortest and second-shortest remaining
out-edge (its *out-loss*) and in-edge (*in-loss*); it then commits the
shortest edge at the city whose loss is largest — the city that stands
to lose the most if its short edge is not used.

Cities are the distance-coalesced request groups (threshold ``T``,
default 1410 segments); the initial head position is a city with only
out-edges.  Edges are committed under Hamiltonian-path constraints: one
out-edge and one in-edge per city, and no cycles (enforced by closing
off the tail-to-head edge of every merged path fragment).

This is the paper's recommended algorithm for batches of 11 to ~1536
uniformly random requests.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.constants import DEFAULT_COALESCE_THRESHOLD
from repro.exceptions import SchedulingError
from repro.model.distance_matrix import schedule_distance_matrix
from repro.scheduling.base import Scheduler, register
from repro.scheduling.coalesce import (
    Group,
    coalesce_by_threshold,
    expand_groups,
)
from repro.scheduling.request import Request


def loss_path(distance: np.ndarray) -> list[int]:
    """Greedy max-loss Hamiltonian path on an asymmetric matrix.

    Parameters
    ----------
    distance:
        Square ``(m, m)`` matrix; node 0 is the fixed start.  Entry
        ``[i, j]`` is the cost of travelling ``i -> j``; forbidden edges
        (the diagonal, edges into node 0) must already be ``+inf``.

    Returns
    -------
    list of node indices (excluding node 0) in visit order.
    """
    fragments = loss_path_fragments(distance)
    if len(fragments) != 1 or fragments[0][0] != 0:
        raise SchedulingError("LOSS failed to build a full path")
    return fragments[0][1:]


def loss_path_fragments(distance: np.ndarray) -> list[list[int]]:
    """Max-loss edge selection, returning the path fragments built.

    Runs the same greedy loop as :func:`loss_path` but stops when no
    feasible edge remains instead of raising: on a *complete* matrix
    that is after ``m - 1`` edges (one fragment — the full path), on a
    sparse matrix possibly earlier.  The sparse-graph LOSS variant
    (the paper's future-work idea implemented in
    :mod:`repro.scheduling.loss_sparse`) contracts these fragments and
    repeats.

    Fragments are returned head-first; the fragment starting with node
    0 (if any edges were added at all) comes first.
    """
    m = distance.shape[0]
    if distance.shape != (m, m):
        raise SchedulingError("distance matrix must be square")
    if m == 1:
        return [[0]]
    work = distance.astype(np.float64, copy=True)
    np.fill_diagonal(work, np.inf)
    work[:, 0] = np.inf

    successor = np.full(m, -1, dtype=np.int64)
    predecessor = np.full(m, -1, dtype=np.int64)
    # Path-fragment bookkeeping: every node starts as a singleton
    # fragment; head/tail are tracked at the fragment representative.
    parent = np.arange(m, dtype=np.int64)
    head = np.arange(m, dtype=np.int64)
    tail = np.arange(m, dtype=np.int64)

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    for _ in range(m - 1):
        edge = _select_edge(work)
        if edge is None:
            break
        u, v = edge
        successor[u] = v
        predecessor[v] = u
        work[u, :] = np.inf
        work[:, v] = np.inf
        root_u, root_v = find(u), find(v)
        parent[root_v] = root_u
        new_head, new_tail = head[root_u], tail[root_v]
        head[root_u], tail[root_u] = new_head, new_tail
        # Forbid closing the fragment into a cycle.
        work[new_tail, new_head] = np.inf

    fragments: list[list[int]] = []
    for node in range(m):
        if predecessor[node] != -1:
            continue
        fragment = [node]
        cursor = int(successor[node])
        while cursor != -1:
            fragment.append(cursor)
            cursor = int(successor[cursor])
        fragments.append(fragment)
    fragments.sort(key=lambda fragment: fragment[0] != 0)
    return fragments


def _select_edge(work: np.ndarray) -> tuple[int, int] | None:
    """Pick the next edge by the max-loss rule; None when exhausted."""
    with np.errstate(invalid="ignore"):
        row_two = np.partition(work, 1, axis=1)[:, :2]
        col_two = np.partition(work, 1, axis=0)[:2, :]
        out_loss = row_two[:, 1] - row_two[:, 0]
        in_loss = col_two[1, :] - col_two[0, :]
    out_loss = _sanitize_loss(out_loss, row_two[:, 0], row_two[:, 1])
    in_loss = _sanitize_loss(in_loss, col_two[0, :], col_two[1, :])

    loss = np.maximum(out_loss, in_loss)
    city = int(np.argmax(loss))
    if loss[city] == -np.inf:
        return None
    if out_loss[city] >= in_loss[city]:
        u = city
        v = int(np.argmin(work[city, :]))
    else:
        v = city
        u = int(np.argmin(work[:, city]))
    return u, v


def _sanitize_loss(
    loss: np.ndarray, best: np.ndarray, second: np.ndarray
) -> np.ndarray:
    """Resolve the inf arithmetic of exhausted/forced cities.

    A city with no remaining candidate edge cannot be selected
    (loss -inf); a city with exactly one candidate is forced
    (loss +inf).
    """
    loss = loss.copy()
    no_candidate = ~np.isfinite(best)
    forced = np.isfinite(best) & ~np.isfinite(second)
    loss[no_candidate] = -np.inf
    loss[forced] = np.inf
    return loss


@register
class LossScheduler(Scheduler):
    """Max-loss greedy path over coalesced request groups."""

    name = "LOSS"

    def __init__(
        self, threshold: int | None = DEFAULT_COALESCE_THRESHOLD
    ) -> None:
        #: Coalescing distance; ``None`` runs LOSS on raw requests.
        self.threshold = threshold

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        if self.threshold is None:
            groups = [
                Group((r,))
                for r in sorted(requests, key=lambda r: (r.segment, r.length))
            ]
        else:
            groups = coalesce_by_threshold(requests, self.threshold)
        if len(groups) == 1:
            return expand_groups(groups)

        total = model.geometry.total_segments
        in_segments = np.fromiter(
            (g.first_segment for g in groups),
            dtype=np.int64,
            count=len(groups),
        )
        lengths = np.fromiter(
            (min(g.out_segment, total - 1) - g.first_segment for g in groups),
            dtype=np.int64,
            count=len(groups),
        )
        rect = schedule_distance_matrix(
            model, origin, in_segments, lengths=np.maximum(lengths, 1)
        )
        m = len(groups) + 1
        square = np.full((m, m), np.inf, dtype=np.float64)
        square[:, 1:] = rect
        order = loss_path(square)
        return expand_groups([groups[i - 1] for i in order])


@register
class RawLossScheduler(LossScheduler):
    """LOSS without coalescing (the ablation baseline)."""

    name = "LOSS-raw"

    def __init__(self) -> None:
        super().__init__(threshold=None)
