"""Or-opt local improvement of schedules.

The paper leaves better-than-greedy scheduling as future work
("Evaluating a more sophisticated algorithm, such as that in [CDT95],
remains as future work").  This module provides the classic cheap step
in that direction: **Or-opt** relocation, which repeatedly moves one
request to a better position in the schedule.  Unlike 2-opt it never
reverses a subpath, so it remains correct under the strongly asymmetric
locate times of serpentine tape.

Relocating request ``i`` between requests ``j`` and ``j + 1`` changes
exactly five locate edges, so each candidate move is evaluated in O(1)
from the distance matrix and a full improvement sweep costs O(n²) —
the same order as LOSS itself.  Sweeps repeat until no move helps (or
a round limit is hit).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.model.distance_matrix import schedule_distance_matrix
from repro.scheduling.base import Scheduler, register
from repro.scheduling.loss import LossScheduler
from repro.scheduling.request import (
    Request,
    request_lengths,
    request_segments,
)
from repro.scheduling.schedule import Schedule

#: Safety cap on improvement sweeps.
DEFAULT_MAX_ROUNDS = 8


def or_opt_order(
    distance: np.ndarray,
    order: list[int],
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> list[int]:
    """Improve a visit order by single-city relocations.

    Parameters
    ----------
    distance:
        The ``(n + 1, n)`` schedule distance matrix (row 0 = origin,
        row ``i + 1`` = after request ``i``).
    order:
        Initial visit order (a permutation of ``range(n)``).
    max_rounds:
        Maximum full improvement sweeps.

    Returns
    -------
    The improved order (possibly the input, if already locally
    optimal).
    """
    n = len(order)
    if n <= 2:
        return list(order)
    current = list(order)

    for _ in range(max_rounds):
        improved = False
        for position in range(n):
            city = current[position]
            # Cost of removing `city` from its position.
            before = current[position - 1] + 1 if position > 0 else 0
            after = current[position + 1] if position + 1 < n else None
            removed = distance[before, city]
            if after is not None:
                removed += distance[city + 1, after]
                bridged = distance[before, after]
            else:
                bridged = 0.0
            gain = removed - bridged
            if not np.isfinite(gain):
                continue

            # Cost of inserting between every other adjacent pair.
            rest = [c for c in current if c != city]
            froms = np.asarray([0] + [c + 1 for c in rest])
            tos = rest + [None]
            # Only strictly improving moves (ties would oscillate).
            best_delta = 1e-9
            best_slot = None
            for slot in range(len(rest) + 1):
                if slot == position:
                    continue
                into = distance[froms[slot], city]
                out_of = (
                    distance[city + 1, tos[slot]]
                    if tos[slot] is not None
                    else 0.0
                )
                broken = (
                    distance[froms[slot], tos[slot]]
                    if tos[slot] is not None
                    else 0.0
                )
                delta = gain - (into + out_of - broken)
                if delta > best_delta:
                    best_delta = delta
                    best_slot = slot
            if best_slot is not None:
                rest.insert(best_slot, city)
                current = rest
                improved = True
        if not improved:
            break
    return current


def improve_schedule(
    model,
    schedule: Schedule,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> Schedule:
    """Or-opt a finished schedule; returns a new (never worse) one."""
    if schedule.whole_tape or len(schedule) <= 2:
        return schedule
    requests = list(schedule.requests)
    segments = request_segments(requests)
    lengths = request_lengths(requests)
    distance = schedule_distance_matrix(
        model, schedule.origin, segments, lengths=lengths
    )
    order = or_opt_order(
        distance, list(range(len(requests))), max_rounds=max_rounds
    )
    improved = Schedule(
        requests=tuple(requests[i] for i in order),
        origin=schedule.origin,
        algorithm=f"{schedule.algorithm}+oropt",
        whole_tape=False,
    )
    from repro.scheduling.estimator import estimate_schedule_seconds

    estimate = estimate_schedule_seconds(model, improved)
    if (
        schedule.estimated_seconds is not None
        and estimate > schedule.estimated_seconds + 1e-9
    ):
        # Never return a worse schedule than we were given.
        return schedule
    return improved.with_estimate(estimate)


@register
class ImprovedLossScheduler(Scheduler):
    """LOSS followed by Or-opt refinement."""

    name = "LOSS+oropt"

    def __init__(self, max_rounds: int = DEFAULT_MAX_ROUNDS) -> None:
        self.max_rounds = int(max_rounds)
        self._base = LossScheduler()

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        base = self._base.schedule(model, origin, requests)
        improved = improve_schedule(
            model, base, max_rounds=self.max_rounds
        )
        return improved.requests
