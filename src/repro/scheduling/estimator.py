"""Schedule execution-time estimation.

"Given the locate time model ... it is possible to estimate how long it
will take the DLT4000 to read a sequence of segments.  This is the
essential ingredient for scheduling." (Section 3.)

The estimate of a schedule is the sum of the locate time into each
request (from the previous request's end position) plus the transfer
time of the data read.  The READ algorithm's whole-tape plan is costed
as a full sequential read plus rewind instead.

When the estimator is given the same model the simulated drive uses,
the estimate matches the drive's measured execution exactly (tested);
validation experiments arise from giving the two *different* models.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SEGMENT_TRANSFER_SECONDS
from repro.model.distance_matrix import out_positions
from repro.model.rewind import rewind_time
from repro.scheduling.request import request_lengths
from repro.scheduling.schedule import Schedule
from repro.drive.simulated import TRACK_TURNAROUND_SECONDS


def locate_sequence_times(model, schedule: Schedule) -> np.ndarray:
    """Per-request locate times of a schedule, in execution order."""
    segments = schedule.segments()
    if segments.size == 0:
        return np.zeros(0, dtype=np.float64)
    lengths = request_lengths(schedule.requests)
    total = model.geometry.total_segments
    sources = np.concatenate(
        (
            np.asarray([schedule.origin], dtype=np.int64),
            out_positions(segments[:-1], lengths[:-1], total),
        )
    )
    return model.times(sources, segments)


def _transfer_seconds(model) -> float:
    """Per-segment transfer time of a model (profile-aware)."""
    return getattr(
        model, "segment_transfer_seconds", SEGMENT_TRANSFER_SECONDS
    )


def full_read_seconds(model_or_geometry) -> float:
    """Time for the READ algorithm: rewind-to-BOT assumed done, then a
    sequential scan of the whole tape plus the final rewind.

    Accepts a locate-time model (profile-aware) or a bare geometry
    (default DLT4000 profile)."""
    model = model_or_geometry
    geometry = getattr(model, "geometry", model)
    if geometry is model:
        model = None
    scan = geometry.total_segments * (
        _transfer_seconds(model) if model is not None
        else SEGMENT_TRANSFER_SECONDS
    )
    turnaround = (geometry.num_tracks - 1) * TRACK_TURNAROUND_SECONDS
    last = geometry.total_segments - 1
    if model is not None and hasattr(model, "rewind_seconds"):
        final_rewind = float(model.rewind_seconds(last))
    else:
        final_rewind = float(rewind_time(geometry, last))
    return scan + turnaround + final_rewind


def estimate_schedule_seconds(
    model, schedule: Schedule, include_transfers: bool = True
) -> float:
    """Model-estimated execution time of a schedule, in seconds.

    Parameters
    ----------
    model:
        Locate-time model (or wrapper); need not be the model that
        produced the schedule — that is exactly how the validation
        experiments measure estimate error.
    schedule:
        The plan to cost.
    include_transfers:
        Include data-transfer time.  The paper's "time per locate"
        metric excludes transfers; pass ``False`` to match it.
    """
    if schedule.whole_tape:
        base = full_read_seconds(model)
        if schedule.origin != 0:
            if hasattr(model, "rewind_seconds"):
                base += float(model.rewind_seconds(schedule.origin))
            else:
                base += float(
                    rewind_time(model.geometry, schedule.origin)
                )
        return base

    locates = float(locate_sequence_times(model, schedule).sum())
    if not include_transfers:
        return locates
    transfer = (
        float(request_lengths(schedule.requests).sum())
        * _transfer_seconds(model)
    )
    return locates + transfer


def estimate_locate_seconds(model, schedule: Schedule) -> float:
    """Total positioning-only time of a schedule.

    For a whole-tape READ plan there is no meaningful split between
    positioning and transfer, so the full plan time is returned (the
    paper's per-locate numbers for READ divide the whole 14,000 s by
    the batch size).
    """
    if schedule.whole_tape:
        return estimate_schedule_seconds(model, schedule)
    return float(locate_sequence_times(model, schedule).sum())
