"""Scheduler base class and registry."""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable, Sequence

from repro.exceptions import SchedulingError
from repro.scheduling.estimator import estimate_schedule_seconds
from repro.scheduling.request import Request, as_requests, check_batch
from repro.scheduling.schedule import Schedule


class Scheduler(abc.ABC):
    """Base class for the paper's eight scheduling algorithms.

    A scheduler is a stateless policy object: :meth:`schedule` takes the
    locate-time model of the mounted cartridge, the initial head
    position ``I``, and the request batch ``R``, and returns an ordered
    :class:`~repro.scheduling.schedule.Schedule` ``S`` containing
    exactly the same requests.
    """

    #: Registry name; subclasses set this.
    name: str = "abstract"

    def schedule(
        self, model, origin: int, requests: Iterable[int | Request]
    ) -> Schedule:
        """Order a request batch.

        Parameters
        ----------
        model:
            Locate-time model of the mounted cartridge (possibly
            perturbed — the scheduler only ever sees the model).
        origin:
            Initial head position ``I`` (absolute segment number).
        requests:
            The batch ``R``: segment numbers or :class:`Request` objects.
        """
        batch = as_requests(requests)
        check_batch(batch)
        model.geometry.check_segment(origin)
        for request in batch:
            model.geometry.check_segment(request.segment)
            if request.end_segment > model.geometry.total_segments:
                raise SchedulingError(
                    f"request {request} reads past end of data"
                )
        ordered = self._order(model, origin, batch)
        schedule = Schedule(
            requests=tuple(ordered),
            origin=origin,
            algorithm=self.name,
            whole_tape=self._whole_tape(),
        )
        if not schedule.is_permutation_of(batch):
            raise SchedulingError(
                f"{self.name} returned a non-permutation of the batch"
            )
        return schedule.with_estimate(
            estimate_schedule_seconds(model, schedule)
        )

    @abc.abstractmethod
    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        """Produce the execution order (subclass hook)."""

    def _whole_tape(self) -> bool:
        """Overridden by READ, which streams the whole tape."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


#: Global registry of scheduler factories, keyed by algorithm name.
_REGISTRY: dict[str, Callable[[], Scheduler]] = {}


def register(factory: Callable[[], Scheduler]) -> Callable[[], Scheduler]:
    """Register a scheduler factory under its instance's ``name``."""
    instance = factory()
    _REGISTRY[instance.name] = factory
    return factory


def get_scheduler(name: str) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SchedulingError(
            f"unknown scheduler {name!r}; known: {known}"
        ) from None
    return factory()


def scheduler_names() -> list[str]:
    """Names of all registered schedulers, sorted."""
    return sorted(_REGISTRY)
