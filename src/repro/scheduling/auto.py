"""The paper's recommended scheduling policy.

Section 5's summary: "OPT is recommended for scheduling up to 10
locates.  Then, use the LOSS algorithm for up to 1536 uniformly randomly
distributed requests.  For more than 1536 requests just read the entire
tape."  :class:`AutoScheduler` implements exactly that dispatch.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constants import LOSS_POLICY_LIMIT, OPT_POLICY_LIMIT
from repro.scheduling.base import Scheduler, register
from repro.scheduling.loss import LossScheduler
from repro.scheduling.opt import OptScheduler
from repro.scheduling.read_all import ReadEntireTapeScheduler
from repro.scheduling.request import Request, as_requests, check_batch
from repro.scheduling.schedule import Schedule


@register
class AutoScheduler(Scheduler):
    """OPT for tiny batches, LOSS for medium, READ for huge."""

    name = "AUTO"

    def __init__(
        self,
        opt_limit: int = OPT_POLICY_LIMIT,
        loss_limit: int = LOSS_POLICY_LIMIT,
    ) -> None:
        self.opt_limit = int(opt_limit)
        self.loss_limit = int(loss_limit)
        self._opt = OptScheduler()
        self._loss = LossScheduler()
        self._read = ReadEntireTapeScheduler()

    def choose(self, batch_size: int) -> Scheduler:
        """The scheduler the policy selects for a batch of this size."""
        if batch_size <= self.opt_limit:
            return self._opt
        if batch_size <= self.loss_limit:
            return self._loss
        return self._read

    def schedule(
        self, model, origin: int, requests: Iterable[int | Request]
    ) -> Schedule:
        batch = as_requests(requests)
        check_batch(batch)
        return self.choose(len(batch)).schedule(model, origin, batch)

    def _order(self, model, origin, requests):  # pragma: no cover
        raise NotImplementedError("AutoScheduler delegates in schedule()")
