"""SORT: order requests by logical segment number.

Optimal for helical-scan tape, where logical block numbers track the
physical position directly.  On serpentine tape, SORT takes one long
pass per track it visits — poor for small batches, but competitive once
nearly every section contains a request (the paper's Section 4).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.scheduling.base import Scheduler, register
from repro.scheduling.request import Request


@register
class SortScheduler(Scheduler):
    """Ascending segment-number order."""

    name = "SORT"

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        return sorted(requests, key=lambda r: (r.segment, r.length))
