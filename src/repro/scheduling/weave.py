"""WEAVE: a predefined relative ordering of sections.

WEAVE approximates SLTF without any ``locate_time()`` evaluation: from
the section containing the last scheduled request it considers the
other sections of the tape in a fixed pattern that visits nearby
sections before far-away ones, and schedules the entire first
considered section that still holds requests.

The pattern (Section 4 of the paper) is expressed with three track
classes relative to the current track ``T`` — ``T`` itself, the
co-directional tracks ``CT`` and the anti-directional tracks ``AT`` —
and the helpers ``fwd``/``rev`` (move n sections in/against the current
track's direction of travel) and ``flip`` (swap the section pairs at
the physical ends of the tape, ``0<->1`` and ``12<->13``).  Entries that
fall off the tape or repeat are skipped.

The published pattern does not quite cover every (class, section)
combination (e.g. the same physical section in a co-directional track
when the head sits in section 0), so after the pattern is exhausted any
leftover sections are visited in order of physical distance — still
without locate-time evaluations.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.constants import SECTIONS_PER_TRACK
from repro.scheduling.base import Scheduler, register
from repro.scheduling.request import Request

#: Track classes relative to the current track.
SAME, CO, ANTI = "T", "CT", "AT"

_FLIP = {0: 1, 1: 0, 12: 13, 13: 12}


def flip(section: int) -> int:
    """The paper's flip(): swap the section pairs at the tape ends."""
    return _FLIP.get(section, section)


def weave_pattern(
    section: int, direction: int
) -> Iterator[tuple[str, int]]:
    """Yield (track class, physical section) in weave order.

    Parameters
    ----------
    section:
        Physical section of the current head position.
    direction:
        Direction of the current track (+1 forward, -1 reverse);
        ``fwd``/``rev`` move with/against it.
    """

    def fwd(n: int) -> int:
        return section + n * direction

    def rev(n: int) -> int:
        return section - n * direction

    seen: set[tuple[str, int]] = set()

    def emit(track_class: str, sec: int):
        if 0 <= sec < SECTIONS_PER_TRACK:
            key = (track_class, sec)
            if key not in seen:
                seen.add(key)
                yield key

    prefix = [
        (SAME, section),
        (SAME, fwd(1)),
        (SAME, fwd(2)),
        (CO, fwd(2)),
        (ANTI, rev(1)),
        (CO, fwd(1)),
        (ANTI, rev(2)),
    ]
    for track_class, sec in prefix:
        yield from emit(track_class, sec)
    for i in range(SECTIONS_PER_TRACK):
        for track_class, sec in (
            (ANTI, flip(fwd(i)) if 0 <= fwd(i) < SECTIONS_PER_TRACK else -1),
            (SAME, fwd(i + 3)),
            (CO, fwd(i + 3)),
            (SAME, flip(rev(i)) if 0 <= rev(i) < SECTIONS_PER_TRACK else -1),
            (CO, flip(rev(i)) if 0 <= rev(i) < SECTIONS_PER_TRACK else -1),
            (ANTI, rev(i + 3)),
        ):
            yield from emit(track_class, sec)


@register
class WeaveScheduler(Scheduler):
    """Approximate SLTF through the fixed weave pattern."""

    name = "WEAVE"

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        geo = model.geometry
        ordered = sorted(requests, key=lambda r: (r.segment, r.length))
        segments = np.fromiter(
            (r.segment for r in ordered), dtype=np.int64, count=len(ordered)
        )
        tracks = geo.track_of(segments)
        sections = np.asarray(geo.section_of(segments))

        buckets: dict[tuple[int, int], list[Request]] = {}
        tracks_at_section: dict[int, set[int]] = {}
        for request, track, section in zip(
            ordered, tracks.tolist(), sections.tolist()
        ):
            key = (int(track), int(section))
            buckets.setdefault(key, []).append(request)
            tracks_at_section.setdefault(int(section), set()).add(int(track))

        current_track = int(geo.track_of(np.asarray([origin]))[0])
        current_section = int(geo.section_of(np.asarray([origin]))[0])

        schedule: list[Request] = []
        while buckets:
            chosen = self._next_section(
                tracks_at_section, current_track, current_section
            )
            schedule.extend(buckets.pop(chosen))
            track, section = chosen
            tracks_at_section[section].discard(track)
            if not tracks_at_section[section]:
                del tracks_at_section[section]
            current_track, current_section = chosen
        return schedule

    def _next_section(
        self,
        tracks_at_section: dict[int, set[int]],
        current_track: int,
        current_section: int,
    ) -> tuple[int, int]:
        """First weave-pattern section holding requests, else nearest."""
        direction = 1 if current_track % 2 == 0 else -1
        for track_class, section in weave_pattern(
            current_section, direction
        ):
            track = self._pick_track(
                tracks_at_section, track_class, section, current_track
            )
            if track is not None:
                return (track, section)
        # Fallback for pattern coverage gaps: physically nearest section.
        section = min(
            tracks_at_section,
            key=lambda sec: abs(sec - current_section),
        )
        return (min(tracks_at_section[section]), section)

    @staticmethod
    def _pick_track(
        tracks_at_section: dict[int, set[int]],
        track_class: str,
        section: int,
        current_track: int,
    ) -> int | None:
        tracks = tracks_at_section.get(section)
        if not tracks:
            return None
        parity = current_track % 2
        candidates = []
        for track in tracks:
            if track_class == SAME and track != current_track:
                continue
            if track_class == CO and (
                track == current_track or track % 2 != parity
            ):
                continue
            if track_class == ANTI and track % 2 == parity:
                continue
            candidates.append(track)
        return min(candidates) if candidates else None
