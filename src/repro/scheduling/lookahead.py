"""Two-step lookahead greedy scheduling.

The paper diagnoses SLTF's weakness precisely: "It is too greedy.  It
goes astray because it is oblivious to the fact that choosing the
closest city now may force the path to traverse a very long edge
later."  LOSS repairs this globally with the max-regret rule; the
classic *local* repair is lookahead — charge each candidate not only
its own locate but also the cheapest locate available *after* it:

    score(x) = locate(here, x) + min over remaining y of locate(after x, y)

The candidate that leaves the best onward option wins.  Like LOSS, the
scheduler works on threshold-coalesced groups; each step is one
vectorized row-plus-masked-min over the remaining groups, so the whole
schedule costs O(m²) matrix work per step (m = groups).

The empirical finding is a useful negative: lookahead beats the plain
per-section SLTF but only *matches* the coalesced greedy, while LOSS
stays clearly ahead of both.  On serpentine tape, one step of myopia
repair buys little — LOSS's advantage comes from its global regret
accounting, not from looking one move deeper (quantified by the
ablation benchmark).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.constants import DEFAULT_COALESCE_THRESHOLD
from repro.model.distance_matrix import schedule_distance_matrix
from repro.scheduling.base import Scheduler, register
from repro.scheduling.coalesce import (
    coalesce_by_threshold,
    expand_groups,
)
from repro.scheduling.request import Request


def lookahead_order(distance: np.ndarray) -> list[int]:
    """Greedy 2-step-lookahead visit order.

    Parameters
    ----------
    distance:
        The ``(n + 1, n)`` schedule distance matrix (row 0 = origin,
        row ``i + 1`` = after request ``i``).

    Returns
    -------
    Visit order over the ``n`` cities.
    """
    n = distance.shape[1]
    if n == 0:
        return []
    remaining = np.ones(n, dtype=bool)
    order: list[int] = []
    current_row = 0
    for _ in range(n):
        candidates = np.flatnonzero(remaining)
        first_leg = distance[current_row, candidates]
        if candidates.size == 1:
            choice = int(candidates[0])
        else:
            # Cheapest onward locate from each candidate's out position
            # to any *other* remaining city.
            onward = distance[candidates + 1][:, candidates]
            np.fill_diagonal(onward, np.inf)
            second_leg = onward.min(axis=1)
            choice = int(candidates[np.argmin(first_leg + second_leg)])
        order.append(choice)
        remaining[choice] = False
        current_row = choice + 1
    return order


@register
class LookaheadScheduler(Scheduler):
    """SLTF with one step of lookahead, over coalesced groups."""

    name = "SLTF-lookahead"

    def __init__(
        self, threshold: int = DEFAULT_COALESCE_THRESHOLD
    ) -> None:
        self.threshold = int(threshold)

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        groups = coalesce_by_threshold(requests, self.threshold)
        if len(groups) == 1:
            return expand_groups(groups)
        total = model.geometry.total_segments
        in_segments = np.fromiter(
            (g.first_segment for g in groups),
            dtype=np.int64,
            count=len(groups),
        )
        lengths = np.fromiter(
            (
                max(1, min(g.out_segment, total - 1) - g.first_segment)
                for g in groups
            ),
            dtype=np.int64,
            count=len(groups),
        )
        distance = schedule_distance_matrix(
            model, origin, in_segments, lengths=lengths
        )
        order = lookahead_order(distance)
        return expand_groups([groups[i] for i in order])
