"""The paper's eight scheduling algorithms and supporting machinery.

Importing this package registers every scheduler; use
:func:`get_scheduler` / :func:`scheduler_names` for dynamic lookup, or
instantiate the classes directly.
"""

from repro.scheduling.auto import AutoScheduler
from repro.scheduling.base import (
    Scheduler,
    get_scheduler,
    register,
    scheduler_names,
)
from repro.scheduling.coalesce import (
    Group,
    coalesce_by_section,
    coalesce_by_threshold,
    expand_groups,
)
from repro.scheduling.estimator import (
    estimate_locate_seconds,
    estimate_schedule_seconds,
    full_read_seconds,
    locate_sequence_times,
)
from repro.scheduling.executor import ExecutionResult, execute_schedule
from repro.scheduling.fifo import FifoScheduler
from repro.scheduling.improve import (
    ImprovedLossScheduler,
    improve_schedule,
    or_opt_order,
)
from repro.scheduling.lookahead import (
    LookaheadScheduler,
    lookahead_order,
)
from repro.scheduling.loss import (
    LossScheduler,
    RawLossScheduler,
    loss_path,
    loss_path_fragments,
)
from repro.scheduling.loss_sparse import (
    SparseLossScheduler,
    sparse_loss_order,
)
from repro.scheduling.ltsp import (
    LtspExactScheduler,
    LtspGreedyScheduler,
    LtspRepairScheduler,
    LtspSweepScheduler,
    exact_ltsp_order,
    linear_deadhead_sections,
)
from repro.scheduling.opt import (
    BruteForceOptScheduler,
    OptScheduler,
    brute_force_path,
    held_karp_path,
)
from repro.scheduling.read_all import ReadEntireTapeScheduler
from repro.scheduling.request import (
    Request,
    as_requests,
    request_lengths,
    request_segments,
)
from repro.scheduling.scan import ScanScheduler
from repro.scheduling.schedule import Schedule
from repro.scheduling.sltf import (
    SltfCoalesceScheduler,
    SltfNaiveScheduler,
    SltfScheduler,
)
from repro.scheduling.sort import SortScheduler
from repro.scheduling.weave import WeaveScheduler, weave_pattern

__all__ = [
    "AutoScheduler",
    "BruteForceOptScheduler",
    "ExecutionResult",
    "FifoScheduler",
    "Group",
    "ImprovedLossScheduler",
    "LookaheadScheduler",
    "LossScheduler",
    "LtspExactScheduler",
    "LtspGreedyScheduler",
    "LtspRepairScheduler",
    "LtspSweepScheduler",
    "OptScheduler",
    "RawLossScheduler",
    "ReadEntireTapeScheduler",
    "Request",
    "ScanScheduler",
    "Schedule",
    "Scheduler",
    "SltfCoalesceScheduler",
    "SltfNaiveScheduler",
    "SltfScheduler",
    "SortScheduler",
    "SparseLossScheduler",
    "WeaveScheduler",
    "as_requests",
    "brute_force_path",
    "coalesce_by_section",
    "coalesce_by_threshold",
    "estimate_locate_seconds",
    "estimate_schedule_seconds",
    "exact_ltsp_order",
    "execute_schedule",
    "expand_groups",
    "full_read_seconds",
    "get_scheduler",
    "held_karp_path",
    "improve_schedule",
    "linear_deadhead_sections",
    "locate_sequence_times",
    "lookahead_order",
    "loss_path",
    "loss_path_fragments",
    "or_opt_order",
    "register",
    "sparse_loss_order",
    "request_lengths",
    "request_segments",
    "scheduler_names",
    "weave_pattern",
]
