"""Request types for batch scheduling."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import EmptyBatchError


@dataclass(frozen=True, slots=True, order=True)
class Request:
    """One random-read request.

    Attributes
    ----------
    segment:
        Absolute segment number of the first segment to read.
    length:
        Number of consecutive segments to transfer.  The paper's
        analysis assumes single-segment reads and notes the extension to
        multi-segment reads is trivial; the extension is implemented
        throughout this package.
    """

    segment: int
    length: int = 1

    def __post_init__(self) -> None:
        if self.segment < 0:
            raise ValueError(f"segment must be >= 0, got {self.segment}")
        if self.length < 1:
            raise ValueError(f"length must be >= 1, got {self.length}")

    @property
    def end_segment(self) -> int:
        """Segment number just past the data read (head parking spot)."""
        return self.segment + self.length


def as_requests(items: Iterable[int | Request]) -> tuple[Request, ...]:
    """Normalize a mixed iterable of segments/requests into requests.

    Accepts any iterable (generators included) and materializes it at
    most once; a tuple that already contains only :class:`Request`
    objects is returned as-is.
    """
    if isinstance(items, tuple) and all(
        type(item) is Request for item in items
    ):
        return items
    return tuple(
        item if isinstance(item, Request) else Request(int(item))
        for item in items
    )


def request_segments(requests: Sequence[Request]) -> np.ndarray:
    """First-segment numbers of a request sequence, as an int64 array."""
    return np.fromiter(
        (r.segment for r in requests), dtype=np.int64, count=len(requests)
    )


def request_lengths(requests: Sequence[Request]) -> np.ndarray:
    """Read lengths of a request sequence, as an int64 array."""
    return np.fromiter(
        (r.length for r in requests), dtype=np.int64, count=len(requests)
    )


def check_batch(requests: Sequence[Request]) -> None:
    """Reject empty batches (schedulers need at least one request)."""
    if not requests:
        raise EmptyBatchError("request batch is empty")
