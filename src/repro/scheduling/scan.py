"""SCAN: the elevator algorithm adapted to serpentine tape.

The head shuttles up the physical length of the tape reading sections
of *forward* tracks, then back down reading sections of *reverse*
tracks, repeating until every request is serviced (Figure 2 of the
paper).  Compared with SORT it switches tracks more often but makes far
fewer end-to-end passes.

The paper's pseudocode services at most one track's requests per
physical section per pass ("if some forward track T has request(T,X)"),
because the head can only follow one track while the tape moves past a
given physical region; when several forward tracks hold requests at the
same section we pick the lowest-numbered one, leaving the rest for
later passes.

As in the paper, the pass pattern is defined from the beginning of the
tape; the starting position ``I`` only affects the cost of reaching the
first serviced section.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.constants import SECTIONS_PER_TRACK
from repro.scheduling.base import Scheduler, register
from repro.scheduling.request import Request


@register
class ScanScheduler(Scheduler):
    """Elevator passes: up through forward tracks, down through reverse."""

    name = "SCAN"

    def _order(
        self, model, origin: int, requests: tuple[Request, ...]
    ) -> Sequence[Request]:
        geo = model.geometry
        ordered = sorted(requests, key=lambda r: (r.segment, r.length))
        segments = np.fromiter(
            (r.segment for r in ordered), dtype=np.int64, count=len(ordered)
        )
        tracks = geo.track_of(segments)
        sections = geo.section_of(segments)

        # (track, physical section) -> requests ascending by segment,
        # plus a (section, parity) -> pending tracks index for the passes.
        buckets: dict[tuple[int, int], list[Request]] = {}
        pending: dict[tuple[int, int], list[int]] = {}
        for request, track, section in zip(
            ordered, tracks.tolist(), np.asarray(sections).tolist()
        ):
            track, section = int(track), int(section)
            key = (track, section)
            if key not in buckets:
                buckets[key] = []
                pending.setdefault((section, track % 2), []).append(track)
            buckets[key].append(request)
        for queue in pending.values():
            queue.sort()

        schedule: list[Request] = []
        remaining = len(buckets)
        while remaining:
            for section in range(SECTIONS_PER_TRACK):
                remaining -= self._service(
                    buckets, pending, schedule, section, parity=0
                )
            for section in range(SECTIONS_PER_TRACK - 1, -1, -1):
                remaining -= self._service(
                    buckets, pending, schedule, section, parity=1
                )
        return schedule

    @staticmethod
    def _service(
        buckets: dict[tuple[int, int], list[Request]],
        pending: dict[tuple[int, int], list[int]],
        schedule: list[Request],
        section: int,
        parity: int,
    ) -> int:
        """Service the lowest pending track at ``section`` of the given
        direction; returns how many buckets were consumed (0 or 1)."""
        queue = pending.get((section, parity))
        if not queue:
            return 0
        track = queue.pop(0)
        schedule.extend(buckets.pop((track, section)))
        return 1
