"""Typed simulation events of the library kernel.

These are *kernel* events — the internal currency of the discrete-event
simulation in :mod:`repro.library.kernel` — not observability events.
They never leave the simulation: the :class:`MultiDriveSystem` consumes
them and publishes regular :mod:`repro.obs.events` onto the bus where
external observers belong.

Each event class carries a ``priority`` that breaks ties between events
scheduled at the same simulated instant.  The ordering encodes the
serving loop's invariants: every request that has *arrived by* time t
is admitted before any batch is dispatched at t (matching the
admit-then-dispatch order of the single-drive
:class:`~repro.online.system.TertiaryStorageSystem` loop), mounts
complete before the robot picks its next job, and queue deadlines are
re-examined last, after the state they watch has settled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True, slots=True)
class SimEvent:
    """Base class for kernel events (ordered by time, then priority)."""

    #: Tie-break rank at equal timestamps (lower runs first).
    priority: ClassVar[int] = 50


@dataclass(frozen=True, slots=True)
class RequestArrived(SimEvent):
    """A library request reached the system."""

    priority: ClassVar[int] = 0

    request_index: int


@dataclass(frozen=True, slots=True)
class MountStarted(SimEvent):
    """A robot arm began an exchange for a drive bay."""

    priority: ClassVar[int] = 10

    drive: int
    label: str
    #: Arm performing the exchange (0 in a single-arm library).
    arm: int = 0


@dataclass(frozen=True, slots=True)
class MountCompleted(SimEvent):
    """A cartridge finished loading into a drive bay."""

    priority: ClassVar[int] = 20

    drive: int
    label: str
    requested_seconds: float
    robot_seconds: float
    #: Arm that performed the exchange (0 in a single-arm library).
    arm: int = 0


@dataclass(frozen=True, slots=True)
class BatchCompleted(SimEvent):
    """A drive finished executing a dispatched batch."""

    priority: ClassVar[int] = 20

    drive: int
    label: str
    batch_index: int


@dataclass(frozen=True, slots=True)
class RobotIdle(SimEvent):
    """A robot arm finished a job and can take the next one.

    Carries the arm index so each arm of a pool reacts only to its own
    idle transitions; the default keeps a bare ``RobotIdle()`` meaning
    "the single arm", as before the arm pool existed.
    """

    priority: ClassVar[int] = 25

    arm: int = 0


@dataclass(frozen=True, slots=True)
class BatchDispatched(SimEvent):
    """A drive bay was told to flush its tape's queue and execute.

    Dispatch ranks after arrivals at the same instant so the flushed
    batch includes every request whose arrival time equals the dispatch
    time — exactly what the single-drive loop's "admit everything that
    has arrived by now, then flush" ordering produces.
    """

    priority: ClassVar[int] = 30

    drive: int
    label: str


@dataclass(frozen=True, slots=True)
class QueueDeadline(SimEvent):
    """A queued request may have waited past the batching deadline."""

    priority: ClassVar[int] = 40

    label: str
