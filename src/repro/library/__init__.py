"""The robotic tape library: cartridges, drives, arms, kernel, system.

``repro.library`` holds everything between "a request names a
cartridge" and "a drive reads its segments": the cartridge shelf and
single-drive :class:`TapeLibrary` (moved here from
``repro.online.library``), the discrete-event
:class:`~repro.library.kernel.EventKernel`, the
:class:`~repro.library.robot.ArmPool` of
:class:`~repro.library.robot.RobotArm` exchange servers, pluggable
drive-assignment / exchange / arm-assignment policies, the
:class:`~repro.library.aging.MediaAgingModel` of per-cartridge wear,
and the N-drive :class:`MultiDriveSystem` that ties them together.
See ``docs/LIBRARY.md``.
"""

# Cartridge names first: repro.online imports them from the submodule
# directly, and the system module below imports repro.online, so this
# order keeps the partial-module window safe in both directions.
from repro.library.cartridge import (
    Cartridge,
    DEFAULT_EXCHANGE_SECONDS,
    TapeLibrary,
)
from repro.library.aging import MediaAgingModel
from repro.library.drives import DriveBay, DriveState
from repro.library.kernel import EventKernel
from repro.library.policies import (
    ArmAssignmentPolicy,
    ArmView,
    AssignmentPolicy,
    DedicatedBayArms,
    DrainBatchExchange,
    ExchangePolicy,
    LeastBusyArms,
    LeastLoadedAssignment,
    PreemptOnDeadlineExchange,
    RoundRobinArms,
    TapeAffinityAssignment,
    TapeQueueView,
    arm_policy_names,
    assignment_policy_names,
    exchange_policy_names,
    get_arm_policy,
    get_assignment_policy,
    get_exchange_policy,
)
from repro.library.requests import LibraryRequest, poisson_library_stream
from repro.library.robot import ArmPool, ExchangeJob, RobotArm
from repro.library.system import LibraryBatchRecord, MultiDriveSystem

__all__ = [
    "ArmAssignmentPolicy",
    "ArmPool",
    "ArmView",
    "AssignmentPolicy",
    "Cartridge",
    "DEFAULT_EXCHANGE_SECONDS",
    "DedicatedBayArms",
    "DrainBatchExchange",
    "DriveBay",
    "DriveState",
    "EventKernel",
    "ExchangeJob",
    "ExchangePolicy",
    "LeastBusyArms",
    "LeastLoadedAssignment",
    "LibraryBatchRecord",
    "LibraryRequest",
    "MediaAgingModel",
    "MultiDriveSystem",
    "PreemptOnDeadlineExchange",
    "RobotArm",
    "RoundRobinArms",
    "TapeAffinityAssignment",
    "TapeLibrary",
    "TapeQueueView",
    "arm_policy_names",
    "assignment_policy_names",
    "exchange_policy_names",
    "get_arm_policy",
    "get_assignment_policy",
    "get_exchange_policy",
    "poisson_library_stream",
]
