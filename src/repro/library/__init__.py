"""The robotic tape library: cartridges, drives, robot, kernel, system.

``repro.library`` holds everything between "a request names a
cartridge" and "a drive reads its segments": the cartridge shelf and
single-drive :class:`TapeLibrary` (moved here from
``repro.online.library``), the discrete-event
:class:`~repro.library.kernel.EventKernel`, the shared
:class:`~repro.library.robot.RobotArm`, pluggable drive-assignment and
exchange policies, and the N-drive :class:`MultiDriveSystem` that ties
them together.  See ``docs/LIBRARY.md``.
"""

# Cartridge names first: repro.online imports them from the submodule
# directly, and the system module below imports repro.online, so this
# order keeps the partial-module window safe in both directions.
from repro.library.cartridge import (
    Cartridge,
    DEFAULT_EXCHANGE_SECONDS,
    TapeLibrary,
)
from repro.library.drives import DriveBay, DriveState
from repro.library.kernel import EventKernel
from repro.library.policies import (
    AssignmentPolicy,
    DrainBatchExchange,
    ExchangePolicy,
    LeastLoadedAssignment,
    PreemptOnDeadlineExchange,
    TapeAffinityAssignment,
    TapeQueueView,
    assignment_policy_names,
    exchange_policy_names,
    get_assignment_policy,
    get_exchange_policy,
)
from repro.library.requests import LibraryRequest, poisson_library_stream
from repro.library.robot import ExchangeJob, RobotArm
from repro.library.system import LibraryBatchRecord, MultiDriveSystem

__all__ = [
    "AssignmentPolicy",
    "Cartridge",
    "DEFAULT_EXCHANGE_SECONDS",
    "DrainBatchExchange",
    "DriveBay",
    "DriveState",
    "EventKernel",
    "ExchangeJob",
    "ExchangePolicy",
    "LeastLoadedAssignment",
    "LibraryBatchRecord",
    "LibraryRequest",
    "MultiDriveSystem",
    "PreemptOnDeadlineExchange",
    "RobotArm",
    "TapeAffinityAssignment",
    "TapeLibrary",
    "TapeQueueView",
    "assignment_policy_names",
    "exchange_policy_names",
    "get_assignment_policy",
    "get_exchange_policy",
    "poisson_library_stream",
]
