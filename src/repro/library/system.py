"""The event-driven multi-drive tertiary storage system.

:class:`MultiDriveSystem` generalizes the paper's single-drive serving
loop (:class:`~repro.online.system.TertiaryStorageSystem`) to N drives
and M cartridges on the :class:`~repro.library.kernel.EventKernel`:
requests address named cartridges, accumulate in per-tape batch
queues, and idle drive bays pick tapes via a pluggable
:class:`~repro.library.policies.AssignmentPolicy` (which tape next) and
:class:`~repro.library.policies.ExchangePolicy` (when to give one up).
Cartridge exchanges go through an
:class:`~repro.library.robot.ArmPool` of ``arms`` robot arms routed by
an :class:`~repro.library.policies.ArmAssignmentPolicy`; each arm
charges the same rewind-to-BOT and exchange costs as the single-drive
:class:`~repro.library.cartridge.TapeLibrary`, and a 1-arm pool
serializes exchanges exactly like the original shared arm
(bit-identical, pinned by the arm-pool golden tests).

With ``aging=`` the library also models media wear
(:class:`~repro.library.aging.MediaAgingModel`): every completed mount
cycle of a cartridge drifts the *actual* drive behaviour away from the
pristine model the scheduler plans with and grows a bad-spot read-fault
rate, so old tapes produce exactly the estimated-vs-actual gap of the
paper's Fig. 8/9 sensitivity studies — plus real failures for the
resilience layer (and the striped-volume degraded reads above it) to
absorb.

Per-drive batch execution reuses the existing machinery unchanged —
the configured scheduling algorithm (LOSS/SLTF/SCAN/...), the
executor, and the resilience layer's retry policy and bounded requeues
— so a 1-drive, 1-cartridge system with the cartridge preloaded
reproduces the single-drive serving path bit-identically (the
equivalence the test suite pins).

With ``bus=`` the whole library publishes onto one stream: the obs
events of the single-drive path (queue, schedule, batch, request,
fault) now carry a ``drive`` field, mounts/unmounts carry the bay, and
each completed exchange additionally publishes
:class:`~repro.obs.events.MountWaitRecorded` so mount waits and robot
occupancy are first-class metrics (see
:func:`~repro.obs.metrics.bind_standard_metrics`).

The full :class:`~repro.resilience.ResilienceConfig` contract holds
here, budgets included: blowing the wall-clock scheduling budget or
the simulated execution budget on any bay trips the system-wide sticky
degraded mode (the schedulers are shared, so "this algorithm is too
slow" is a library-wide fact, not a per-bay one) and every later batch
on every bay uses the fallback algorithm.

The serving loop is also available in opened form for layers that
inject requests while the simulation runs (the ``repro.serve``
gateway): :meth:`MultiDriveSystem.begin` / :meth:`~MultiDriveSystem.submit`
/ :meth:`~MultiDriveSystem.finish` decompose :meth:`~MultiDriveSystem.run`,
and the ``completion_listeners`` / ``failure_listeners`` /
``batch_listeners`` hooks observe outcomes synchronously, in kernel
order, with the original request objects (identity preserved across
requeues).
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, replace

from repro.drive.simulated import SimulatedDrive
from repro.exceptions import LibraryError, UnknownTape
from repro.library import events as sim
from repro.library.aging import MediaAgingModel
from repro.library.cartridge import Cartridge, DEFAULT_EXCHANGE_SECONDS
from repro.library.drives import DriveBay, DriveState
from repro.library.kernel import EventKernel
from repro.library.policies import (
    ArmAssignmentPolicy,
    AssignmentPolicy,
    DrainBatchExchange,
    ExchangePolicy,
    TapeAffinityAssignment,
    TapeQueueView,
)
from repro.library.requests import LibraryRequest
from repro.library.robot import ArmPool, ExchangeJob
from repro.obs.bus import EventBus
from repro.obs.events import (
    ArmExchangeRecorded,
    BatchCompleted,
    BatchStarted,
    DegradedMode,
    MountWaitRecorded,
    RequestCompleted,
    RequestFailed,
    ScheduleComputed,
    TapeMounted,
    TapeUnmounted,
)
from repro.online.batch_queue import BatchPolicy, BatchQueue
from repro.online.metrics import ResponseStats
from repro.online.system import BatchRecord
from repro.resilience.injection import FaultInjector, FaultPlan
from repro.resilience.policy import ResilienceConfig
from repro.scheduling.base import Scheduler, get_scheduler
from repro.scheduling.estimator import locate_sequence_times
from repro.scheduling.executor import execute_schedule
from repro.scheduling.loss import LossScheduler
from repro.scheduling.request import Request


@dataclass(frozen=True)
class LibraryBatchRecord(BatchRecord):
    """A :class:`~repro.online.system.BatchRecord` plus its bay and tape."""

    drive: int = 0
    label: str = ""


def _derived_seed(seed: int, drive_index: int, mount_index: int) -> int:
    """Per-(drive, mount) fault-plan seed.

    The very first mount on bay 0 keeps the base seed unchanged, so a
    preloaded 1-drive system draws the exact fault stream of the
    single-drive path; later mounts get independent deterministic
    streams.
    """
    if drive_index == 0 and mount_index == 0:
        return seed
    return (
        seed
        ^ ((drive_index + 1) * 0x9E3779B97F4A7C15)
        ^ ((mount_index + 1) * 0xD6E8FEB86659FD93)
    ) & 0xFFFFFFFFFFFFFFFF


class MultiDriveSystem:
    """N drives, M cartridges, K robot arms, in simulated time.

    Parameters
    ----------
    cartridges:
        The shelf (labels must be unique).
    drives:
        Number of drive bays.
    arms:
        Number of robot arms in the pool (default 1 — the original
        single shared arm, bit-identical to it).
    arm_assignment:
        Which arm performs each exchange when ``arms > 1``
        (default: least-busy; see
        :class:`~repro.library.policies.ArmAssignmentPolicy`).
    scheduler:
        Per-batch scheduling algorithm (default: the paper's LOSS),
        shared by every bay.
    policy:
        Batching policy of each per-tape queue.
    assignment:
        Which waiting tape an idle bay mounts
        (default: tape affinity — longest-waiting tape first).
    exchange:
        When a bay releases a tape that still has queued requests
        (default: drain the mounted tape first).
    exchange_seconds:
        Robot time per cartridge movement.
    bus:
        Optional :class:`~repro.obs.bus.EventBus` instrumenting the
        whole library (see module docstring).
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig`; enables
        in-place retries, bounded requeues, and the degraded-mode
        schedule/execution budgets (see module docstring).
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan`; every mounted
        drive is wrapped in a
        :class:`~repro.resilience.FaultInjector` with a per-(bay,
        mount) derived seed.  Implies a default ``resilience`` config
        if none was given.
    aging:
        Optional :class:`~repro.library.aging.MediaAgingModel`; each
        cartridge's drive-side behaviour degrades with its completed
        mount cycles (locate drift plus growing bad-spot read faults)
        while the scheduler keeps planning with the pristine model.
        Implies a default ``resilience`` config if the model can
        inject faults and none was given.
    preload:
        Labels mounted (at no cost, position 0) into bays 0..k-1
        before time zero — the paper's "robot has just loaded a new
        tape" initial condition, and the hook that makes the 1-drive
        equivalence exact.
    """

    def __init__(
        self,
        cartridges: Sequence[Cartridge],
        *,  # configuration is keyword-only, per the package-wide
        # constructor convention (see docs/API.md).
        drives: int = 2,
        arms: int = 1,
        arm_assignment: ArmAssignmentPolicy | None = None,
        scheduler: Scheduler | None = None,
        policy: BatchPolicy | None = None,
        assignment: AssignmentPolicy | None = None,
        exchange: ExchangePolicy | None = None,
        exchange_seconds: float = DEFAULT_EXCHANGE_SECONDS,
        bus: EventBus | None = None,
        resilience: ResilienceConfig | None = None,
        fault_plan: FaultPlan | None = None,
        aging: MediaAgingModel | None = None,
        preload: Sequence[str] | None = None,
    ) -> None:
        if drives < 1:
            raise LibraryError("drives must be >= 1")
        labels = [c.label for c in cartridges]
        if len(set(labels)) != len(labels):
            raise LibraryError("cartridge labels must be unique")
        if not labels:
            raise LibraryError("at least one cartridge is required")
        self._shelf: dict[str, Cartridge] = {
            c.label: c for c in cartridges
        }
        self.scheduler = (
            scheduler if scheduler is not None else LossScheduler()
        )
        self.policy = policy if policy is not None else BatchPolicy()
        self.assignment = (
            assignment if assignment is not None
            else TapeAffinityAssignment()
        )
        self.exchange = (
            exchange if exchange is not None else DrainBatchExchange()
        )
        self.bus = bus
        self.resilience = resilience
        self.fault_plan = fault_plan
        self.aging = aging
        if fault_plan is not None and fault_plan.any_faults:
            if self.resilience is None:
                self.resilience = ResilienceConfig()
        if aging is not None and aging.any_faults:
            if self.resilience is None:
                self.resilience = ResilienceConfig()

        self.kernel = EventKernel()
        self.robot = ArmPool(
            self.kernel,
            exchange_seconds,
            arms=arms,
            assignment=arm_assignment,
        )
        self.bays = [DriveBay(index) for index in range(drives)]
        self._queues: dict[str, BatchQueue] = {
            label: BatchQueue(policy=self.policy, bus=bus)
            for label in sorted(self._shelf)
        }
        self.stats = ResponseStats()
        self.batches: list[LibraryBatchRecord] = []
        #: Requests that exhausted their requeue budget.
        self.failed: list[LibraryRequest] = []
        #: Times a failed request re-entered its tape's queue.
        self.requeues = 0
        self.submitted = 0
        #: Synchronous outcome hooks for layers stacked above the
        #: library (cache tier, serve gateway).  Called in kernel
        #: order with the *original* submitted request objects —
        #: identity survives retries and requeues, so a listener can
        #: key side state off ``id(request)`` or subclass attributes.
        self.completion_listeners: list[
            Callable[[LibraryRequest, float, int], None]
        ] = []
        self.failure_listeners: list[
            Callable[[LibraryRequest], None]
        ] = []
        self.batch_listeners: list[Callable[..., None]] = []
        self._requeue_counts: dict[int, int] = {}
        self._degraded = False
        self._fallback_scheduler: Scheduler | None = None
        self._claims: dict[str, int] = {}
        #: Labels whose in-progress mount came from an exchange-policy
        #: preemption: they dispatch the moment the mount completes.
        self._preempt_mounts: set[str] = set()
        self._pending_unload: dict[int, tuple[str, float]] = {}
        self._in_flight: dict[int, tuple] = {}
        self._requests: list[LibraryRequest] = []
        self._mount_count = 0
        #: Completed mount cycles per cartridge label (media wear).
        self._label_mounts: dict[str, int] = {}
        self._ran = False

        self.kernel.on(sim.RequestArrived, self._on_arrival)
        self.kernel.on(sim.MountStarted, self._on_mount_started)
        self.kernel.on(sim.MountCompleted, self._on_mount_completed)
        self.kernel.on(sim.BatchDispatched, self._on_batch_dispatched)
        self.kernel.on(sim.BatchCompleted, self._on_batch_completed)
        self.kernel.on(sim.QueueDeadline, self._on_deadline)

        preloaded: set[str] = set()
        for index, label in enumerate(preload or ()):
            if index >= drives:
                raise LibraryError(
                    f"cannot preload {len(preload)} cartridges into "
                    f"{drives} drives"
                )
            if label in preloaded:
                raise LibraryError(
                    f"cartridge {label!r} preloaded twice"
                )
            preloaded.add(label)
            bay = self.bays[index]
            bay.drive = self._build_drive(self.cartridge(label), index)
            bay.label = label
            bay.state = DriveState.IDLE
            self._mount_count += 1

    # -- state -------------------------------------------------------------

    @property
    def clock_seconds(self) -> float:
        """The simulated clock (kernel time)."""
        return self.kernel.now_seconds

    @property
    def completed(self) -> int:
        """Requests serviced so far."""
        return self.stats.count

    @property
    def lost(self) -> int:
        """Requests neither completed nor surfaced as failed.

        Zero after a finished run — anything else is a scheduling bug,
        not a statistic.
        """
        return self.submitted - self.stats.count - len(self.failed)

    @property
    def exchanges(self) -> int:
        """Robot exchanges performed (preloads are free and uncounted)."""
        return self.robot.exchanges

    @property
    def degraded(self) -> bool:
        """Has the library dropped to its fallback scheduler?"""
        return self._degraded

    def _active_scheduler(self) -> Scheduler:
        """The scheduler for the next batch (fallback once degraded)."""
        if self._degraded:
            if self._fallback_scheduler is None:
                self._fallback_scheduler = get_scheduler(
                    self.resilience.fallback_algorithm
                )
            return self._fallback_scheduler
        return self.scheduler

    def _enter_degraded(self, reason: str, now: float) -> None:
        """Trip degraded mode (sticky, library-wide: the schedulers
        are shared, so every bay's later batches use the fallback)."""
        if self._degraded:
            return
        self._degraded = True
        if self.bus is not None:
            self.bus.publish(
                DegradedMode(
                    seconds=now,
                    batch_index=len(self.batches) - 1,
                    reason=reason,
                    from_algorithm=self.scheduler.name,
                    to_algorithm=self.resilience.fallback_algorithm,
                )
            )

    def labels(self) -> list[str]:
        """All cartridge labels, sorted."""
        return sorted(self._shelf)

    def cartridge(self, label: str) -> Cartridge:
        """Look up a shelved cartridge."""
        try:
            return self._shelf[label]
        except KeyError:
            raise UnknownTape(f"no cartridge labelled {label!r}") from None

    def queue_depth(self, label: str) -> int:
        """Queued (undispatched) requests for one tape."""
        try:
            return len(self._queues[label])
        except KeyError:
            raise UnknownTape(f"no cartridge labelled {label!r}") from None

    # -- the run ------------------------------------------------------------

    def run(self, requests: Iterable[LibraryRequest]) -> ResponseStats:
        """Service a timed request stream to completion.

        Accepts any iterable (materialized once); order does not
        matter.  Returns the response-time statistics (also kept on
        ``self.stats``).  A system instance runs once — the kernel's
        clock cannot rewind.

        Equivalent to :meth:`begin`, :meth:`submit` for each request
        (oldest first), then :meth:`finish` — the opened form a
        serving layer uses to inject requests while the kernel runs.
        """
        self.begin()
        items = sorted(requests, key=lambda r: r.arrival_seconds)
        for request in items:
            if request.label not in self._shelf:
                raise UnknownTape(
                    f"no cartridge labelled {request.label!r}"
                )
        for request in items:
            self.submit(request)
        return self.finish()

    def begin(self) -> None:
        """Open the system for :meth:`submit` (one-shot, like
        :meth:`run`)."""
        if self._ran:
            raise LibraryError(
                "this system already ran; build a fresh instance"
            )
        self._ran = True

    def submit(self, request: LibraryRequest) -> int:
        """Inject one request; returns its submission index.

        Legal between :meth:`begin` and :meth:`finish`, including from
        kernel handlers *while* :meth:`finish` runs (how the serve
        gateway releases admitted requests mid-simulation).  A request
        whose arrival time is already in the past enters its queue at
        the current kernel time; its response time still counts from
        the true arrival.
        """
        if not self._ran:
            raise LibraryError("call begin() before submit()")
        if request.label not in self._shelf:
            raise UnknownTape(
                f"no cartridge labelled {request.label!r}"
            )
        index = len(self._requests)
        self._requests.append(request)
        self.submitted += 1
        self.kernel.schedule(
            max(self.kernel.now_seconds, request.arrival_seconds),
            sim.RequestArrived(request_index=index),
        )
        return index

    def finish(self) -> ResponseStats:
        """Drain the kernel to quiescence and return the statistics."""
        if not self._ran:
            raise LibraryError("call begin() before finish()")
        self.kernel.run()
        # A policy with flush_when_idle=False and no deadline can
        # strand a final partial batch; drain it rather than lose it.
        while self._queued_total() > 0:
            if not self._pump(force=True):
                raise LibraryError(
                    "stranded requests with no dispatchable bay"
                )
            self.kernel.run()
        return self.stats

    def _queued_total(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def _set_time(self) -> None:
        if self.bus is not None:
            self.bus.set_time(self.kernel.now_seconds)

    # -- drive construction --------------------------------------------------

    def _build_drive(self, cartridge: Cartridge, drive_index: int):
        cycles = self._label_mounts.get(cartridge.label, 0)
        self._label_mounts[cartridge.label] = cycles + 1
        model = cartridge.model
        if self.aging is not None:
            # The drive gets the aged (actual) behaviour; the
            # scheduler keeps planning with the pristine
            # ``cartridge.model`` — the Fig. 8/9 estimated-vs-actual
            # gap, driven by wear.  Zero completed cycles returns the
            # base model unwrapped.
            model = self.aging.aged_model(
                model, cartridge.label, cycles
            )
        drive = SimulatedDrive(
            model, initial_position=0, bus=self.bus
        )
        plan = self._effective_fault_plan(drive_index, cycles)
        if plan is not None:
            return FaultInjector(drive, plan, bus=self.bus)
        return drive

    def _effective_fault_plan(
        self, drive_index: int, cycles: int
    ) -> FaultPlan | None:
        """The injected-fault plan for one mount: the configured plan
        (per-(bay, mount) derived seed) plus the mounted cartridge's
        accumulated bad-spot read-fault rate, or None when neither
        injects anything."""
        aged_read = 0.0
        if self.aging is not None and cycles > 0:
            aged_read = self.aging.read_fault_probability(cycles)
        if self.fault_plan is not None and self.fault_plan.any_faults:
            plan = replace(
                self.fault_plan,
                seed=_derived_seed(
                    self.fault_plan.seed, drive_index, self._mount_count
                ),
            )
            if aged_read > 0.0:
                plan = replace(
                    plan,
                    read_fault_probability=min(
                        1.0,
                        plan.read_fault_probability + aged_read,
                    ),
                )
            return plan
        if aged_read > 0.0:
            assert self.aging is not None
            return FaultPlan(
                read_fault_probability=aged_read,
                seed=_derived_seed(
                    self.aging.seed, drive_index, self._mount_count
                ),
            )
        return None

    # -- dispatch pump -------------------------------------------------------

    def _candidate_views(self) -> list[TapeQueueView]:
        """Tapes a bay could mount now: queued work, unclaimed, not
        mounted elsewhere."""
        mounted = {
            bay.label for bay in self.bays if bay.label is not None
        }
        views = []
        for label in sorted(self._queues):
            queue = self._queues[label]
            if not len(queue):
                continue
            if label in self._claims or label in mounted:
                continue
            oldest = queue.oldest_arrival
            views.append(
                TapeQueueView(
                    label=label,
                    depth=len(queue),
                    oldest_arrival_seconds=(
                        0.0 if oldest is None else oldest
                    ),
                )
            )
        return views

    def _pump(self, force: bool = False) -> bool:
        """Give every available bay a dispatch or a mount if one is due.

        Returns True when any bay was put to work.  ``force`` bypasses
        the batching policy's readiness test (end-of-run drain).
        """
        progressed = False
        now = self.kernel.now_seconds
        for bay in self.bays:
            if not bay.available:
                continue
            action = self._choose_action(bay, now, force)
            if action is None:
                continue
            kind, label = action
            if kind == "dispatch":
                bay.state = DriveState.EXECUTING
                self.kernel.schedule(
                    now,
                    sim.BatchDispatched(drive=bay.index, label=label),
                )
            else:
                self._request_mount(
                    bay, label, now,
                    dispatch_on_mount=(kind == "preempt"),
                )
            progressed = True
        return progressed

    def _choose_action(
        self, bay: DriveBay, now: float, force: bool
    ) -> tuple[str, str] | None:
        candidates = self._candidate_views()
        mounted = bay.label
        if mounted is not None:
            queue = self._queues[mounted]
            if len(queue):
                if force or queue.ready(now, drive_idle=True):
                    return ("dispatch", mounted)
                oldest = queue.oldest_arrival
                mounted_view = TapeQueueView(
                    label=mounted,
                    depth=len(queue),
                    oldest_arrival_seconds=(
                        0.0 if oldest is None else oldest
                    ),
                )
                if not candidates or not self.exchange.should_release(
                    mounted_view, candidates, now
                ):
                    return None
                # A preemption must make progress: the tape mounted in
                # place of this one dispatches as soon as it loads,
                # whatever the batching policy says, or two non-ready
                # tapes would swap a bay back and forth forever.
                choice = self.assignment.choose(mounted, candidates, now)
                if choice is None or choice == mounted:
                    return None
                return ("preempt", choice)
            choice = self.assignment.choose(mounted, candidates, now)
            if choice is None or choice == mounted:
                return None
            return ("mount", choice)
        choice = self.assignment.choose(None, candidates, now)
        if choice is None:
            return None
        return ("mount", choice)

    def _request_mount(
        self,
        bay: DriveBay,
        label: str,
        now: float,
        dispatch_on_mount: bool = False,
    ) -> None:
        self._claims[label] = bay.index
        if dispatch_on_mount:
            self._preempt_mounts.add(label)
        unload_label = bay.label
        rewind_seconds = 0.0
        if bay.drive is not None and unload_label is not None:
            # Deterministic: the bay does nothing else between this
            # request and the exchange, so rewinding the (discarded)
            # simulator now fixes the unload time.
            rewind_seconds = bay.drive.rewind()
            self._pending_unload[bay.index] = (
                unload_label, rewind_seconds
            )
        bay.state = DriveState.MOUNTING
        bay.label = None
        bay.drive = None
        self.robot.submit(
            ExchangeJob(
                drive=bay.index,
                label=label,
                requested_seconds=now,
                unload_label=unload_label,
                rewind_seconds=rewind_seconds,
            )
        )

    # -- kernel event handlers -----------------------------------------------

    def _on_arrival(self, event: sim.RequestArrived) -> None:
        self._set_time()
        request = self._requests[event.request_index]
        queue = self._queues[request.label]
        # The request object itself goes through the queue (it quacks
        # like a TimedRequest), so completions and failures hand the
        # original object — label, identity, and any subclass fields
        # intact — back to the listeners.
        queue.push(request)
        self._schedule_deadline(
            request.label, request.arrival_seconds
        )
        self._pump()

    def _schedule_deadline(
        self, label: str, arrival_seconds: float
    ) -> None:
        deadline = self.policy.next_deadline_seconds(arrival_seconds)
        if math.isinf(deadline):
            return
        self.kernel.schedule(
            max(self.kernel.now_seconds, deadline),
            sim.QueueDeadline(label=label),
        )

    def _on_deadline(self, event: sim.QueueDeadline) -> None:
        self._set_time()
        self._pump()

    def _on_mount_started(self, event: sim.MountStarted) -> None:
        self._set_time()
        unload = self._pending_unload.pop(event.drive, None)
        if unload is not None and self.bus is not None:
            old_label, rewind_seconds = unload
            self.bus.publish(
                TapeUnmounted(
                    seconds=self.kernel.now_seconds
                    + rewind_seconds
                    + self.robot.exchange_seconds,
                    label=old_label,
                    rewind_seconds=rewind_seconds,
                    drive=event.drive,
                )
            )

    def _on_mount_completed(self, event: sim.MountCompleted) -> None:
        self._set_time()
        now = self.kernel.now_seconds
        bay = self.bays[event.drive]
        bay.drive = self._build_drive(
            self.cartridge(event.label), event.drive
        )
        bay.label = event.label
        bay.state = DriveState.IDLE
        bay.mounts += 1
        self._mount_count += 1
        self._claims.pop(event.label, None)
        if self.bus is not None:
            self.bus.publish(
                TapeMounted(
                    seconds=now,
                    label=event.label,
                    exchange_seconds=self.robot.exchange_seconds,
                    drive=event.drive,
                )
            )
            self.bus.publish(
                MountWaitRecorded(
                    seconds=now,
                    drive=event.drive,
                    label=event.label,
                    wait_seconds=now - event.requested_seconds,
                    robot_seconds=event.robot_seconds,
                    arm=event.arm,
                )
            )
            self.bus.publish(
                ArmExchangeRecorded(
                    seconds=now,
                    arm=event.arm,
                    drive=event.drive,
                    label=event.label,
                    busy_seconds=event.robot_seconds,
                    queued=self.robot.arms[event.arm].queued,
                )
            )
        if (
            event.label in self._preempt_mounts
            and len(self._queues[event.label])
        ):
            self._preempt_mounts.discard(event.label)
            bay.state = DriveState.EXECUTING
            self.kernel.schedule(
                now,
                sim.BatchDispatched(
                    drive=event.drive, label=event.label
                ),
            )
            return
        self._preempt_mounts.discard(event.label)
        self._pump()

    def _on_batch_dispatched(self, event: sim.BatchDispatched) -> None:
        self._set_time()
        now = self.kernel.now_seconds
        bay = self.bays[event.drive]
        queue = self._queues[event.label]
        batch = queue.flush()
        if not batch:  # pragma: no cover - queues only grow pre-flush
            bay.state = DriveState.IDLE
            self._pump()
            return
        drive = bay.require_drive()
        model = self.cartridge(event.label).model
        requests = [
            Request(item.segment, item.length) for item in batch
        ]
        schedule_started = time.perf_counter()
        schedule = self._active_scheduler().schedule(
            model, drive.position, requests
        )
        schedule_wall = time.perf_counter() - schedule_started
        batch_index = len(self.batches)
        estimated_locates = None
        if self.bus is not None:
            self.bus.publish(
                ScheduleComputed(
                    seconds=now,
                    algorithm=schedule.algorithm,
                    batch_size=len(schedule),
                    origin=schedule.origin,
                    estimated_seconds=schedule.estimated_seconds,
                )
            )
            self.bus.publish(
                BatchStarted(
                    seconds=now,
                    batch_index=batch_index,
                    batch_size=len(batch),
                    origin=schedule.origin,
                    drive=event.drive,
                )
            )
            if not schedule.whole_tape:
                estimated_locates = locate_sequence_times(
                    model, schedule
                )
        result = execute_schedule(
            drive,
            schedule,
            bus=self.bus,
            estimated_locate_seconds=estimated_locates,
            base_seconds=now,
            policy=(
                None if self.resilience is None
                else self.resilience.retry
            ),
        )
        queue_wait = sum(
            now - item.arrival_seconds for item in batch
        )
        self.batches.append(
            LibraryBatchRecord(
                start_seconds=now,
                size=len(batch),
                algorithm=schedule.algorithm,
                execution_seconds=result.total_seconds,
                queue_wait_seconds=queue_wait,
                locate_seconds=(
                    result.locate_seconds - result.rewind_seconds
                ),
                transfer_seconds=result.transfer_seconds,
                rewind_seconds=result.rewind_seconds,
                estimated_seconds=schedule.estimated_seconds,
                fault_seconds=result.fault_seconds,
                failed=result.failed_count,
                drive=event.drive,
                label=event.label,
            )
        )
        bay.busy_seconds += result.total_seconds
        self._in_flight[batch_index] = (batch, schedule, result)
        self.kernel.schedule(
            now + result.total_seconds,
            sim.BatchCompleted(
                drive=event.drive,
                label=event.label,
                batch_index=batch_index,
            ),
        )
        if self.resilience is not None:
            if schedule_wall > self.resilience.schedule_wall_budget_seconds:
                self._enter_degraded(
                    f"scheduling took {schedule_wall:.3f} s of wall "
                    "clock, over budget",
                    now + result.total_seconds,
                )
            elif (
                result.total_seconds
                > self.resilience.execution_budget_seconds
            ):
                self._enter_degraded(
                    f"batch execution took {result.total_seconds:.1f} "
                    "simulated s, over budget",
                    now + result.total_seconds,
                )

    def _on_batch_completed(self, event: sim.BatchCompleted) -> None:
        self._set_time()
        now = self.kernel.now_seconds
        bay = self.bays[event.drive]
        batch, schedule, result = self._in_flight.pop(
            event.batch_index
        )
        record = self.batches[event.batch_index]
        by_key: dict[tuple[int, int], list[LibraryRequest]] = {}
        for item in batch:
            by_key.setdefault(
                (item.segment, item.length), []
            ).append(item)
        for position, request in enumerate(schedule):
            item = by_key[(request.segment, request.length)].pop(0)
            if result.success is None or result.success[position]:
                self._requeue_counts.pop(id(item), None)
                self._complete(
                    item,
                    record.start_seconds
                    + float(result.completion_seconds[position]),
                    position,
                    event.drive,
                )
            else:
                self._handle_failure(
                    item, position, event.label, now
                )
        if self.bus is not None:
            self.bus.publish(
                BatchCompleted(
                    seconds=now,
                    batch_index=event.batch_index,
                    algorithm=record.algorithm,
                    batch_size=record.size,
                    queue_wait_seconds=record.queue_wait_seconds,
                    locate_seconds=record.locate_seconds,
                    transfer_seconds=record.transfer_seconds,
                    rewind_seconds=record.rewind_seconds,
                    total_seconds=record.execution_seconds,
                    estimated_seconds=record.estimated_seconds,
                    fault_seconds=record.fault_seconds,
                    drive=event.drive,
                )
            )
        for listener in self.batch_listeners:
            listener(event.label, event.drive, batch, schedule, result)
        bay.state = DriveState.IDLE
        bay.batches += 1
        self._pump()

    def _complete(
        self,
        item: LibraryRequest,
        completion_seconds: float,
        position: int,
        drive_index: int,
    ) -> None:
        self.stats.record(item.arrival_seconds, completion_seconds)
        for listener in self.completion_listeners:
            listener(item, completion_seconds, drive_index)
        if self.bus is not None:
            self.bus.publish(
                RequestCompleted(
                    seconds=completion_seconds,
                    position=position,
                    segment=item.segment,
                    length=item.length,
                    arrival_seconds=item.arrival_seconds,
                    completion_seconds=completion_seconds,
                    drive=drive_index,
                )
            )

    def _handle_failure(
        self,
        item: LibraryRequest,
        position: int,
        label: str,
        now: float,
    ) -> None:
        count = self._requeue_counts.get(id(item), 0)
        if (
            self.resilience is not None
            and count < self.resilience.max_requeues
        ):
            self._requeue_counts[id(item)] = count + 1
            self.requeues += 1
            self._queues[label].push(item)
            self._schedule_deadline(label, item.arrival_seconds)
            return
        self._requeue_counts.pop(id(item), None)
        self.failed.append(item)
        for listener in self.failure_listeners:
            listener(item)
        if self.bus is not None:
            self.bus.publish(
                RequestFailed(
                    seconds=now,
                    position=position,
                    segment=item.segment,
                    attempts=count + 1,
                    reason="requeue budget exhausted",
                )
            )
