"""The robot arms that exchange cartridges.

The library's structural bottleneck: every cartridge exchange must be
carried out by an arm, and arms are scarce.  :class:`RobotArm` is one
FIFO exchange server; :class:`ArmPool` fans exchange jobs out over K of
them through a pluggable arm-assignment policy (see
:mod:`repro.library.policies`).  A 1-arm pool is bit-identical to the
original shared-arm library: one arm, one FIFO queue, the same event
sequence at the same instants.

Each job charges the same costs as the single-drive
:class:`~repro.library.cartridge.TapeLibrary` (rewind-to-BOT plus an
exchange to shelve the outgoing cartridge, one exchange to load the
incoming one), and while an arm works on one bay every other exchange
queued on *that arm* waits — other arms keep working.  An arm schedules
:class:`~repro.library.events.MountStarted` /
:class:`~repro.library.events.MountCompleted` /
:class:`~repro.library.events.RobotIdle` kernel events; the system
layer reacts to them (building the drive, publishing observability
events, re-pumping dispatch).

The rewind is charged to the arm's occupancy as well: the bay is
unusable while its outgoing cartridge rewinds, and modelling the arm as
occupied for the whole unload-load sequence matches the serial
accounting of ``TapeLibrary.mount``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.exceptions import LibraryError
from repro.library.events import MountCompleted, MountStarted, RobotIdle
from repro.library.kernel import EventKernel
from repro.library.policies import (
    ArmAssignmentPolicy,
    ArmView,
    LeastBusyArms,
)


@dataclass(frozen=True)
class ExchangeJob:
    """One requested cartridge exchange.

    Attributes
    ----------
    drive:
        Target bay index.
    label:
        Cartridge to load.
    requested_seconds:
        Simulated time the exchange was requested (mount-wait time is
        measured from here).
    unload_label:
        Cartridge currently in the bay that must be shelved first
        (None for an empty bay).
    rewind_seconds:
        Rewind-to-BOT time of the outgoing cartridge (0 for an empty
        bay); fixed at request time, since the bay does nothing else
        between the request and the exchange.
    """

    drive: int
    label: str
    requested_seconds: float
    unload_label: str | None = None
    rewind_seconds: float = 0.0


class RobotArm:
    """FIFO cartridge-exchange server on the simulation kernel.

    Attributes
    ----------
    index:
        Stable arm number (0-based); stamped onto the kernel events the
        arm schedules and onto the ``library.arm.*`` obs events the
        system publishes for it.
    exchange_seconds:
        Robot time per cartridge movement (one to shelve, one to load).
    busy_seconds:
        Total simulated time the arm has been occupied.
    exchanges:
        Jobs completed or in progress.
    """

    def __init__(
        self,
        kernel: EventKernel,
        exchange_seconds: float,
        index: int = 0,
    ) -> None:
        self._kernel = kernel
        self.index = int(index)
        self.exchange_seconds = float(exchange_seconds)
        self._queue: deque[ExchangeJob] = deque()
        self._busy = False
        self.busy_seconds = 0.0
        self.exchanges = 0
        kernel.on(RobotIdle, self._handle_idle)

    @property
    def busy(self) -> bool:
        """Is the arm currently working a job?"""
        return self._busy

    @property
    def queued(self) -> int:
        """Jobs waiting behind the current one."""
        return len(self._queue)

    def job_seconds(self, job: ExchangeJob) -> float:
        """Total arm occupancy for one job (unload, if any, plus load)."""
        duration = self.exchange_seconds
        if job.unload_label is not None:
            duration += job.rewind_seconds + self.exchange_seconds
        return duration

    def submit(self, job: ExchangeJob) -> None:
        """Queue an exchange; starts immediately if the arm is free."""
        self._queue.append(job)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        job = self._queue.popleft()
        self._busy = True
        self.exchanges += 1
        start = self._kernel.now_seconds
        duration = self.job_seconds(job)
        self.busy_seconds += duration
        self._kernel.schedule(
            start,
            MountStarted(
                drive=job.drive, label=job.label, arm=self.index
            ),
        )
        self._kernel.schedule(
            start + duration,
            MountCompleted(
                drive=job.drive,
                label=job.label,
                requested_seconds=job.requested_seconds,
                robot_seconds=duration,
                arm=self.index,
            ),
        )
        self._kernel.schedule(
            start + duration, RobotIdle(arm=self.index)
        )

    def _handle_idle(self, event: RobotIdle) -> None:
        if event.arm != self.index:
            return
        self._busy = False
        self._start_next()


class ArmPool:
    """K robot arms behind one submission surface.

    Exchange jobs submitted to the pool are handed to an arm chosen by
    the pluggable :class:`~repro.library.policies.ArmAssignmentPolicy`
    (least-busy by default); each arm then services its own queue FIFO.
    With ``arms=1`` every policy degenerates to "the one arm", so the
    pool is bit-identical to the original single shared
    :class:`RobotArm` — the equivalence the arm-pool test suite pins.

    The pool quacks like one big arm for aggregate accounting
    (``busy_seconds`` / ``exchanges`` / ``queued`` sum over the arms),
    so code written against the single-arm library keeps reading the
    same totals.
    """

    def __init__(
        self,
        kernel: EventKernel,
        exchange_seconds: float,
        arms: int = 1,
        assignment: ArmAssignmentPolicy | None = None,
    ) -> None:
        if arms < 1:
            raise LibraryError("arms must be >= 1")
        self.exchange_seconds = float(exchange_seconds)
        self.assignment = (
            assignment if assignment is not None else LeastBusyArms()
        )
        self.arms = [
            RobotArm(kernel, exchange_seconds, index=index)
            for index in range(arms)
        ]

    def __len__(self) -> int:
        return len(self.arms)

    @property
    def busy_seconds(self) -> float:
        """Total simulated time any arm has been occupied (summed)."""
        return sum(arm.busy_seconds for arm in self.arms)

    @property
    def exchanges(self) -> int:
        """Jobs completed or in progress across all arms."""
        return sum(arm.exchanges for arm in self.arms)

    @property
    def queued(self) -> int:
        """Jobs waiting across all arms."""
        return sum(arm.queued for arm in self.arms)

    @property
    def busy(self) -> bool:
        """Is any arm currently working a job?"""
        return any(arm.busy for arm in self.arms)

    def views(self) -> list[ArmView]:
        """Policy-visible snapshots of every arm, in index order."""
        return [
            ArmView(
                index=arm.index,
                busy=arm.busy,
                queued=arm.queued,
                busy_seconds=arm.busy_seconds,
            )
            for arm in self.arms
        ]

    def submit(self, job: ExchangeJob) -> RobotArm:
        """Assign an exchange to an arm; returns the chosen arm."""
        if len(self.arms) == 1:
            chosen = self.arms[0]
        else:
            index = self.assignment.choose(job.drive, self.views())
            if not 0 <= index < len(self.arms):
                raise LibraryError(
                    f"arm policy {self.assignment.name!r} chose arm "
                    f"{index}, but the pool has {len(self.arms)} arms"
                )
            chosen = self.arms[index]
        chosen.submit(job)
        return chosen

    def occupancies(self, makespan_seconds: float) -> list[float]:
        """Per-arm occupancy over a run of ``makespan_seconds``."""
        if makespan_seconds <= 0:
            return [0.0 for _ in self.arms]
        return [
            arm.busy_seconds / makespan_seconds for arm in self.arms
        ]
