"""The shared robot arm that exchanges cartridges.

One arm serves every drive bay — the library's structural bottleneck.
Exchange jobs are serviced strictly FIFO: each job charges the same
costs as the single-drive :class:`~repro.library.cartridge.TapeLibrary`
(rewind-to-BOT plus an exchange to shelve the outgoing cartridge, one
exchange to load the incoming one), and while the arm works on one bay
every other requested exchange waits.  The arm schedules
:class:`~repro.library.events.MountStarted` /
:class:`~repro.library.events.MountCompleted` /
:class:`~repro.library.events.RobotIdle` kernel events; the system
layer reacts to them (building the drive, publishing observability
events, re-pumping dispatch).

The rewind is charged to the arm's occupancy as well: the bay is
unusable while its outgoing cartridge rewinds, and modelling the arm as
occupied for the whole unload-load sequence matches the serial
accounting of ``TapeLibrary.mount``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.library.events import MountCompleted, MountStarted, RobotIdle
from repro.library.kernel import EventKernel


@dataclass(frozen=True)
class ExchangeJob:
    """One requested cartridge exchange.

    Attributes
    ----------
    drive:
        Target bay index.
    label:
        Cartridge to load.
    requested_seconds:
        Simulated time the exchange was requested (mount-wait time is
        measured from here).
    unload_label:
        Cartridge currently in the bay that must be shelved first
        (None for an empty bay).
    rewind_seconds:
        Rewind-to-BOT time of the outgoing cartridge (0 for an empty
        bay); fixed at request time, since the bay does nothing else
        between the request and the exchange.
    """

    drive: int
    label: str
    requested_seconds: float
    unload_label: str | None = None
    rewind_seconds: float = 0.0


class RobotArm:
    """FIFO cartridge-exchange server on the simulation kernel.

    Attributes
    ----------
    exchange_seconds:
        Robot time per cartridge movement (one to shelve, one to load).
    busy_seconds:
        Total simulated time the arm has been occupied.
    exchanges:
        Jobs completed or in progress.
    """

    def __init__(
        self, kernel: EventKernel, exchange_seconds: float
    ) -> None:
        self._kernel = kernel
        self.exchange_seconds = float(exchange_seconds)
        self._queue: deque[ExchangeJob] = deque()
        self._busy = False
        self.busy_seconds = 0.0
        self.exchanges = 0
        kernel.on(RobotIdle, self._handle_idle)

    @property
    def busy(self) -> bool:
        """Is the arm currently working a job?"""
        return self._busy

    @property
    def queued(self) -> int:
        """Jobs waiting behind the current one."""
        return len(self._queue)

    def job_seconds(self, job: ExchangeJob) -> float:
        """Total arm occupancy for one job (unload, if any, plus load)."""
        duration = self.exchange_seconds
        if job.unload_label is not None:
            duration += job.rewind_seconds + self.exchange_seconds
        return duration

    def submit(self, job: ExchangeJob) -> None:
        """Queue an exchange; starts immediately if the arm is free."""
        self._queue.append(job)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        job = self._queue.popleft()
        self._busy = True
        self.exchanges += 1
        start = self._kernel.now_seconds
        duration = self.job_seconds(job)
        self.busy_seconds += duration
        self._kernel.schedule(
            start, MountStarted(drive=job.drive, label=job.label)
        )
        self._kernel.schedule(
            start + duration,
            MountCompleted(
                drive=job.drive,
                label=job.label,
                requested_seconds=job.requested_seconds,
                robot_seconds=duration,
            ),
        )
        self._kernel.schedule(start + duration, RobotIdle())

    def _handle_idle(self, event: RobotIdle) -> None:
        self._busy = False
        self._start_next()
