"""Timed requests addressed to named cartridges.

The single-drive system serves :class:`~repro.workload.TimedRequest`
streams against the one mounted tape; a multi-drive library needs each
request to say *which* cartridge holds its data.  A
:class:`LibraryRequest` is a timed request plus that cartridge label,
and :func:`poisson_library_stream` generates the multi-tape analogue of
:class:`~repro.workload.PoissonArrivals`: Poisson arrivals whose
targets are uniform over (cartridge, segment).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.constants import DEFAULT_TOTAL_SEGMENTS
from repro.workload.arrivals import TimedRequest


@dataclass(frozen=True)
class LibraryRequest:
    """One request with its arrival time and target cartridge."""

    arrival_seconds: float
    label: str
    segment: int
    length: int = 1

    def timed(self) -> TimedRequest:
        """The per-tape view (drops the label) for a batch queue."""
        return TimedRequest(
            arrival_seconds=self.arrival_seconds,
            segment=self.segment,
            length=self.length,
        )


def poisson_library_stream(
    labels: Sequence[str],
    rate_per_hour: float,
    total_segments: int = DEFAULT_TOTAL_SEGMENTS,
    seed: int = 0,
    horizon_seconds: float = 3600.0,
) -> list[LibraryRequest]:
    """Poisson arrivals targeting uniform (cartridge, segment) pairs.

    ``rate_per_hour`` is the *aggregate* library arrival rate; each
    request picks its cartridge uniformly from ``labels``, so the
    per-tape rate is ``rate_per_hour / len(labels)``.
    """
    if not labels:
        raise ValueError("labels must be non-empty")
    if rate_per_hour <= 0:
        raise ValueError("rate_per_hour must be positive")
    if horizon_seconds <= 0:
        raise ValueError("horizon_seconds must be positive")
    rng = np.random.default_rng(seed)
    rate_per_second = rate_per_hour / 3600.0
    clock = 0.0
    requests: list[LibraryRequest] = []
    while True:
        clock += float(rng.exponential(1.0 / rate_per_second))
        if clock >= horizon_seconds:
            return requests
        requests.append(
            LibraryRequest(
                arrival_seconds=clock,
                label=labels[int(rng.integers(0, len(labels)))],
                segment=int(rng.integers(0, total_segments)),
            )
        )
