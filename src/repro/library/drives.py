"""Drive bays: the per-drive state the multi-drive system tracks.

A :class:`DriveBay` is one physical drive slot in the library: which
cartridge (if any) it holds, the :class:`~repro.drive.simulated
.SimulatedDrive` simulating that cartridge's mechanism, and what the
bay is currently doing.  The bay is plain state — the
:class:`~repro.library.system.MultiDriveSystem` drives all transitions
through kernel events, so everything here stays trivially inspectable
in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import LibraryError


class DriveState(enum.Enum):
    """What a drive bay is doing right now."""

    #: No cartridge loaded, nothing on the way.
    EMPTY = "empty"
    #: Cartridge loaded, drive waiting for work.
    IDLE = "idle"
    #: The robot is exchanging cartridges into this bay.
    MOUNTING = "mounting"
    #: The drive is executing a dispatched batch.
    EXECUTING = "executing"


@dataclass
class DriveBay:
    """One drive slot of the library.

    Attributes
    ----------
    index:
        Stable bay number (0-based); doubles as the ``drive`` field on
        published observability events.
    state:
        Current :class:`DriveState`.
    label:
        Label of the mounted cartridge (None while EMPTY/MOUNTING).
    drive:
        Mechanism simulator for the mounted cartridge — a fresh
        :class:`~repro.drive.simulated.SimulatedDrive` per mount
        (position 0: the robot just loaded it), possibly wrapped in a
        :class:`~repro.resilience.FaultInjector`.
    busy_seconds:
        Accumulated simulated time this bay spent executing batches
        (feeds per-drive utilization).
    mounts:
        Completed cartridge exchanges into this bay.
    batches:
        Batches executed by this bay.
    """

    index: int
    state: DriveState = DriveState.EMPTY
    label: str | None = None
    drive: object | None = None
    busy_seconds: float = field(default=0.0)
    mounts: int = 0
    batches: int = 0

    @property
    def idle_with_tape(self) -> bool:
        """Mounted and ready for a dispatch."""
        return self.state is DriveState.IDLE and self.label is not None

    @property
    def available(self) -> bool:
        """Can this bay accept a dispatch or a mount right now?"""
        return self.state in (DriveState.EMPTY, DriveState.IDLE)

    def require_drive(self):
        """The mechanism simulator (raises while nothing is mounted)."""
        if self.drive is None:
            raise LibraryError(f"bay {self.index} has no cartridge")
        return self.drive
