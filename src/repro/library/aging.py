"""Media aging: cartridges degrade with mount cycles.

Tape media wears mechanically: every mount/dismount cycle stretches the
tape and loosens the pack, so an old cartridge's *actual* locate
behaviour drifts away from the pristine key-point model the scheduler
plans with, and latent defects ("bad spots") accumulate until reads
start failing.  :class:`MediaAgingModel` turns a per-label mount-cycle
count into both effects:

* **Key-point drift** — the drive built for an aged cartridge gets a
  :class:`~repro.model.perturb.ShortLocateDeviation` wrapper whose bias
  and noise grow linearly with mount cycles, while the scheduler keeps
  planning with the pristine :attr:`Cartridge.model`.  This is exactly
  the estimated-vs-actual gap of the paper's Section 6 (Fig. 8/9
  sensitivity machinery), now driven by simulated wear instead of a
  fixed perturbation.
* **Bad spots** — the read-fault probability of the drive's
  :class:`~repro.resilience.FaultPlan` grows with mount cycles up to a
  cap, so old media triggers the resilience layer's retries, requeues
  and (for replicated volumes) degraded reads.

A cartridge on its first mount (zero completed cycles) is pristine:
``aged_model`` returns the base model unwrapped and the extra fault
rate is zero, so a system with ``aging=`` configured but no remounts
yet is bit-identical to one without it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.perturb import ShortLocateDeviation


@dataclass(frozen=True)
class MediaAgingModel:
    """Linear wear per mount cycle, capped.

    Attributes
    ----------
    drift_bias_seconds:
        Extra systematic short-locate settle time per completed mount
        cycle (the aged pack is slower to position near track ends).
    drift_noise_seconds:
        Amplitude growth of the deterministic per-pair locate noise per
        completed mount cycle.
    short_seconds:
        Locate-time threshold below which the drift bias applies (see
        :class:`~repro.model.perturb.ShortLocateDeviation`).
    bad_spot_probability:
        Added read-fault probability per completed mount cycle.
    max_bad_spot_probability:
        Cap on the accumulated read-fault probability — media wears
        out, it does not become unreadable overnight.
    max_drift_cycles:
        Cap on the cycle count used for drift (locate behaviour
        plateaus once the pack has fully loosened).
    seed:
        Base seed of the deterministic drift noise; mixed with the
        cartridge label so two equally-old cartridges drift
        differently.
    """

    drift_bias_seconds: float = 0.05
    drift_noise_seconds: float = 0.04
    short_seconds: float = 30.0
    bad_spot_probability: float = 0.002
    max_bad_spot_probability: float = 0.25
    max_drift_cycles: int = 50
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drift_bias_seconds", "drift_noise_seconds"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.bad_spot_probability <= 1.0:
            raise ValueError("bad_spot_probability must be in [0, 1]")
        if not 0.0 <= self.max_bad_spot_probability <= 1.0:
            raise ValueError(
                "max_bad_spot_probability must be in [0, 1]"
            )
        if self.max_drift_cycles < 0:
            raise ValueError("max_drift_cycles must be >= 0")

    def _label_seed(self, label: str) -> int:
        # Stable across processes (unlike hash()): FNV-1a over the
        # label bytes, mixed with the configured seed.
        mix = 0xCBF29CE484222325
        for byte in label.encode():
            mix = ((mix ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return (mix ^ (self.seed * 0x9E3779B97F4A7C15)) & 0x7FFFFFFF

    def read_fault_probability(self, cycles: int) -> float:
        """Accumulated bad-spot read-fault probability after
        ``cycles`` completed mount cycles."""
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        return min(
            self.max_bad_spot_probability,
            cycles * self.bad_spot_probability,
        )

    def aged_model(self, base, label: str, cycles: int):
        """The *actual* locate model of a cartridge after ``cycles``
        completed mount cycles (the base model itself at zero)."""
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        effective = min(cycles, self.max_drift_cycles)
        if effective == 0:
            return base
        if (
            self.drift_bias_seconds == 0.0
            and self.drift_noise_seconds == 0.0
        ):
            return base
        return ShortLocateDeviation(
            base,
            short_seconds=self.short_seconds,
            bias_seconds=self.drift_bias_seconds * effective,
            noise_seconds=self.drift_noise_seconds * effective,
            seed=self._label_seed(label),
        )

    @property
    def any_faults(self) -> bool:
        """Can this aging model ever inject read faults?"""
        return (
            self.bad_spot_probability > 0.0
            and self.max_bad_spot_probability > 0.0
        )
