"""Pluggable drive-assignment and exchange policies.

Two decisions turn per-tape batch schedules into a multi-drive system:

* **Assignment** — an idle drive bay can mount a tape; *which* waiting
  tape should it take?  :class:`TapeAffinityAssignment` goes to the
  longest-waiting tape (minimizing worst-case mount wait);
  :class:`LeastLoadedAssignment` goes to the deepest queue (maximizing
  batch size, the paper's lever for per-request cost).
* **Exchange** — a bay whose mounted tape still has queued requests
  that are not yet dispatchable: keep the tape (and its warm head
  position) or release it for another tape?
  :class:`DrainBatchExchange` never releases until the mounted tape's
  queue is empty; :class:`PreemptOnDeadlineExchange` releases once any
  other tape's oldest request has waited past a deadline.

Policies see only :class:`TapeQueueView` snapshots — label, depth,
oldest arrival — never the system internals, so new policies are easy
to add and trivially deterministic.  Ties break on the tape label, so
policy decisions are a pure function of the views.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol


@dataclass(frozen=True)
class TapeQueueView:
    """What a policy may see about one tape's queue."""

    label: str
    depth: int
    oldest_arrival_seconds: float


class AssignmentPolicy(Protocol):
    """Chooses which waiting tape an idle drive bay mounts next."""

    name: str

    def choose(
        self,
        mounted_label: str | None,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> str | None:
        """Pick a tape label from ``candidates`` (None = stay idle)."""
        ...


class ExchangePolicy(Protocol):
    """Decides whether an idle bay gives up a tape with queued work."""

    name: str

    def should_release(
        self,
        mounted: TapeQueueView,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> bool:
        """Release the mounted tape in favour of a candidate?"""
        ...


class TapeAffinityAssignment:
    """Serve the tape whose oldest request has waited longest.

    FIFO across tapes: minimizes the worst mount wait, at the cost of
    more exchanges under skewed load (a one-request tape can preempt a
    bay from a deep queue's neighbourhood).
    """

    name = "affinity"

    def choose(
        self,
        mounted_label: str | None,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> str | None:
        if not candidates:
            return None
        for view in candidates:
            if view.label == mounted_label:
                return mounted_label
        best = min(
            candidates,
            key=lambda view: (view.oldest_arrival_seconds, view.label),
        )
        return best.label


class LeastLoadedAssignment:
    """Serve the deepest queue first.

    Mounting the tape with the most queued requests amortizes the
    exchange over the biggest batch — the paper's "bigger batches
    schedule better" lever applied to mount costs.  Ties fall back to
    the oldest arrival, then the label.
    """

    name = "least-loaded"

    def choose(
        self,
        mounted_label: str | None,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> str | None:
        if not candidates:
            return None
        best = min(
            candidates,
            key=lambda view: (
                -view.depth,
                view.oldest_arrival_seconds,
                view.label,
            ),
        )
        return best.label


class DrainBatchExchange:
    """Never release a tape that still has queued requests.

    The bay drains its mounted tape completely before exchanging —
    fewest exchanges, but a busy tape can starve its neighbours'
    mount waits.
    """

    name = "drain"

    def should_release(
        self,
        mounted: TapeQueueView,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> bool:
        return False


@dataclass(frozen=True)
class PreemptOnDeadlineExchange:
    """Release the mounted tape once another tape has waited too long.

    A preemption is a service decision, not just an eviction: the
    system dispatches the replacement tape's (possibly partial) batch
    as soon as its mount completes, regardless of the batching
    policy's readiness test — otherwise two not-yet-ready tapes could
    swap a bay back and forth indefinitely.

    Attributes
    ----------
    preempt_wait_seconds:
        Mount-wait deadline: once any candidate tape's oldest request
        has waited this long, the bay gives up its mounted tape (the
        assignment policy then picks which candidate gets it).
    """

    preempt_wait_seconds: float = 900.0

    name = "preempt"

    def __post_init__(self) -> None:
        if self.preempt_wait_seconds <= 0:
            raise ValueError("preempt_wait_seconds must be positive")

    def should_release(
        self,
        mounted: TapeQueueView,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> bool:
        return any(
            now_seconds - view.oldest_arrival_seconds
            >= self.preempt_wait_seconds
            for view in candidates
        )


_ASSIGNMENT_POLICIES = {
    "affinity": TapeAffinityAssignment,
    "least-loaded": LeastLoadedAssignment,
}

_EXCHANGE_POLICIES = {
    "drain": DrainBatchExchange,
    "preempt": PreemptOnDeadlineExchange,
}


def assignment_policy_names() -> list[str]:
    """Registered drive-assignment policy names, sorted."""
    return sorted(_ASSIGNMENT_POLICIES)


def get_assignment_policy(name: str) -> AssignmentPolicy:
    """Instantiate a drive-assignment policy by name."""
    try:
        return _ASSIGNMENT_POLICIES[name]()
    except KeyError:
        known = ", ".join(assignment_policy_names())
        raise ValueError(
            f"unknown assignment policy {name!r}; known: {known}"
        ) from None


def exchange_policy_names() -> list[str]:
    """Registered exchange policy names, sorted."""
    return sorted(_EXCHANGE_POLICIES)


def get_exchange_policy(name: str) -> ExchangePolicy:
    """Instantiate an exchange policy by name."""
    try:
        return _EXCHANGE_POLICIES[name]()
    except KeyError:
        known = ", ".join(exchange_policy_names())
        raise ValueError(
            f"unknown exchange policy {name!r}; known: {known}"
        ) from None
