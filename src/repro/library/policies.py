"""Pluggable drive-assignment, exchange, and arm-assignment policies.

Three decisions turn per-tape batch schedules into a multi-drive system:

* **Assignment** — an idle drive bay can mount a tape; *which* waiting
  tape should it take?  :class:`TapeAffinityAssignment` goes to the
  longest-waiting tape (minimizing worst-case mount wait);
  :class:`LeastLoadedAssignment` goes to the deepest queue (maximizing
  batch size, the paper's lever for per-request cost).
* **Exchange** — a bay whose mounted tape still has queued requests
  that are not yet dispatchable: keep the tape (and its warm head
  position) or release it for another tape?
  :class:`DrainBatchExchange` never releases until the mounted tape's
  queue is empty; :class:`PreemptOnDeadlineExchange` releases once any
  other tape's oldest request has waited past a deadline.
* **Arm assignment** — a library with more than one robot arm must
  route each cartridge exchange to an arm.  :class:`LeastBusyArms`
  picks the arm with the shortest queue (shallowest backlog first);
  :class:`RoundRobinArms` deals exchanges out cyclically;
  :class:`DedicatedBayArms` statically partitions drive bays over arms
  (``drive % arms`` — no interference between partitions, at the cost
  of idle arms while their bays are quiet).

Policies see only snapshots — :class:`TapeQueueView` (label, depth,
oldest arrival) or :class:`ArmView` (index, busy, queue depth, busy
time) — never the system internals, so new policies are easy to add
and trivially deterministic.  Ties break on the tape label or the arm
index, so policy decisions are a pure function of the views.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol


@dataclass(frozen=True)
class TapeQueueView:
    """What a policy may see about one tape's queue."""

    label: str
    depth: int
    oldest_arrival_seconds: float


class AssignmentPolicy(Protocol):
    """Chooses which waiting tape an idle drive bay mounts next."""

    name: str

    def choose(
        self,
        mounted_label: str | None,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> str | None:
        """Pick a tape label from ``candidates`` (None = stay idle)."""
        ...


class ExchangePolicy(Protocol):
    """Decides whether an idle bay gives up a tape with queued work."""

    name: str

    def should_release(
        self,
        mounted: TapeQueueView,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> bool:
        """Release the mounted tape in favour of a candidate?"""
        ...


class TapeAffinityAssignment:
    """Serve the tape whose oldest request has waited longest.

    FIFO across tapes: minimizes the worst mount wait, at the cost of
    more exchanges under skewed load (a one-request tape can preempt a
    bay from a deep queue's neighbourhood).
    """

    name = "affinity"

    def choose(
        self,
        mounted_label: str | None,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> str | None:
        if not candidates:
            return None
        for view in candidates:
            if view.label == mounted_label:
                return mounted_label
        best = min(
            candidates,
            key=lambda view: (view.oldest_arrival_seconds, view.label),
        )
        return best.label


class LeastLoadedAssignment:
    """Serve the deepest queue first.

    Mounting the tape with the most queued requests amortizes the
    exchange over the biggest batch — the paper's "bigger batches
    schedule better" lever applied to mount costs.  Ties fall back to
    the oldest arrival, then the label.
    """

    name = "least-loaded"

    def choose(
        self,
        mounted_label: str | None,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> str | None:
        if not candidates:
            return None
        best = min(
            candidates,
            key=lambda view: (
                -view.depth,
                view.oldest_arrival_seconds,
                view.label,
            ),
        )
        return best.label


class DrainBatchExchange:
    """Never release a tape that still has queued requests.

    The bay drains its mounted tape completely before exchanging —
    fewest exchanges, but a busy tape can starve its neighbours'
    mount waits.
    """

    name = "drain"

    def should_release(
        self,
        mounted: TapeQueueView,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> bool:
        return False


@dataclass(frozen=True)
class PreemptOnDeadlineExchange:
    """Release the mounted tape once another tape has waited too long.

    A preemption is a service decision, not just an eviction: the
    system dispatches the replacement tape's (possibly partial) batch
    as soon as its mount completes, regardless of the batching
    policy's readiness test — otherwise two not-yet-ready tapes could
    swap a bay back and forth indefinitely.

    Attributes
    ----------
    preempt_wait_seconds:
        Mount-wait deadline: once any candidate tape's oldest request
        has waited this long, the bay gives up its mounted tape (the
        assignment policy then picks which candidate gets it).
    """

    preempt_wait_seconds: float = 900.0

    name = "preempt"

    def __post_init__(self) -> None:
        if self.preempt_wait_seconds <= 0:
            raise ValueError("preempt_wait_seconds must be positive")

    def should_release(
        self,
        mounted: TapeQueueView,
        candidates: Sequence[TapeQueueView],
        now_seconds: float,
    ) -> bool:
        return any(
            now_seconds - view.oldest_arrival_seconds
            >= self.preempt_wait_seconds
            for view in candidates
        )


@dataclass(frozen=True)
class ArmView:
    """What an arm-assignment policy may see about one robot arm."""

    index: int
    busy: bool
    queued: int
    busy_seconds: float

    @property
    def backlog(self) -> int:
        """Jobs ahead of a new submission (queue plus the one in hand)."""
        return self.queued + (1 if self.busy else 0)


class ArmAssignmentPolicy(Protocol):
    """Chooses which robot arm performs a cartridge exchange."""

    name: str

    def choose(
        self, drive: int, arms: Sequence[ArmView]
    ) -> int:
        """Pick the index of the arm that takes the exchange for
        drive bay ``drive``."""
        ...


class LeastBusyArms:
    """Hand the exchange to the arm with the shortest backlog.

    Work-conserving: an idle arm always beats a busy one, so no
    exchange waits while another arm sits idle.  Ties (equal backlog)
    fall back to accumulated busy time, then the arm index, so a fresh
    pool fills from arm 0 upward.
    """

    name = "least-busy"

    def choose(self, drive: int, arms: Sequence[ArmView]) -> int:
        best = min(
            arms,
            key=lambda view: (
                view.backlog,
                view.busy_seconds,
                view.index,
            ),
        )
        return best.index


class RoundRobinArms:
    """Deal exchanges out cyclically, one arm after another.

    Oblivious to queue state: spreads *submissions* evenly even when
    job durations are skewed, which makes it a useful fairness
    baseline against :class:`LeastBusyArms` in the benchmarks.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, drive: int, arms: Sequence[ArmView]) -> int:
        index = self._next % len(arms)
        self._next += 1
        return arms[index].index


class DedicatedBayArms:
    """Statically partition drive bays over arms (``drive % arms``).

    Models a library whose bays are physically reachable by only one
    arm each: no cross-arm interference, but an arm idles while its
    bays have no exchanges even if the other partition is saturated.
    """

    name = "dedicated"

    def choose(self, drive: int, arms: Sequence[ArmView]) -> int:
        return arms[drive % len(arms)].index


_ASSIGNMENT_POLICIES = {
    "affinity": TapeAffinityAssignment,
    "least-loaded": LeastLoadedAssignment,
}

_EXCHANGE_POLICIES = {
    "drain": DrainBatchExchange,
    "preempt": PreemptOnDeadlineExchange,
}

_ARM_POLICIES = {
    "least-busy": LeastBusyArms,
    "round-robin": RoundRobinArms,
    "dedicated": DedicatedBayArms,
}


def assignment_policy_names() -> list[str]:
    """Registered drive-assignment policy names, sorted."""
    return sorted(_ASSIGNMENT_POLICIES)


def get_assignment_policy(name: str) -> AssignmentPolicy:
    """Instantiate a drive-assignment policy by name."""
    try:
        return _ASSIGNMENT_POLICIES[name]()
    except KeyError:
        known = ", ".join(assignment_policy_names())
        raise ValueError(
            f"unknown assignment policy {name!r}; known: {known}"
        ) from None


def exchange_policy_names() -> list[str]:
    """Registered exchange policy names, sorted."""
    return sorted(_EXCHANGE_POLICIES)


def get_exchange_policy(name: str) -> ExchangePolicy:
    """Instantiate an exchange policy by name."""
    try:
        return _EXCHANGE_POLICIES[name]()
    except KeyError:
        known = ", ".join(exchange_policy_names())
        raise ValueError(
            f"unknown exchange policy {name!r}; known: {known}"
        ) from None


def arm_policy_names() -> list[str]:
    """Registered arm-assignment policy names, sorted."""
    return sorted(_ARM_POLICIES)


def get_arm_policy(name: str) -> ArmAssignmentPolicy:
    """Instantiate an arm-assignment policy by name."""
    try:
        return _ARM_POLICIES[name]()
    except KeyError:
        known = ", ".join(arm_policy_names())
        raise ValueError(
            f"unknown arm policy {name!r}; known: {known}"
        ) from None
