"""The discrete-event simulation core of the multi-drive library.

The single-drive :class:`~repro.online.system.TertiaryStorageSystem`
advances time with an explicit "next interesting instant" computation —
fine for one drive, impossible for N drives, one robot arm, and M
cartridge queues all progressing concurrently.  :class:`EventKernel`
replaces that loop with the classic DES core: a monotonic simulated
clock and a heap of timed, typed events.  Components schedule future
events; the kernel pops them in ``(seconds, priority, insertion)``
order and dispatches to registered handlers, so causality at equal
timestamps is deterministic and explicit (see
:mod:`repro.library.events` for the priority ranking).

The kernel knows nothing about tapes: it is a generic scheduler for
:class:`~repro.library.events.SimEvent` objects, kept separate so the
system layer above stays testable against hand-built event sequences.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

from repro.exceptions import LibraryError
from repro.library.events import SimEvent

#: A kernel handler: called with the popped event at its firing time.
SimHandler = Callable[[SimEvent], None]


class EventKernel:
    """Monotonic simulated clock plus an ordered event heap.

    Events scheduled at the same instant fire in ``priority`` order
    (see :mod:`repro.library.events`), and at equal priority in
    scheduling order — a total, deterministic order, so a run replays
    bit-identically.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, SimEvent]] = []
        self._sequence = itertools.count()
        self._handlers: dict[type[SimEvent], list[SimHandler]] = {}
        self.now_seconds = 0.0
        #: Events dispatched so far (scheduling an event does not
        #: count; popping it does).
        self.events_dispatched = 0

    def on(self, event_type: type[SimEvent], handler: SimHandler) -> None:
        """Register a handler for one event type (append order kept)."""
        self._handlers.setdefault(event_type, []).append(handler)

    def schedule(self, seconds: float, event: SimEvent) -> None:
        """Enqueue an event at absolute simulated time ``seconds``.

        The clock is monotonic: scheduling into the past is a
        programming error, not a silent reordering.
        """
        if seconds < self.now_seconds:
            raise LibraryError(
                f"cannot schedule {type(event).__name__} at "
                f"{seconds:.6f}s; the clock is already at "
                f"{self.now_seconds:.6f}s"
            )
        heapq.heappush(
            self._heap,
            (seconds, type(event).priority, next(self._sequence), event),
        )

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def idle(self) -> bool:
        """Is the event heap empty?"""
        return not self._heap

    def peek_seconds(self) -> float | None:
        """Firing time of the next event, if any."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> SimEvent | None:
        """Pop and dispatch one event; returns it (None when idle)."""
        if not self._heap:
            return None
        seconds, _, _, event = heapq.heappop(self._heap)
        self.now_seconds = seconds
        self.events_dispatched += 1
        for handler in self._handlers.get(type(event), ()):
            handler(event)
        return event

    def run(self, until_seconds: float | None = None) -> int:
        """Dispatch events until the heap drains (or the horizon).

        Returns the number of events dispatched by this call.  With
        ``until_seconds``, events at or before the horizon fire and the
        rest stay queued (the clock does not jump past them).
        """
        dispatched = 0
        while self._heap:
            if (
                until_seconds is not None
                and self._heap[0][0] > until_seconds
            ):
                break
            self.step()
            dispatched += 1
        return dispatched
