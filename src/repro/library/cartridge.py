"""Cartridges and the single-drive robotic library.

The paper's second experiment scenario "applies to a robotic tape
changer that has just loaded a new tape, so the tape head is at the
beginning of the tape", and footnote 5 notes that single-reel cartridge
technologies (DLT, IBM 3590) must rewind before ejecting.  The library
model captures exactly those mechanics: a mount costs an exchange time,
an unmount costs rewind-to-BOT plus the exchange, and a freshly mounted
cartridge always starts at segment 0.

:class:`TapeLibrary` is the original single-drive library (one robot,
one drive, mounts serviced synchronously on the caller's clock); the
event-driven multi-drive generalization lives in
:class:`~repro.library.system.MultiDriveSystem`, which charges the same
per-exchange costs through a shared robot arm in simulated time.

(These classes moved here from ``repro.online.library``; the old import
path keeps working through a deprecation shim.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.drive.simulated import SimulatedDrive
from repro.exceptions import LibraryError, UnknownTape
from repro.geometry.tape import TapeGeometry
from repro.model.locate import LocateTimeModel
from repro.obs.bus import EventBus
from repro.obs.events import TapeMounted, TapeUnmounted

#: Typical robotic cartridge-exchange time (pick, move, load), seconds.
DEFAULT_EXCHANGE_SECONDS = 30.0


@dataclass
class Cartridge:
    """One shelved cartridge: geometry plus its calibrated model.

    ``model`` may be omitted; :meth:`__post_init__` then calibrates a
    :class:`~repro.model.locate.LocateTimeModel` from the geometry, so
    after construction it is never ``None``.
    """

    label: str
    geometry: TapeGeometry
    model: LocateTimeModel | None = None

    def __post_init__(self) -> None:
        if self.model is None:
            self.model = LocateTimeModel(self.geometry)


class TapeLibrary:
    """A single-drive robotic library.

    Tracks which cartridge is mounted, the drive simulator for it, and
    the accumulated robot/drive time.  (The paper studies a single
    drive; the multi-drive generalization is
    :class:`~repro.library.system.MultiDriveSystem`.)
    """

    def __init__(
        self,
        cartridges: list[Cartridge],
        exchange_seconds: float = DEFAULT_EXCHANGE_SECONDS,
        bus: EventBus | None = None,
    ) -> None:
        labels = [c.label for c in cartridges]
        if len(set(labels)) != len(labels):
            raise LibraryError("cartridge labels must be unique")
        self._shelf = {c.label: c for c in cartridges}
        self.exchange_seconds = float(exchange_seconds)
        #: Optional :class:`~repro.obs.bus.EventBus`; mounts/unmounts
        #: publish ``library.mount`` / ``library.unmount`` events, and
        #: the drive of the mounted cartridge joins the same stream.
        self.bus = bus
        self._mounted: str | None = None
        self._drive: SimulatedDrive | None = None
        self._clock = 0.0

    # -- state ------------------------------------------------------------

    @property
    def clock_seconds(self) -> float:
        """Total robot + drive time accumulated by this library."""
        drive_time = (
            self._drive.clock_seconds if self._drive is not None else 0.0
        )
        return self._clock + drive_time

    @property
    def mounted_label(self) -> str | None:
        """Label of the mounted cartridge, if any."""
        return self._mounted

    @property
    def drive(self) -> SimulatedDrive:
        """The drive holding the mounted cartridge."""
        if self._drive is None:
            raise LibraryError("no cartridge mounted")
        return self._drive

    def cartridge(self, label: str) -> Cartridge:
        """Look up a shelved cartridge."""
        try:
            return self._shelf[label]
        except KeyError:
            raise UnknownTape(f"no cartridge labelled {label!r}") from None

    def labels(self) -> list[str]:
        """All cartridge labels, sorted."""
        return sorted(self._shelf)

    # -- robotics -----------------------------------------------------------

    def mount(self, label: str) -> float:
        """Mount a cartridge (unmounting the current one first).

        Returns the robot + rewind seconds spent.  Mounting the already
        mounted cartridge is free.
        """
        if self._mounted == label:
            return 0.0
        spent = 0.0
        if self._mounted is not None:
            spent += self.unmount()
        cartridge = self.cartridge(label)
        self._clock += self.exchange_seconds
        spent += self.exchange_seconds
        self._drive = SimulatedDrive(
            cartridge.model, initial_position=0, bus=self.bus
        )
        self._mounted = label
        if self.bus is not None:
            self.bus.publish(
                TapeMounted(
                    seconds=self.clock_seconds,
                    label=label,
                    exchange_seconds=self.exchange_seconds,
                )
            )
        return spent

    def unmount(self) -> float:
        """Rewind (DLT must rewind to eject) and shelve the cartridge."""
        if self._mounted is None or self._drive is None:
            raise LibraryError("no cartridge mounted")
        label = self._mounted
        rewind_spent = self._drive.rewind()
        self._clock += self._drive.clock_seconds + self.exchange_seconds
        self._drive = None
        self._mounted = None
        if self.bus is not None:
            self.bus.publish(
                TapeUnmounted(
                    seconds=self.clock_seconds,
                    label=label,
                    rewind_seconds=rewind_spent,
                )
            )
        return rewind_spent + self.exchange_seconds
