"""Counters, gauges, histograms, and their registry.

A minimal, dependency-free metrics layer.  Instruments live in a
:class:`MetricsRegistry` keyed by dotted names; the registry snapshots
to a flat dict for export.  :func:`bind_standard_metrics` wires a
registry to an :class:`~repro.obs.bus.EventBus` so the standard event
taxonomy populates it without any publisher knowing metrics exist.

The histogram keeps raw samples (simulation scale makes that cheap) and
computes percentiles with the same linear-interpolation rule as
``numpy.percentile``'s default, so results are directly comparable with
the numpy-based analysis modules — without importing numpy here.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.exceptions import MetricsError, NoSamplesError
from repro.obs.bus import EventBus


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add to the count (must not decrease it)."""
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A value that goes up and down (e.g. queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the current value downward."""
        self.value -= amount


class Histogram:
    """Sample distribution with exact percentiles.

    Keeps every observation; aggregates raise
    :class:`~repro.exceptions.NoSamplesError` when empty (matching the
    convention of :class:`~repro.online.metrics.ResponseStats`).
    """

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        """Record one sample."""
        if not math.isfinite(value):
            raise MetricsError(
                f"histogram {self.name!r} got non-finite sample {value}"
            )
        self._samples.append(float(value))
        self._sorted = False

    def _require(self) -> list[float]:
        if not self._samples:
            raise NoSamplesError(
                f"histogram {self.name!r} has no samples"
            )
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    @property
    def count(self) -> int:
        """Samples recorded."""
        return len(self._samples)

    @property
    def sum(self) -> float:
        """Sum of all samples."""
        return math.fsum(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean."""
        self._require()
        return self.sum / len(self._samples)

    @property
    def min(self) -> float:
        """Smallest sample."""
        return self._require()[0]

    @property
    def max(self) -> float:
        """Largest sample."""
        return self._require()[-1]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile, ``q`` in [0, 100].

        Linear interpolation between closest ranks — the same rule as
        ``numpy.percentile(..., method="linear")``, numpy's default.
        """
        if not 0.0 <= q <= 100.0:
            raise MetricsError(f"percentile q must be in [0, 100], got {q}")
        samples = self._require()
        rank = (q / 100.0) * (len(samples) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return samples[low]
        fraction = rank - low
        return samples[low] + fraction * (samples[high] - samples[low])


class MetricsRegistry:
    """Get-or-create store of named instruments.

    A name is bound to one instrument type for the registry's lifetime;
    asking for the same name as a different type raises
    :class:`~repro.exceptions.MetricsError`.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif type(instrument) is not cls:
            raise MetricsError(
                f"{name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterable[str]:
        return iter(sorted(self._instruments))

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> dict[str, float | dict]:
        """Flat snapshot: counters/gauges to their value, histograms to
        ``{count, mean, p50, p99, max}`` (empty histograms to
        ``{count: 0}``)."""
        snapshot: dict[str, float | dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                if instrument.count == 0:
                    snapshot[name] = {"count": 0}
                else:
                    snapshot[name] = {
                        "count": instrument.count,
                        "mean": instrument.mean,
                        "p50": instrument.percentile(50),
                        "p99": instrument.percentile(99),
                        "max": instrument.max,
                    }
            else:
                snapshot[name] = instrument.value
        return snapshot


def bind_standard_metrics(
    bus: EventBus, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Populate a registry from the standard event taxonomy.

    Subscribes one handler that maintains:

    * ``events.<name>`` counters for every event kind seen;
    * ``queue.depth`` gauge (from admit/dispatch events);
    * ``request.response_seconds`` histogram (request completions);
    * ``request.locate_seconds`` and ``request.locate_error_seconds``
      histograms (actual locates, and estimated-minus-actual where an
      estimate was attached);
    * ``batch.execution_seconds`` and ``batch.size`` histograms;
    * ``drive.<n>.busy_seconds`` counters (per-drive busy time, from
      batch completions — utilization once divided by the horizon);
    * ``library.mount_wait_seconds`` histogram and
      ``robot.busy_seconds`` counter (multi-drive library exchanges);
    * ``arm.<n>.busy_seconds`` / ``arm.<n>.exchanges`` counters
      (per-arm occupancy of the arm pool, from
      ``library.arm.exchange`` events) and the ``repair.wait_seconds``
      histogram (reduced-redundancy window of background repairs);
    * per-tenant serving metrics from the gateway events:
      ``serve.tenant.<t>.response_seconds`` histograms (p999 SLOs),
      ``serve.tenant.<t>.queue_depth`` gauges,
      ``serve.tenant.<t>.shed`` counters, plus the gateway-wide
      ``serve.held_seconds`` histogram and ``serve.backend_depth``
      gauge.

    Returns the registry (a fresh one if none was given).
    """
    registry = registry if registry is not None else MetricsRegistry()

    def observe(event) -> None:
        registry.counter(f"events.{event.name}").inc()
        name = event.name
        if name == "queue.admit":
            registry.gauge("queue.depth").set(event.queue_depth)
        elif name == "queue.dispatch":
            registry.gauge("queue.depth").dec(event.batch_size)
        elif name == "request.complete":
            registry.histogram("request.response_seconds").observe(
                event.response_seconds
            )
        elif name == "request.locate":
            registry.histogram("request.locate_seconds").observe(
                event.actual_seconds
            )
            if event.estimated_seconds is not None:
                registry.histogram(
                    "request.locate_error_seconds"
                ).observe(event.estimated_seconds - event.actual_seconds)
        elif name == "batch.complete":
            registry.histogram("batch.execution_seconds").observe(
                event.total_seconds
            )
            registry.histogram("batch.size").observe(event.batch_size)
            registry.counter(
                f"drive.{event.drive}.busy_seconds"
            ).inc(event.total_seconds)
        elif name == "library.mount_wait":
            registry.histogram("library.mount_wait_seconds").observe(
                event.wait_seconds
            )
            registry.counter("robot.busy_seconds").inc(
                event.robot_seconds
            )
        elif name == "library.arm.exchange":
            registry.counter(
                f"arm.{event.arm}.busy_seconds"
            ).inc(event.busy_seconds)
            registry.counter(f"arm.{event.arm}.exchanges").inc()
        elif name == "repair.complete":
            registry.histogram("repair.wait_seconds").observe(
                event.wait_seconds
            )
        elif name == "serve.admit":
            registry.gauge(
                f"serve.tenant.{event.tenant}.queue_depth"
            ).set(event.queue_depth)
        elif name == "serve.release":
            registry.histogram("serve.held_seconds").observe(
                event.held_seconds
            )
            registry.gauge("serve.backend_depth").set(
                event.backend_depth
            )
        elif name == "serve.shed":
            registry.counter(
                f"serve.tenant.{event.tenant}.shed"
            ).inc()
        elif name == "serve.complete":
            registry.histogram(
                f"serve.tenant.{event.tenant}.response_seconds"
            ).observe(event.response_seconds)

    bus.subscribe(observe)
    return registry
