"""repro.obs — the observability layer.

A zero-dependency event/metrics/trace subsystem: every layer of the
storage system publishes typed events onto an :class:`EventBus`
(``bus=`` hook on the instrumented constructors), and everything else —
response statistics, cache accounting, metrics registries, span-style
batch traces, JSONL export — is a consumer of that one stream.  See
``docs/OBSERVABILITY.md`` for the taxonomy and the hook API.
"""

from repro.obs.bus import EventBus, Subscription
from repro.obs.events import (
    EVENT_TYPES,
    BatchCompleted,
    BatchStarted,
    CacheAdmitted,
    CacheEvicted,
    CacheHit,
    CacheMiss,
    CacheRejected,
    DriveEvent,
    DriveOperation,
    Event,
    EventKind,
    QueueAdmitted,
    QueueDispatched,
    RequestCompleted,
    RequestLocated,
    RequestRead,
    ScheduleComputed,
    SweepChunkCompleted,
    SweepCompleted,
    SweepStarted,
    TapeMounted,
    TapeUnmounted,
    event_from_record,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_standard_metrics,
)
from repro.obs.trace import (
    BatchSpan,
    RequestSpan,
    TraceRecorder,
    TraceSummary,
    batch_spans,
    cache_stats_from_events,
    read_events_jsonl,
    request_spans,
    response_stats_from_events,
    summarize_events,
    write_events_csv,
    write_events_jsonl,
)

__all__ = [
    "EVENT_TYPES",
    "BatchCompleted",
    "BatchSpan",
    "BatchStarted",
    "CacheAdmitted",
    "CacheEvicted",
    "CacheHit",
    "CacheMiss",
    "CacheRejected",
    "Counter",
    "DriveEvent",
    "DriveOperation",
    "Event",
    "EventBus",
    "EventKind",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueueAdmitted",
    "QueueDispatched",
    "RequestCompleted",
    "RequestLocated",
    "RequestRead",
    "RequestSpan",
    "ScheduleComputed",
    "Subscription",
    "SweepChunkCompleted",
    "SweepCompleted",
    "SweepStarted",
    "TapeMounted",
    "TapeUnmounted",
    "TraceRecorder",
    "TraceSummary",
    "batch_spans",
    "bind_standard_metrics",
    "cache_stats_from_events",
    "event_from_record",
    "read_events_jsonl",
    "request_spans",
    "response_stats_from_events",
    "summarize_events",
    "write_events_csv",
    "write_events_jsonl",
]
