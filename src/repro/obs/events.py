"""The event taxonomy of the observability layer.

Every layer of the system publishes typed events onto an
:class:`~repro.obs.bus.EventBus`: the batch queue (admit/dispatch), the
scheduler (schedule computed, with its model estimate), the executor
(per-request locate/read with *estimated vs actual* locate seconds —
the model-error signal of Figures 9–10), the system (request and batch
completions with per-phase durations), the staging cache
(hit/miss/admit/reject/evict), the robotic library (mount/unmount), and
the simulated drive (raw mechanism operations).

Events are small frozen dataclasses.  Each carries ``seconds`` — the
publisher's clock when the event happened (simulation time for
queue/system/cache events, drive busy-time for raw drive operations) —
and flattens losslessly to a JSON-safe record via :meth:`Event.to_record`;
:func:`event_from_record` reverses the mapping exactly, so a JSONL trace
round-trips to identical event objects.

This module also hosts :class:`DriveEvent`/:class:`EventKind`, the
simulated drive's own operation log, which this taxonomy generalizes
(they moved here from ``repro.drive.events``; the old import path keeps
working through a deprecation shim).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import ClassVar


class EventKind(enum.Enum):
    """Categories of drive activity."""

    LOCATE = "locate"
    READ = "read"
    REWIND = "rewind"
    FULL_READ = "full_read"
    MOUNT = "mount"
    UNMOUNT = "unmount"


@dataclass(frozen=True, slots=True)
class DriveEvent:
    """One timed drive operation.

    Attributes
    ----------
    kind:
        What the drive did.
    start_seconds:
        Drive clock when the operation began.
    duration_seconds:
        How long it took.
    source, destination:
        Head position before and after the operation (absolute segment
        numbers; for reads the destination is the position just past the
        data read).
    """

    kind: EventKind
    start_seconds: float
    duration_seconds: float
    source: int
    destination: int

    @property
    def end_seconds(self) -> float:
        """Drive clock when the operation finished."""
        return self.start_seconds + self.duration_seconds


#: Registry of event types by name, for parsing traces.
EVENT_TYPES: dict[str, type[Event]] = {}


@dataclass(frozen=True, slots=True)
class Event:
    """Base class for bus events.

    Attributes
    ----------
    seconds:
        The publisher's clock when the event happened.  System, queue,
        and cache events are stamped in simulation time; raw
        :class:`DriveOperation` events in drive busy-time.
    """

    #: Dotted taxonomy name (``layer.action``); set per subclass.
    name: ClassVar[str] = "event"

    seconds: float

    def __init_subclass__(cls, **kwargs) -> None:
        # No super() call: ``@dataclass(slots=True)`` rebuilds each
        # subclass, which breaks zero-argument super in this hook.  The
        # rebuild also fires this hook a second time for the same
        # logical class, so "same module + qualname" replaces its own
        # registration rather than being a duplicate.
        existing = EVENT_TYPES.get(cls.name)
        if existing is not None and (
            existing.__module__ != cls.__module__
            or existing.__qualname__ != cls.__qualname__
        ):
            raise ValueError(f"duplicate event name {cls.name!r}")
        EVENT_TYPES[cls.name] = cls

    def to_record(self) -> dict:
        """Flatten to a JSON-safe record (``event`` key + fields)."""
        record: dict = {"event": self.name}
        for spec in fields(self):
            record[spec.name] = getattr(self, spec.name)
        return record


def event_from_record(record: dict) -> Event:
    """Rebuild an event from a :meth:`Event.to_record` record."""
    payload = dict(record)
    try:
        name = payload.pop("event")
    except KeyError:
        raise ValueError("record has no 'event' key") from None
    try:
        cls = EVENT_TYPES[name]
    except KeyError:
        known = ", ".join(sorted(EVENT_TYPES))
        raise ValueError(
            f"unknown event {name!r}; known: {known}"
        ) from None
    return cls(**payload)


# -- queue layer -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class QueueAdmitted(Event):
    """A request entered the batch accumulation queue."""

    name: ClassVar[str] = "queue.admit"

    segment: int
    length: int
    arrival_seconds: float
    queue_depth: int


@dataclass(frozen=True, slots=True)
class QueueDispatched(Event):
    """The queue released a batch to the scheduler."""

    name: ClassVar[str] = "queue.dispatch"

    batch_size: int
    oldest_arrival_seconds: float


# -- scheduling layer --------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ScheduleComputed(Event):
    """A scheduler ordered a batch (with its model estimate)."""

    name: ClassVar[str] = "schedule.computed"

    algorithm: str
    batch_size: int
    origin: int
    estimated_seconds: float | None


@dataclass(frozen=True, slots=True)
class RequestLocated(Event):
    """The drive positioned for one scheduled request.

    ``estimated_seconds`` is the model's prediction for this hop (from
    the scheduler's model), ``actual_seconds`` what the drive took —
    their gap is the per-hop model error the validation figures study.
    """

    name: ClassVar[str] = "request.locate"

    position: int
    source: int
    segment: int
    actual_seconds: float
    estimated_seconds: float | None


@dataclass(frozen=True, slots=True)
class RequestRead(Event):
    """The drive transferred one scheduled request's data."""

    name: ClassVar[str] = "request.read"

    position: int
    segment: int
    length: int
    actual_seconds: float


# -- system layer ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BatchStarted(Event):
    """A batch began executing on the drive."""

    name: ClassVar[str] = "batch.start"

    batch_index: int
    batch_size: int
    origin: int
    #: Drive bay executing the batch (0 in the single-drive system, so
    #: traces written before the multi-drive library still parse).
    drive: int = 0


@dataclass(frozen=True, slots=True)
class BatchCompleted(Event):
    """A batch finished; carries the per-phase time decomposition.

    The phases partition the execution exactly:
    ``locate_seconds + transfer_seconds + rewind_seconds +
    fault_seconds == total_seconds`` (to float round-off), and
    ``queue_wait_seconds`` is the summed time the batch's requests
    waited before execution began.  ``fault_seconds`` — fault penalties
    plus retry backoff — is zero on a fault-free run, so traces written
    before it existed still parse.
    """

    name: ClassVar[str] = "batch.complete"

    batch_index: int
    algorithm: str
    batch_size: int
    queue_wait_seconds: float
    locate_seconds: float
    transfer_seconds: float
    rewind_seconds: float
    total_seconds: float
    estimated_seconds: float | None
    fault_seconds: float = 0.0
    #: Drive bay that executed the batch (0 in the single-drive system).
    drive: int = 0


@dataclass(frozen=True, slots=True)
class RequestCompleted(Event):
    """One request's data was fully delivered.

    Published at the request's *read* event (or at arrival plus hit
    latency for a cache hit, with ``position = -1``), not at batch
    completion — so per-request response times are observable on the
    bus.
    """

    name: ClassVar[str] = "request.complete"

    position: int
    segment: int
    length: int
    arrival_seconds: float
    completion_seconds: float
    #: Drive bay that served the request (0 in the single-drive system).
    drive: int = 0

    @property
    def response_seconds(self) -> float:
        """Completion minus arrival."""
        return self.completion_seconds - self.arrival_seconds


# -- resilience layer --------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FaultInjected(Event):
    """The fault injector raised a drive fault.

    ``kind`` is the taxonomy tag of the raised
    :class:`~repro.exceptions.DriveFault` subclass (``locate`` /
    ``read`` / ``reset``); ``penalty_seconds`` the mechanism time the
    failed attempt consumed (already on the drive clock).
    """

    name: ClassVar[str] = "fault.injected"

    kind: str
    segment: int
    position: int
    penalty_seconds: float


@dataclass(frozen=True, slots=True)
class RequestRetried(Event):
    """The executor caught a fault and is retrying the request in place.

    ``attempt`` is the attempt that just failed (1-based);
    ``backoff_seconds`` the deterministic-jitter delay charged before
    the next attempt.
    """

    name: ClassVar[str] = "request.retry"

    position: int
    segment: int
    attempt: int
    backoff_seconds: float
    kind: str


@dataclass(frozen=True, slots=True)
class RequestFailed(Event):
    """A request exhausted its retry or requeue budget.

    Published by the executor when in-place retries run out
    (``reason`` names the exhausted budget) and by the online system
    when a request's bounded requeues are spent.  ``attempts`` counts
    in-place attempts for the former, requeue rounds for the latter.
    """

    name: ClassVar[str] = "request.failed"

    position: int
    segment: int
    attempts: int
    reason: str


@dataclass(frozen=True, slots=True)
class DegradedMode(Event):
    """The online system dropped to its fallback scheduler.

    Tripped when computing a schedule (wall clock) or executing a batch
    (simulated seconds) exceeded the configured budget; subsequent
    batches use ``to_algorithm`` (SORT by default) instead of
    ``from_algorithm``.
    """

    name: ClassVar[str] = "system.degraded"

    batch_index: int
    reason: str
    from_algorithm: str
    to_algorithm: str


# -- cache layer -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CacheHit(Event):
    """A request was fully served from the staging cache."""

    name: ClassVar[str] = "cache.hit"

    segment: int
    length: int


@dataclass(frozen=True, slots=True)
class CacheMiss(Event):
    """A request missed the staging cache and went to tape."""

    name: ClassVar[str] = "cache.miss"

    segment: int
    length: int


@dataclass(frozen=True, slots=True)
class CacheAdmitted(Event):
    """A fetched segment was staged (demand fill or prefetch)."""

    name: ClassVar[str] = "cache.admit"

    segment: int
    prefetch: bool


@dataclass(frozen=True, slots=True)
class CacheRejected(Event):
    """Admission control turned a demand fill away."""

    name: ClassVar[str] = "cache.reject"

    segment: int


@dataclass(frozen=True, slots=True)
class CacheEvicted(Event):
    """The eviction policy dropped a resident segment."""

    name: ClassVar[str] = "cache.evict"

    segment: int


# -- library layer -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TapeMounted(Event):
    """The robot loaded a cartridge into the drive."""

    name: ClassVar[str] = "library.mount"

    label: str
    exchange_seconds: float
    #: Drive bay the cartridge was loaded into (0 for the single-drive
    #: library, so traces written before it existed still parse).
    drive: int = 0


@dataclass(frozen=True, slots=True)
class TapeUnmounted(Event):
    """The robot rewound, ejected, and shelved a cartridge."""

    name: ClassVar[str] = "library.unmount"

    label: str
    rewind_seconds: float
    #: Drive bay the cartridge was removed from.
    drive: int = 0


@dataclass(frozen=True, slots=True)
class MountWaitRecorded(Event):
    """A cartridge exchange completed; how long did the bay wait?

    Published by the multi-drive library at each completed exchange.
    ``wait_seconds`` spans from the moment the system decided to mount
    the cartridge to the moment the drive could use it — robot queueing
    plus the exchange itself — and ``robot_seconds`` is the arm
    occupancy of this job alone, so ``wait_seconds - robot_seconds`` is
    pure contention for the shared arm.
    """

    name: ClassVar[str] = "library.mount_wait"

    drive: int
    label: str
    wait_seconds: float
    robot_seconds: float
    #: Arm that performed the exchange (0 in a single-arm library, so
    #: traces written before the arm pool existed still parse).
    arm: int = 0


@dataclass(frozen=True, slots=True)
class ArmExchangeRecorded(Event):
    """One robot arm finished a cartridge exchange.

    Published by the multi-arm library at each completed exchange, next
    to :class:`MountWaitRecorded`: where the mount-wait event measures
    what the *bay* experienced, this one attributes the work to the
    *arm* that did it.  ``busy_seconds`` is this job's arm occupancy
    and ``queued`` the jobs still waiting on this arm afterwards, so
    summing ``busy_seconds`` per ``arm`` over a run and dividing by the
    makespan gives per-arm occupancy (see
    :func:`~repro.obs.metrics.bind_standard_metrics`).
    """

    name: ClassVar[str] = "library.arm.exchange"

    arm: int
    drive: int
    label: str
    busy_seconds: float
    queued: int


# -- repair layer ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class DegradedRead(Event):
    """A striped read fell back to a surviving replica.

    Published by the striped-read coordinator when a sub-request
    exhausted the resilience layer's budgets on one cartridge and was
    re-issued against replica ``replica`` (the copy that actually
    served it).  A degraded read is a durability near-miss: the data
    survived, but only because redundancy was provisioned.
    """

    name: ClassVar[str] = "repair.degraded_read"

    label: str
    segment: int
    replica: int
    logical_segment: int


@dataclass(frozen=True, slots=True)
class RepairStarted(Event):
    """Background repair traffic was enqueued for a degraded unit.

    The coordinator re-reads the surviving copy of the whole stripe
    unit so the lost copy can be re-replicated; the read competes with
    user traffic for drives, arms, and cartridges — that contention is
    the cost the chaos sweep charts.
    """

    name: ClassVar[str] = "repair.start"

    label: str
    segment: int
    length: int
    replica: int


@dataclass(frozen=True, slots=True)
class RepairCompleted(Event):
    """A background repair read finished.

    ``wait_seconds`` spans from the moment the repair was enqueued to
    the completion of its re-read — the window during which the
    degraded unit had reduced redundancy.
    """

    name: ClassVar[str] = "repair.complete"

    label: str
    segment: int
    length: int
    replica: int
    wait_seconds: float


# -- serve layer -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ServeAdmitted(Event):
    """The gateway accepted a request into its tenant's fair queue."""

    name: ClassVar[str] = "serve.admit"

    tenant: str
    segment: int
    queue_depth: int


@dataclass(frozen=True, slots=True)
class ServeReleased(Event):
    """A queued request was released into the backend system.

    ``held_seconds`` is gateway dwell time — arrival to release — the
    latency the fairness layer itself added on top of the backend.
    """

    name: ClassVar[str] = "serve.release"

    tenant: str
    segment: int
    held_seconds: float
    backend_depth: int


@dataclass(frozen=True, slots=True)
class ServeShed(Event):
    """The gateway refused a request (typed, never silent).

    ``reason`` is the :class:`~repro.exceptions.AdmissionRejected`
    subclass tag: ``overload`` (admission-time cap) or ``deadline``
    (release-time expiry).
    """

    name: ClassVar[str] = "serve.shed"

    tenant: str
    reason: str
    segment: int
    arrival_seconds: float


@dataclass(frozen=True, slots=True)
class ServeCompleted(Event):
    """A gateway-admitted request finished in the backend.

    ``response_seconds`` counts from gateway arrival (queue dwell
    included), the number the per-tenant SLO is judged against.
    """

    name: ClassVar[str] = "serve.complete"

    tenant: str
    segment: int
    response_seconds: float


# -- experiment layer --------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SweepStarted(Event):
    """A figure sweep began (``seconds`` is wall-clock 0 for the run).

    ``total_tasks`` counts the work units the sweep will complete —
    for the parallel per-locate engine, one per trial chunk.
    """

    name: ClassVar[str] = "experiment.start"

    label: str
    workers: int
    total_tasks: int


@dataclass(frozen=True, slots=True)
class SweepChunkCompleted(Event):
    """One chunk of trials finished (``seconds`` = wall-clock elapsed).

    Published from the coordinating process as worker results arrive,
    so subscribers see live progress regardless of how many processes
    the sweep fans out to.
    """

    name: ClassVar[str] = "experiment.chunk"

    label: str
    length: int
    chunk_index: int
    chunk_trials: int
    done_tasks: int
    total_tasks: int


@dataclass(frozen=True, slots=True)
class SweepCompleted(Event):
    """A figure sweep finished (``seconds`` = wall-clock elapsed)."""

    name: ClassVar[str] = "experiment.complete"

    label: str
    workers: int
    total_tasks: int


# -- drive layer -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class DriveOperation(Event):
    """One raw drive mechanism operation (generalizes
    :class:`DriveEvent` onto the bus; ``seconds`` is the drive clock at
    the start of the operation and ``kind`` an :class:`EventKind`
    value)."""

    name: ClassVar[str] = "drive.op"

    kind: str
    duration_seconds: float
    source: int
    destination: int
