"""The process-wide event bus.

A deliberately small synchronous pub/sub hub: publishers call
:meth:`EventBus.publish`, subscribers receive events in publish order,
in subscription order, on the publisher's stack.  There are no threads,
no queues, and no dependencies — determinism is the point, since the
simulations this instruments are themselves deterministic.

Every instrumented constructor takes ``bus=None``; the ``None`` default
keeps the hot paths at a single ``is not None`` test, so an
uninstrumented run pays nothing.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.obs.events import Event

#: A subscriber: any callable taking the published event.
Handler = Callable[[Event], None]


def _kind_names(kinds) -> frozenset[str] | None:
    """Normalize a kind filter to a set of event names (None = all)."""
    if kinds is None:
        return None
    if isinstance(kinds, (str, type)):
        kinds = (kinds,)
    names = set()
    for kind in kinds:
        if isinstance(kind, str):
            names.add(kind)
        elif isinstance(kind, type) and issubclass(kind, Event):
            names.add(kind.name)
        else:
            raise TypeError(
                f"kind filter entries must be event names or Event "
                f"subclasses, got {kind!r}"
            )
    return frozenset(names)


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`.

    Detach with :meth:`close` (or :meth:`EventBus.unsubscribe`); usable
    as a context manager.
    """

    __slots__ = ("bus", "handler", "kinds", "active")

    def __init__(
        self,
        bus: EventBus,
        handler: Handler,
        kinds: frozenset[str] | None,
    ) -> None:
        self.bus = bus
        self.handler = handler
        self.kinds = kinds
        self.active = True

    def wants(self, event: Event) -> bool:
        """Does this subscription's filter accept the event?"""
        return self.kinds is None or event.name in self.kinds

    def close(self) -> None:
        """Stop receiving events."""
        self.bus.unsubscribe(self)

    def __enter__(self) -> Subscription:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class EventBus:
    """Synchronous, ordered pub/sub hub for :class:`Event` objects.

    Attributes
    ----------
    now:
        The simulation clock, advanced by whoever drives the simulation
        (e.g. :class:`~repro.online.system.TertiaryStorageSystem`).
        Publishers without their own clock — the staging cache — stamp
        events with it.
    events_published:
        Total events seen, delivered or not.
    """

    __slots__ = ("_subscriptions", "now", "events_published")

    def __init__(self) -> None:
        self._subscriptions: list[Subscription] = []
        self.now: float = 0.0
        self.events_published: int = 0

    # -- time -----------------------------------------------------------------

    def set_time(self, seconds: float) -> None:
        """Advance the bus clock (monotone; earlier stamps are kept)."""
        if seconds > self.now:
            self.now = seconds

    # -- subscription ---------------------------------------------------------

    def subscribe(
        self,
        handler: Handler,
        kinds: str | type[Event] | Iterable[str | type[Event]] | None = None,
    ) -> Subscription:
        """Register a handler; returns a detachable subscription.

        Parameters
        ----------
        handler:
            Called with each matching event, synchronously, in publish
            order.
        kinds:
            Restrict delivery to these event types (names like
            ``"cache.hit"`` or :class:`Event` subclasses).  ``None``
            delivers everything.
        """
        subscription = Subscription(self, handler, _kind_names(kinds))
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach a subscription (idempotent)."""
        if subscription.active:
            subscription.active = False
            try:
                self._subscriptions.remove(subscription)
            except ValueError:  # pragma: no cover - defensive
                pass

    def collect(
        self,
        kinds: str | type[Event] | Iterable[str | type[Event]] | None = None,
    ) -> list[Event]:
        """Subscribe a list that accumulates matching events.

        Convenience for tests and ad-hoc inspection::

            events = bus.collect("cache.hit")
            ... run ...
            assert len(events) == expected_hits
        """
        events: list[Event] = []
        self.subscribe(events.append, kinds)
        return events

    @property
    def subscriber_count(self) -> int:
        """Active subscriptions."""
        return len(self._subscriptions)

    # -- publication ----------------------------------------------------------

    def publish(self, event: Event) -> None:
        """Deliver one event to every matching subscriber, in order.

        Subscribers added or removed by a handler take effect from the
        *next* publish (delivery iterates a snapshot).
        """
        self.events_published += 1
        for subscription in tuple(self._subscriptions):
            if subscription.active and subscription.wants(event):
                subscription.handler(event)
