"""Span-style batch traces: record, export, parse, summarize.

A :class:`TraceRecorder` subscribes to an
:class:`~repro.obs.bus.EventBus` and keeps the ordered event stream.
From it, each batch's life cycle — arrival → batched → scheduled →
executed → completed — reconstructs as a :class:`BatchSpan` whose
per-phase durations (queue wait, locate, read, rewind) partition the
measured execution exactly, and each request's as a
:class:`RequestSpan`.

Traces export to JSONL (lossless: parsing a written trace yields
identical event objects) or CSV (flat, for spreadsheets), and
:func:`summarize_events` folds a stream into a :class:`TraceSummary`
that speaks the same ``headers()``/``to_dict()`` protocol as the
experiment results, so ``--out`` export works on it unchanged.

:func:`response_stats_from_events` and
:func:`cache_stats_from_events` rebuild the accounting objects the
system keeps (``ResponseStats``, ``CacheStats``) purely from the event
stream — the stream is the source of truth, the stats objects are one
consumer of it.
"""

from __future__ import annotations

import csv
import json
import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, fields
from pathlib import Path

from repro.exceptions import TraceError
from repro.obs.bus import EventBus
from repro.obs.events import Event, event_from_record


class TraceRecorder:
    """Accumulates the ordered event stream of a bus.

    Parameters
    ----------
    bus:
        Subscribe to this bus on construction (optional — a recorder
        can also be filled by replaying a parsed trace into
        :meth:`record`).
    kinds:
        Restrict recording to these event kinds (default: everything).
    """

    def __init__(self, bus: EventBus | None = None, kinds=None) -> None:
        self.events: list[Event] = []
        self.subscription = (
            bus.subscribe(self.record, kinds) if bus is not None else None
        )

    def record(self, event: Event) -> None:
        """Append one event (the subscribed handler)."""
        self.events.append(event)

    def close(self) -> None:
        """Detach from the bus (recording stops; events are kept)."""
        if self.subscription is not None:
            self.subscription.close()
            self.subscription = None

    def __len__(self) -> int:
        return len(self.events)

    def batch_spans(self) -> list[BatchSpan]:
        """The per-batch spans of the recorded stream."""
        return batch_spans(self.events)

    def request_spans(self) -> list[RequestSpan]:
        """The per-request spans of the recorded stream."""
        return request_spans(self.events)

    def summary(self) -> TraceSummary:
        """Fold the recorded stream into a summary."""
        return summarize_events(self.events)


# -- spans -------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BatchSpan:
    """One batch's reconstructed life cycle.

    ``locate_seconds + transfer_seconds + rewind_seconds +
    fault_seconds`` equals ``total_seconds`` up to float round-off —
    the per-phase accounting the paper's figures decompose response
    time with.  ``fault_seconds`` (fault penalties plus retry backoff)
    is zero on a fault-free run.
    """

    batch_index: int
    algorithm: str
    batch_size: int
    start_seconds: float
    queue_wait_seconds: float
    locate_seconds: float
    transfer_seconds: float
    rewind_seconds: float
    total_seconds: float
    estimated_seconds: float | None
    fault_seconds: float = 0.0

    @property
    def phase_seconds(self) -> float:
        """Sum of the execution phases (should equal ``total_seconds``)."""
        return (
            self.locate_seconds
            + self.transfer_seconds
            + self.rewind_seconds
            + self.fault_seconds
        )

    @property
    def end_seconds(self) -> float:
        """Simulation time when the batch finished."""
        return self.start_seconds + self.total_seconds


@dataclass(frozen=True, slots=True)
class RequestSpan:
    """One request's arrival-to-completion span."""

    segment: int
    length: int
    arrival_seconds: float
    completion_seconds: float
    position: int

    @property
    def response_seconds(self) -> float:
        """Completion minus arrival."""
        return self.completion_seconds - self.arrival_seconds

    @property
    def cache_hit(self) -> bool:
        """Was this request served by the staging tier?"""
        return self.position < 0


def batch_spans(events: Iterable[Event]) -> list[BatchSpan]:
    """Pair batch.start/batch.complete events into spans."""
    spans: list[BatchSpan] = []
    open_starts: dict[int, Event] = {}
    for event in events:
        if event.name == "batch.start":
            open_starts[event.batch_index] = event
        elif event.name == "batch.complete":
            start = open_starts.pop(event.batch_index, None)
            if start is None:
                raise TraceError(
                    f"batch.complete for batch {event.batch_index} "
                    "without a batch.start"
                )
            spans.append(
                BatchSpan(
                    batch_index=event.batch_index,
                    algorithm=event.algorithm,
                    batch_size=event.batch_size,
                    start_seconds=start.seconds,
                    queue_wait_seconds=event.queue_wait_seconds,
                    locate_seconds=event.locate_seconds,
                    transfer_seconds=event.transfer_seconds,
                    rewind_seconds=event.rewind_seconds,
                    total_seconds=event.total_seconds,
                    estimated_seconds=event.estimated_seconds,
                    fault_seconds=event.fault_seconds,
                )
            )
    return spans


def request_spans(events: Iterable[Event]) -> list[RequestSpan]:
    """The request.complete events of a stream, as spans."""
    return [
        RequestSpan(
            segment=event.segment,
            length=event.length,
            arrival_seconds=event.arrival_seconds,
            completion_seconds=event.completion_seconds,
            position=event.position,
        )
        for event in events
        if event.name == "request.complete"
    ]


# -- reconstruction ----------------------------------------------------------


def response_stats_from_events(events: Iterable[Event]):
    """Rebuild a :class:`~repro.online.metrics.ResponseStats` from the
    stream's request completions.

    On a run instrumented end to end this reproduces the system's own
    ``stats`` sample for sample (tested) — the stats object is just one
    consumer of the event stream.
    """
    from repro.online.metrics import ResponseStats

    stats = ResponseStats()
    for event in events:
        if event.name == "request.complete":
            stats.record(event.arrival_seconds, event.completion_seconds)
    return stats


def cache_stats_from_events(events: Iterable[Event]):
    """Rebuild a :class:`~repro.online.metrics.CacheStats` from the
    stream's cache events (eviction/insertion/rejection counters
    included)."""
    from repro.online.metrics import CacheStats

    stats = CacheStats()
    for event in events:
        name = event.name
        if name == "cache.hit":
            stats.record_hit(segments=event.length)
        elif name == "cache.miss":
            stats.record_miss(segments=event.length)
        elif name == "cache.admit":
            if event.prefetch:
                stats.prefetch_insertions += 1
            else:
                stats.insertions += 1
        elif name == "cache.reject":
            stats.rejections += 1
        elif name == "cache.evict":
            stats.evictions += 1
    return stats


# -- export ------------------------------------------------------------------


def write_events_jsonl(
    events: Iterable[Event], path: str | Path
) -> Path:
    """Write a stream as JSON Lines; returns the path written.

    The format is lossless: :func:`read_events_jsonl` yields events
    equal to the ones written.
    """
    path = Path(path)
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event.to_record()))
            handle.write("\n")
    return path


def read_events_jsonl(path: str | Path) -> list[Event]:
    """Parse a JSONL trace back into event objects."""
    path = Path(path)
    events: list[Event] = []
    with path.open() as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                events.append(event_from_record(record))
            except (ValueError, TypeError) as error:
                raise TraceError(f"{path}:{number}: {error}") from None
    return events


def write_events_csv(
    events: Sequence[Event], path: str | Path
) -> Path:
    """Write a stream as flat CSV (union of all event fields).

    Lossy relative to JSONL (everything stringifies); meant for
    spreadsheets, not round-trips.
    """
    path = Path(path)
    names: list[str] = ["event", "seconds"]
    for event in events:
        for spec in fields(event):
            if spec.name not in names:
                names.append(spec.name)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=names, restval="")
        writer.writeheader()
        for event in events:
            writer.writerow(event.to_record())
    return path


# -- summary -----------------------------------------------------------------


@dataclass(frozen=True)
class TraceSummary:
    """Aggregates of one trace, in the tabular-result protocol."""

    event_count: int
    batch_count: int
    request_count: int
    cache_hit_count: int
    mean_response_seconds: float | None
    max_response_seconds: float | None
    queue_wait_seconds: float
    locate_seconds: float
    transfer_seconds: float
    rewind_seconds: float
    execution_seconds: float
    estimated_execution_seconds: float | None
    mean_abs_locate_error_seconds: float | None

    def headers(self) -> list[str]:
        """Column names matching :meth:`rows`."""
        return ["metric", "value"]

    def rows(self) -> list[list]:
        """One row per aggregate."""
        return [
            ["events", self.event_count],
            ["batches", self.batch_count],
            ["requests completed", self.request_count],
            ["cache hits", self.cache_hit_count],
            ["mean response (s)", self.mean_response_seconds],
            ["max response (s)", self.max_response_seconds],
            ["queue wait (s)", self.queue_wait_seconds],
            ["locate (s)", self.locate_seconds],
            ["transfer (s)", self.transfer_seconds],
            ["rewind (s)", self.rewind_seconds],
            ["execution (s)", self.execution_seconds],
            ["estimated execution (s)", self.estimated_execution_seconds],
            ["mean |locate error| (s)", self.mean_abs_locate_error_seconds],
        ]

    def to_dict(self) -> list[dict]:
        """Records for export (one per :meth:`rows` row)."""
        return [dict(zip(self.headers(), row)) for row in self.rows()]


def summarize_events(events: Sequence[Event]) -> TraceSummary:
    """Fold an event stream into its :class:`TraceSummary`."""
    spans = batch_spans(events)
    responses = [
        event.response_seconds
        for event in events
        if event.name == "request.complete"
    ]
    locate_errors = [
        abs(event.estimated_seconds - event.actual_seconds)
        for event in events
        if event.name == "request.locate"
        and event.estimated_seconds is not None
    ]
    estimates = [
        span.estimated_seconds
        for span in spans
        if span.estimated_seconds is not None
    ]
    return TraceSummary(
        event_count=len(events),
        batch_count=len(spans),
        request_count=len(responses),
        cache_hit_count=sum(
            1 for event in events if event.name == "cache.hit"
        ),
        mean_response_seconds=(
            math.fsum(responses) / len(responses) if responses else None
        ),
        max_response_seconds=max(responses) if responses else None,
        queue_wait_seconds=math.fsum(
            span.queue_wait_seconds for span in spans
        ),
        locate_seconds=math.fsum(span.locate_seconds for span in spans),
        transfer_seconds=math.fsum(
            span.transfer_seconds for span in spans
        ),
        rewind_seconds=math.fsum(span.rewind_seconds for span in spans),
        execution_seconds=math.fsum(
            span.total_seconds for span in spans
        ),
        estimated_execution_seconds=(
            math.fsum(estimates) if estimates else None
        ),
        mean_abs_locate_error_seconds=(
            math.fsum(locate_errors) / len(locate_errors)
            if locate_errors else None
        ),
    )
