"""Admission control for the disk staging cache.

Tertiary-storage caches suffer badly from one-hit wonders: a random
read that is never repeated evicts something useful and contributes
nothing.  Admission control decides, on a miss that has just been
serviced from tape, whether the fetched segment deserves a cache slot
at all.  Because the medium's re-fetch cost is position-dependent
(~0–180 s per locate), cost is a first-class admission signal here,
exactly as it is for eviction in :mod:`repro.cache.policies`.
"""

from __future__ import annotations

import abc
from collections import OrderedDict


class AdmissionPolicy(abc.ABC):
    """Decides whether a fetched segment may enter the cache."""

    #: Registry name; subclasses set this.
    name: str = "abstract"

    @abc.abstractmethod
    def admit(self, key: int, cost: float) -> bool:
        """Should ``key`` (estimated re-fetch time ``cost``) be cached?"""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class AlwaysAdmit(AdmissionPolicy):
    """Admit every fetched segment (the classic cache behaviour)."""

    name = "always"

    def admit(self, key: int, cost: float) -> bool:
        return True


class FrequencyThresholdAdmission(AdmissionPolicy):
    """Admit a segment only on its ``min_accesses``-th fetch.

    Keeps a bounded LRU table of access counters (a cheap stand-in for
    a TinyLFU sketch): the first ``min_accesses - 1`` fetches of a
    segment are remembered but not cached, so one-hit wonders never
    displace resident data.
    """

    name = "frequency"

    def __init__(
        self, min_accesses: int = 2, max_tracked: int = 65_536
    ) -> None:
        if min_accesses < 1:
            raise ValueError("min_accesses must be >= 1")
        if max_tracked < 1:
            raise ValueError("max_tracked must be >= 1")
        self.min_accesses = min_accesses
        self.max_tracked = max_tracked
        self._counts: OrderedDict[int, int] = OrderedDict()

    def admit(self, key: int, cost: float) -> bool:
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        self._counts.move_to_end(key)
        while len(self._counts) > self.max_tracked:
            self._counts.popitem(last=False)
        return count >= self.min_accesses


class CostThresholdAdmission(AdmissionPolicy):
    """Admit only segments whose re-fetch locate time is expensive.

    Segments the head can re-reach cheaply (within the read-through
    window, or a short scan away) are not worth a slot; a segment at
    the far end of the tape costing ~3 minutes to re-locate is.  The
    default threshold is just above the reposition+reversal overhead,
    so anything needing an actual scan qualifies.
    """

    name = "cost"

    def __init__(self, min_cost_seconds: float = 5.0) -> None:
        if min_cost_seconds < 0:
            raise ValueError("min_cost_seconds must be >= 0")
        self.min_cost_seconds = float(min_cost_seconds)

    def admit(self, key: int, cost: float) -> bool:
        return cost >= self.min_cost_seconds


#: Admission-policy factories by name (CLI and experiment plumbing).
ADMISSIONS = {
    AlwaysAdmit.name: AlwaysAdmit,
    FrequencyThresholdAdmission.name: FrequencyThresholdAdmission,
    CostThresholdAdmission.name: CostThresholdAdmission,
}


def get_admission(name: str) -> AdmissionPolicy:
    """Instantiate an admission policy by registry name."""
    try:
        return ADMISSIONS[name]()
    except KeyError:
        known = ", ".join(sorted(ADMISSIONS))
        raise ValueError(
            f"unknown admission policy {name!r}; known: {known}"
        ) from None
