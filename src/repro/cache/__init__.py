"""Disk staging cache tier: the HSM front-end the paper's setting implies.

An online tertiary store serves random reads from a disk staging cache
and only goes to tape on a miss.  This package provides that tier:

* :mod:`repro.cache.store` — the bounded :class:`SegmentCache`;
* :mod:`repro.cache.policies` — FIFO, LRU, and a tape-cost-aware GDSF
  eviction policy;
* :mod:`repro.cache.admission` — always/frequency/cost admission
  control for demand fills;
* :mod:`repro.cache.prefetch` — opportunistic staging of the segments
  a batch's head passes over while reading through coalesced gaps;
* :mod:`repro.cache.system` — :class:`CachedTertiaryStorageSystem`,
  the cache composed with the online batching system;
* :mod:`repro.cache.library_tier` — :class:`CachedLibrarySystem`, the
  same tier injected in front of a multi-drive
  :class:`~repro.library.MultiDriveSystem`.
"""

from repro.cache.admission import (
    ADMISSIONS,
    AdmissionPolicy,
    AlwaysAdmit,
    CostThresholdAdmission,
    FrequencyThresholdAdmission,
    get_admission,
)
from repro.cache.policies import (
    POLICIES,
    EvictionPolicy,
    FIFOPolicy,
    GDSFPolicy,
    LRUPolicy,
    get_policy,
)
from repro.cache.prefetch import (
    DEFAULT_MAX_PREFETCH_PER_BATCH,
    opportunistic_prefetch,
    prefetch_candidates,
)
from repro.cache.library_tier import CachedLibrarySystem
from repro.cache.store import SegmentCache
from repro.cache.system import (
    DEFAULT_CACHE_CAPACITY_SEGMENTS,
    CachedTertiaryStorageSystem,
)
from repro.online.metrics import CacheStats

__all__ = [
    "ADMISSIONS",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "CacheStats",
    "CachedLibrarySystem",
    "CachedTertiaryStorageSystem",
    "CostThresholdAdmission",
    "DEFAULT_CACHE_CAPACITY_SEGMENTS",
    "DEFAULT_MAX_PREFETCH_PER_BATCH",
    "EvictionPolicy",
    "FIFOPolicy",
    "FrequencyThresholdAdmission",
    "GDSFPolicy",
    "LRUPolicy",
    "POLICIES",
    "SegmentCache",
    "get_admission",
    "get_policy",
    "opportunistic_prefetch",
    "prefetch_candidates",
]
