"""The fixed-capacity disk staging cache.

A :class:`SegmentCache` models the disk tier of a hierarchical storage
manager: a bounded pool of 32 KB tape segments staged on disk.  It is
deliberately a *simulation-grade* cache — membership, accounting, and
replacement metadata, not payload bytes — so a million-segment cache is
a set of ints, and experiments can sweep capacities cheaply.

Granularity is one segment.  A multi-segment request hits only when
every segment it covers is resident (a partial hit still pays the
locate, so it is accounted as a miss).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.cache.admission import AdmissionPolicy, AlwaysAdmit
from repro.cache.policies import EvictionPolicy, LRUPolicy
from repro.exceptions import CacheError
from repro.obs.bus import EventBus
from repro.obs.events import (
    CacheAdmitted,
    CacheEvicted,
    CacheHit,
    CacheMiss,
    CacheRejected,
)
from repro.online.metrics import CacheStats


class SegmentCache:
    """Bounded segment cache with pluggable eviction and admission.

    Parameters
    ----------
    capacity_segments:
        Maximum resident segments (>= 1).  At the paper's 32 KB segment
        size a 1 GB staging disk holds 32,768 segments.
    policy:
        Eviction policy (default: :class:`~repro.cache.policies.LRUPolicy`).
    admission:
        Admission policy for demand fills (default: admit everything).
        Prefetch fills bypass admission — they are free — but never
        evict resident data (see :meth:`admit`).
    stats:
        Accounting sink; a fresh :class:`~repro.online.metrics.CacheStats`
        by default.
    bus:
        Optional :class:`~repro.obs.bus.EventBus`; publishes
        ``cache.hit`` / ``cache.miss`` / ``cache.admit`` /
        ``cache.reject`` / ``cache.evict`` events stamped with the bus
        clock.  A :class:`~repro.cache.system.CachedTertiaryStorageSystem`
        attaches its own bus automatically.
    """

    def __init__(
        self,
        capacity_segments: int,
        policy: EvictionPolicy | None = None,
        admission: AdmissionPolicy | None = None,
        stats: CacheStats | None = None,
        bus: EventBus | None = None,
    ) -> None:
        if capacity_segments < 1:
            raise CacheError(
                f"capacity must be >= 1 segment, got {capacity_segments}"
            )
        self.capacity_segments = int(capacity_segments)
        self.policy = policy if policy is not None else LRUPolicy()
        self.admission = (
            admission if admission is not None else AlwaysAdmit()
        )
        self.stats = stats if stats is not None else CacheStats()
        self.bus = bus
        self._resident: set[int] = set()

    # -- state ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, segment: int) -> bool:
        return segment in self._resident

    def __iter__(self) -> Iterator[int]:
        return iter(self._resident)

    @property
    def free_segments(self) -> int:
        """Unused capacity, in segments."""
        return self.capacity_segments - len(self._resident)

    def contains_run(self, segment: int, length: int = 1) -> bool:
        """Is the whole run ``[segment, segment + length)`` resident?

        Pure membership — no statistics are recorded and no policy
        metadata is touched (use :meth:`lookup` on the request path).
        """
        return all(
            segment + offset in self._resident for offset in range(length)
        )

    # -- request path --------------------------------------------------------

    def lookup(self, segment: int, length: int = 1) -> bool:
        """Service a request against the cache, recording hit or miss.

        A hit touches every covered segment (promoting it per the
        eviction policy).  A partial residency is a miss: the drive
        must locate anyway, so nothing is promoted and the request is
        accounted entirely to tape.
        """
        if length < 1:
            raise CacheError(f"length must be >= 1, got {length}")
        if self.contains_run(segment, length):
            for offset in range(length):
                self.policy.on_hit(segment + offset)
            self.stats.record_hit(segments=length)
            if self.bus is not None:
                self.bus.publish(
                    CacheHit(
                        seconds=self.bus.now,
                        segment=segment,
                        length=length,
                    )
                )
            return True
        self.stats.record_miss(segments=length)
        if self.bus is not None:
            self.bus.publish(
                CacheMiss(
                    seconds=self.bus.now, segment=segment, length=length
                )
            )
        return False

    # -- fill path -----------------------------------------------------------

    def admit(
        self, segment: int, cost: float = 0.0, prefetch: bool = False
    ) -> bool:
        """Offer one fetched segment to the cache.

        Demand fills (``prefetch=False``) consult the admission policy
        and may evict.  Prefetch fills are opportunistic: the head
        passed over the segment anyway, so they bypass admission, but
        they only occupy *free* capacity — a prefetched segment never
        displaces resident data (cache-pollution guard).

        Returns True when the segment is resident afterwards.
        """
        if segment in self._resident:
            # Already staged: a re-fetch offer is a touch, not a fill.
            self.policy.on_hit(segment)
            return True
        if prefetch:
            if self.free_segments < 1:
                return False
        elif not self.admission.admit(segment, cost):
            self.stats.rejections += 1
            if self.bus is not None:
                self.bus.publish(
                    CacheRejected(seconds=self.bus.now, segment=segment)
                )
            return False
        while len(self._resident) >= self.capacity_segments:
            self._evict_one()
        self._resident.add(segment)
        self.policy.on_insert(segment, cost)
        if prefetch:
            self.stats.prefetch_insertions += 1
        else:
            self.stats.insertions += 1
        if self.bus is not None:
            self.bus.publish(
                CacheAdmitted(
                    seconds=self.bus.now,
                    segment=segment,
                    prefetch=prefetch,
                )
            )
        return True

    def admit_run(
        self,
        segments: Iterable[int],
        costs: Iterable[float],
        prefetch: bool = False,
    ) -> int:
        """Offer several segments; returns how many were admitted."""
        admitted = 0
        for segment, cost in zip(segments, costs):
            if self.admit(int(segment), float(cost), prefetch=prefetch):
                admitted += 1
        return admitted

    def invalidate(self, segment: int) -> bool:
        """Drop one segment (e.g. its object was rewritten on tape)."""
        if segment not in self._resident:
            return False
        self._resident.remove(segment)
        self.policy.discard(segment)
        return True

    def _evict_one(self) -> None:
        victim = self.policy.pop_victim()
        if victim not in self._resident:  # pragma: no cover - invariant
            raise CacheError(
                f"policy evicted non-resident segment {victim}"
            )
        self._resident.remove(victim)
        self.stats.evictions += 1
        if self.bus is not None:
            self.bus.publish(
                CacheEvicted(seconds=self.bus.now, segment=victim)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentCache({len(self._resident)}/{self.capacity_segments} "
            f"segments, policy={self.policy.name}, "
            f"admission={self.admission.name})"
        )
