"""Eviction policies for the disk staging cache.

The cache tier sits in front of a medium whose re-fetch cost is wildly
position-dependent: a locate back to an evicted segment costs anywhere
from ~0 s (read-through window) to ~180 s (far end of the tape).  The
classic recency/frequency policies ignore that asymmetry, so alongside
FIFO and LRU this module provides a GDSF (Greedy-Dual-Size-Frequency)
variant whose weight is the *model-estimated locate time* back to the
segment — the same position-dependent cost structure the linear-tape
scheduling literature (Cardonha & Villa Real; Honoré et al.) exploits.

A policy only maintains *ordering metadata*; the
:class:`~repro.cache.store.SegmentCache` owns the resident set and
calls back into the policy on insert/hit/eviction.
"""

from __future__ import annotations

import abc
import heapq
from collections import OrderedDict


class EvictionPolicy(abc.ABC):
    """Victim-selection strategy for a :class:`SegmentCache`.

    The store guarantees the call pattern: ``on_insert`` once per
    resident key, ``on_hit`` only for resident keys, and ``pop_victim``
    only while at least one key is resident.
    """

    #: Registry name; subclasses set this.
    name: str = "abstract"

    @abc.abstractmethod
    def on_insert(self, key: int, cost: float) -> None:
        """A key became resident; ``cost`` is its estimated re-fetch time."""

    @abc.abstractmethod
    def on_hit(self, key: int) -> None:
        """A resident key was accessed."""

    @abc.abstractmethod
    def pop_victim(self) -> int:
        """Choose, remove from the metadata, and return the eviction victim."""

    @abc.abstractmethod
    def discard(self, key: int) -> None:
        """Forget a key (explicit invalidation), if tracked."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class FIFOPolicy(EvictionPolicy):
    """Evict in insertion order; hits do not promote."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_insert(self, key: int, cost: float) -> None:
        self._order[key] = None

    def on_hit(self, key: int) -> None:
        pass

    def pop_victim(self) -> int:
        key, _ = self._order.popitem(last=False)
        return key

    def discard(self, key: int) -> None:
        self._order.pop(key, None)


class LRUPolicy(EvictionPolicy):
    """Evict the least-recently-used key; hits promote to most recent."""

    name = "lru"

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_insert(self, key: int, cost: float) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_hit(self, key: int) -> None:
        self._order.move_to_end(key)

    def pop_victim(self) -> int:
        key, _ = self._order.popitem(last=False)
        return key

    def discard(self, key: int) -> None:
        self._order.pop(key, None)


class GDSFPolicy(EvictionPolicy):
    """Greedy-Dual-Size-Frequency with tape-locate cost as the weight.

    Each resident key carries a priority ``L + frequency * cost`` where
    ``cost`` is the estimated locate time back to the segment (all
    segments are the same size, so the classic size divisor is a
    constant and drops out).  Eviction removes the minimum-priority key
    and advances the inflation clock ``L`` to that priority, which ages
    out once-hot entries without explicit decay.  Cheap-to-refetch
    segments (near the head's usual territory) are sacrificed before
    expensive far-end segments of equal popularity.
    """

    name = "gdsf"

    def __init__(self) -> None:
        self._clock = 0.0
        #: key -> (priority, frequency, cost)
        self._entries: dict[int, tuple[float, int, float]] = {}
        #: lazy min-heap of (priority, key); stale entries are skipped.
        self._heap: list[tuple[float, int]] = []

    def _push(self, key: int, frequency: int, cost: float) -> None:
        priority = self._clock + frequency * cost
        self._entries[key] = (priority, frequency, cost)
        heapq.heappush(self._heap, (priority, key))

    def on_insert(self, key: int, cost: float) -> None:
        self._push(key, 1, float(cost))

    def on_hit(self, key: int) -> None:
        _, frequency, cost = self._entries[key]
        self._push(key, frequency + 1, cost)

    def pop_victim(self) -> int:
        while self._heap:
            priority, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is None or entry[0] != priority:
                continue  # stale heap entry
            del self._entries[key]
            self._clock = priority
            return key
        raise LookupError("pop_victim on empty policy")

    def discard(self, key: int) -> None:
        self._entries.pop(key, None)


#: Eviction-policy factories by name (CLI and experiment plumbing).
POLICIES = {
    FIFOPolicy.name: FIFOPolicy,
    LRUPolicy.name: LRUPolicy,
    GDSFPolicy.name: GDSFPolicy,
}


def get_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(
            f"unknown eviction policy {name!r}; known: {known}"
        ) from None
