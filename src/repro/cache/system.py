"""The cached online tertiary storage system (HSM front-end).

The paper's setting is an *online* store: random reads hit tape only
after missing a disk staging tier.  This module adds that tier in
front of :class:`~repro.online.system.TertiaryStorageSystem`: arrivals
are looked up in a :class:`~repro.cache.store.SegmentCache` first —
hits complete immediately (disk latency is negligible against 10–100 s
locates), misses flow into the existing batch queue and scheduler
unchanged.  After each executed batch the fetched segments are staged
(subject to admission control) and the segments the head passed over
while reading through coalesced gaps are prefetched for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.prefetch import (
    DEFAULT_MAX_PREFETCH_PER_BATCH,
    opportunistic_prefetch,
)
from repro.cache.store import SegmentCache
from repro.constants import DEFAULT_COALESCE_THRESHOLD
from repro.online.metrics import CacheStats
from repro.online.system import TertiaryStorageSystem
from repro.workload.arrivals import TimedRequest

#: Default staging capacity: a 1 GB disk of the paper's 32 KB segments.
DEFAULT_CACHE_CAPACITY_SEGMENTS = 32_768


@dataclass
class CachedTertiaryStorageSystem(TertiaryStorageSystem):
    """Single-cartridge online service with a disk staging cache.

    Parameters (beyond :class:`TertiaryStorageSystem`)
    ----------
    cache:
        The staging tier; defaults to an LRU/always-admit cache of
        :data:`DEFAULT_CACHE_CAPACITY_SEGMENTS` segments.
    hit_latency_seconds:
        Response time charged to a cache hit (0 = hits complete at
        arrival, the locate-dominated regime of the paper).
    prefetch:
        Stage the segments each batch's head passes over (see
        :mod:`repro.cache.prefetch`).
    prefetch_threshold, max_prefetch_per_batch:
        Coalescing distance and per-batch cap for prefetch.
    """

    cache: SegmentCache = field(
        kw_only=True,
        default_factory=lambda: SegmentCache(
            DEFAULT_CACHE_CAPACITY_SEGMENTS
        ),
    )
    hit_latency_seconds: float = field(kw_only=True, default=0.0)
    prefetch: bool = field(kw_only=True, default=True)
    prefetch_threshold: int = field(
        kw_only=True, default=DEFAULT_COALESCE_THRESHOLD
    )
    max_prefetch_per_batch: int = field(
        kw_only=True, default=DEFAULT_MAX_PREFETCH_PER_BATCH
    )

    def __post_init__(self) -> None:
        if self.hit_latency_seconds < 0:
            raise ValueError("hit_latency_seconds must be >= 0")
        super().__post_init__()
        # The staging tier joins the system's event stream (unless the
        # caller wired the cache to a bus of its own already).
        if self.bus is not None and self.cache.bus is None:
            self.cache.bus = self.bus

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/byte accounting of the staging tier."""
        return self.cache.stats

    def _admit(self, item: TimedRequest, now: float) -> None:
        """Check the cache; hits complete at once, misses queue for tape."""
        if self.cache.lookup(item.segment, item.length):
            # position -1 marks a cache hit in the event stream.
            self._complete(
                item,
                item.arrival_seconds + self.hit_latency_seconds,
                position=-1,
            )
            return
        super()._admit(item, now)

    def _run_batch(self, now: float):
        batch, schedule, result = super()._run_batch(now)
        head = self.drive.position
        # Stage what was fetched (demand fill, admission-controlled).
        # A failed request delivered no data — staging it would serve
        # future hits from segments that were never read.
        ok = result.success
        seen: set[int] = set()
        fetched: list[int] = []
        for position, request in enumerate(schedule):
            if ok is not None and not ok[position]:
                continue
            for segment in range(request.segment, request.end_segment):
                if segment not in seen:
                    seen.add(segment)
                    fetched.append(segment)
        if fetched:
            costs = self.model.locate_times(head, fetched)
            self.cache.admit_run(fetched, costs)
        # Stage what the head passed over anyway (free prefetch) — but
        # only when the batch executed cleanly: after faults the head's
        # actual path no longer matches the schedule's coalesced gaps.
        if self.prefetch and (ok is None or result.all_succeeded):
            opportunistic_prefetch(
                self.cache,
                self.model,
                head,
                schedule.requests,
                threshold=self.prefetch_threshold,
                limit=self.max_prefetch_per_batch,
            )
        return batch, schedule, result
