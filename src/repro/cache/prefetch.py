"""Opportunistic prefetch: stage what the head passes over anyway.

When a scheduled batch executes, the coalescing structure of the
schedule (Section 4 of the paper, :mod:`repro.scheduling.coalesce`)
means the head frequently *reads through* short gaps between grouped
requests rather than repositioning: every segment inside a coalesced
group's span streams past the head at read speed.  A staging tier that
buffers the pass-through gets those segments for free — no extra
mechanism time, no extra tape wear — which is the cheapest possible
prefetch a tertiary store can do.

This module computes the passed-over segments of a batch (reusing the
paper's distance-threshold coalescing rule) so the cached system can
offer them to the cache after each batch.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.constants import DEFAULT_COALESCE_THRESHOLD
from repro.scheduling.coalesce import coalesce_by_threshold
from repro.scheduling.request import Request

#: Default cap on segments prefetched per executed batch.  A coalesced
#: group may span up to the coalescing threshold (~1410 segments) per
#: gap; the cap keeps one pathological batch from churning the cache.
DEFAULT_MAX_PREFETCH_PER_BATCH = 512


def prefetch_candidates(
    requests: Sequence[Request],
    threshold: int = DEFAULT_COALESCE_THRESHOLD,
    limit: int | None = DEFAULT_MAX_PREFETCH_PER_BATCH,
) -> list[int]:
    """Segments a batch's execution passes over without requesting.

    Coalesces the batch with the paper's distance-threshold rule and
    returns, per group, the segments inside the group's span that no
    request covers — exactly the data that streams past the head while
    it reads through the gaps.  Groups with no interior gap contribute
    nothing.  ``limit`` caps the result (``None`` = unlimited); gaps
    are emitted in tape order, narrowest-gap groups first, because a
    narrow gap is the strongest read-through signal.
    """
    if not requests:
        return []
    groups = coalesce_by_threshold(requests, threshold)
    gapped: list[tuple[int, list[int]]] = []
    for group in groups:
        if len(group) < 2:
            continue
        covered: set[int] = set()
        for request in group.requests:
            covered.update(range(request.segment, request.end_segment))
        gap = [
            segment
            for segment in range(group.first_segment, group.out_segment)
            if segment not in covered
        ]
        if gap:
            gapped.append((len(gap), gap))
    gapped.sort(key=lambda item: item[0])
    out: list[int] = []
    for _, gap in gapped:
        out.extend(gap)
        if limit is not None and len(out) >= limit:
            return out[:limit]
    return out


def opportunistic_prefetch(
    cache,
    model,
    head_position: int,
    requests: Sequence[Request],
    threshold: int = DEFAULT_COALESCE_THRESHOLD,
    limit: int | None = DEFAULT_MAX_PREFETCH_PER_BATCH,
) -> int:
    """Offer a batch's passed-over segments to ``cache``.

    Each candidate is costed with the model-estimated locate time from
    ``head_position`` back to it (the GDSF weight and the admission
    cost signal).  Returns the number of segments actually staged;
    prefetch fills never evict resident data (see
    :meth:`repro.cache.store.SegmentCache.admit`).
    """
    candidates = prefetch_candidates(requests, threshold, limit)
    if not candidates:
        return 0
    costs = model.locate_times(head_position, candidates)
    return cache.admit_run(candidates, costs, prefetch=True)
