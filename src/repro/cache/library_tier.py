"""The disk staging cache in front of the multi-drive library.

:class:`CachedTertiaryStorageSystem` composes the cache with one drive
by subclassing; this module composes it with any backend by
*injection*: ``CachedLibrarySystem(system=MultiDriveSystem(...))``
wraps a fresh multi-drive system and serves lookups from a shared
:class:`~repro.cache.store.SegmentCache` first.  Hits complete at
(simulated) arrival time plus the configured disk latency; misses flow
into the backend unchanged.  After every backend batch the fetched
segments are staged (admission-controlled, failure-filtered) and the
segments the head passed over are prefetched for free — the same
policy as the single-drive tier, per drive bay.

The cache is shared across cartridges, so resident segments are keyed
in a *global* address space: each cartridge (sorted by label) owns a
contiguous block of keys offset by the total segments of the
cartridges before it.  Tape-local coordinates never leak into the
cache and cross-tape collisions cannot happen.

The tier exposes the same opened serving surface as the backend
(``begin`` / ``submit`` / ``finish``, ``completion_listeners`` /
``failure_listeners``), so a :class:`~repro.serve.Gateway` can stack
on top of the cache exactly as it stacks on the bare library.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import ClassVar

from repro.cache.prefetch import (
    DEFAULT_MAX_PREFETCH_PER_BATCH,
    opportunistic_prefetch,
)
from repro.cache.store import SegmentCache
from repro.cache.system import DEFAULT_CACHE_CAPACITY_SEGMENTS
from repro.constants import DEFAULT_COALESCE_THRESHOLD
from repro.exceptions import CacheError, LibraryError, UnknownTape
from repro.library.events import SimEvent
from repro.library.requests import LibraryRequest
from repro.library.system import MultiDriveSystem
from repro.obs.events import RequestCompleted
from repro.online.metrics import CacheStats, ResponseStats


@dataclass(frozen=True, slots=True)
class CacheLookup(SimEvent):
    """A tier request reached the cache at its arrival instant.

    Ranks after gateway admissions (−10) and before backend arrivals
    (0) at the same instant, so the lookup sees the cache exactly as
    the request's arrival time left it and a miss enters the backend
    queue in arrival order.
    """

    priority: ClassVar[int] = -5

    request_index: int


class _ShiftedCache:
    """Admission adapter translating one tape's segments to global keys."""

    def __init__(self, cache: SegmentCache, offset: int) -> None:
        self._cache = cache
        self._offset = offset

    def admit(
        self, segment: int, cost: float = 0.0, prefetch: bool = False
    ) -> bool:
        return self._cache.admit(
            segment + self._offset, cost, prefetch=prefetch
        )

    def admit_run(
        self,
        segments: Iterable[int],
        costs: Iterable[float],
        prefetch: bool = False,
    ) -> int:
        return self._cache.admit_run(
            [segment + self._offset for segment in segments],
            costs,
            prefetch=prefetch,
        )


class CachedLibrarySystem:
    """A shared disk staging tier over an injected multi-drive backend.

    Parameters
    ----------
    system:
        A fresh (un-run) :class:`~repro.library.MultiDriveSystem`.
        The tier drives it through its opened serving surface; build
        it with ``bus=`` to put cache and library events on one
        stream.
    cache:
        The staging tier; defaults to an LRU/always-admit cache of
        :data:`~repro.cache.system.DEFAULT_CACHE_CAPACITY_SEGMENTS`
        segments.  Keys are global (see module docstring) — do not
        share one cache between tiers with different shelves.
    hit_latency_seconds:
        Response time charged to a cache hit.
    prefetch, prefetch_threshold, max_prefetch_per_batch:
        Passed-over-segment prefetch, as in the single-drive tier.
    """

    def __init__(
        self,
        *,
        system: MultiDriveSystem,
        cache: SegmentCache | None = None,
        hit_latency_seconds: float = 0.0,
        prefetch: bool = True,
        prefetch_threshold: int = DEFAULT_COALESCE_THRESHOLD,
        max_prefetch_per_batch: int = DEFAULT_MAX_PREFETCH_PER_BATCH,
    ) -> None:
        if hit_latency_seconds < 0:
            raise CacheError("hit_latency_seconds must be >= 0")
        self.system = system
        self.cache = (
            cache
            if cache is not None
            else SegmentCache(DEFAULT_CACHE_CAPACITY_SEGMENTS)
        )
        self.hit_latency_seconds = float(hit_latency_seconds)
        self.prefetch = prefetch
        self.prefetch_threshold = prefetch_threshold
        self.max_prefetch_per_batch = max_prefetch_per_batch
        self.kernel = system.kernel
        self.bus = system.bus
        if self.bus is not None and self.cache.bus is None:
            self.cache.bus = self.bus
        #: Response statistics over *all* tier requests — cache hits
        #: at disk latency plus backend completions at tape latency.
        self.stats = ResponseStats()
        self.submitted = 0
        #: Cache hits served without touching the backend.
        self.hits = 0
        #: Outcome hooks, same contract as the backend's (hits report
        #: ``drive_index`` −1).
        self.completion_listeners = []
        self.failure_listeners = []
        self._requests: list[LibraryRequest] = []
        # Global key space: each label's block starts where the
        # previous (sorted) label's ends.
        self._offsets: dict[str, int] = {}
        offset = 0
        for label in system.labels():
            self._offsets[label] = offset
            offset += system.cartridge(label).geometry.total_segments

        self.kernel.on(CacheLookup, self._on_lookup)
        system.completion_listeners.append(self._forward_completion)
        system.failure_listeners.append(self._forward_failure)
        system.batch_listeners.append(self._on_backend_batch)

    # -- tier state --------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/byte accounting of the staging tier."""
        return self.cache.stats

    @property
    def failed(self) -> list[LibraryRequest]:
        """Requests the backend surfaced as failed."""
        return self.system.failed

    @property
    def lost(self) -> int:
        """Requests with no recorded outcome (zero after a run)."""
        return self.submitted - self.stats.count - len(self.failed)

    @property
    def degraded(self) -> bool:
        """Has the backend dropped to its fallback scheduler?"""
        return self.system.degraded

    def labels(self) -> list[str]:
        """All cartridge labels, sorted."""
        return self.system.labels()

    # -- the run -----------------------------------------------------------

    def run(self, requests: Iterable[LibraryRequest]) -> ResponseStats:
        """Serve a timed request stream to completion."""
        self.begin()
        items = sorted(requests, key=lambda r: r.arrival_seconds)
        for request in items:
            if request.label not in self._offsets:
                raise UnknownTape(
                    f"no cartridge labelled {request.label!r}"
                )
        for request in items:
            self.submit(request)
        return self.finish()

    def begin(self) -> None:
        """Open the tier for :meth:`submit` (one-shot)."""
        self.system.begin()

    def submit(self, request: LibraryRequest) -> int:
        """Inject one request; the cache answers at its arrival time."""
        if request.label not in self._offsets:
            raise UnknownTape(
                f"no cartridge labelled {request.label!r}"
            )
        index = len(self._requests)
        self._requests.append(request)
        self.submitted += 1
        self.kernel.schedule(
            max(self.kernel.now_seconds, request.arrival_seconds),
            CacheLookup(request_index=index),
        )
        return index

    def finish(self) -> ResponseStats:
        """Drain the backend to quiescence; returns the tier stats."""
        self.system.finish()
        return self.stats

    # -- serving path ------------------------------------------------------

    def _on_lookup(self, event: CacheLookup) -> None:
        if self.bus is not None:
            self.bus.set_time(self.kernel.now_seconds)
        request = self._requests[event.request_index]
        key = self._offsets[request.label] + request.segment
        if self.cache.lookup(key, request.length):
            self.hits += 1
            completion = (
                self.kernel.now_seconds + self.hit_latency_seconds
            )
            self.stats.record(request.arrival_seconds, completion)
            for listener in self.completion_listeners:
                listener(request, completion, -1)
            if self.bus is not None:
                # position/drive −1 mark a cache hit in the stream.
                self.bus.publish(
                    RequestCompleted(
                        seconds=completion,
                        position=-1,
                        segment=request.segment,
                        length=request.length,
                        arrival_seconds=request.arrival_seconds,
                        completion_seconds=completion,
                        drive=-1,
                    )
                )
            return
        self.system.submit(request)

    def _forward_completion(
        self, item: LibraryRequest, completion_seconds: float, drive: int
    ) -> None:
        self.stats.record(item.arrival_seconds, completion_seconds)
        for listener in self.completion_listeners:
            listener(item, completion_seconds, drive)

    def _forward_failure(self, item: LibraryRequest) -> None:
        for listener in self.failure_listeners:
            listener(item)

    # -- staging -----------------------------------------------------------

    def _on_backend_batch(
        self, label: str, drive: int, batch, schedule, result
    ) -> None:
        bay = self.system.bays[drive]
        if bay.drive is None:  # pragma: no cover - bay mounted mid-batch
            raise LibraryError(
                "batch completed on a bay with no mounted drive"
            )
        head = bay.drive.position
        offset = self._offsets[label]
        model = self.system.cartridge(label).model
        ok = result.success
        seen: set[int] = set()
        fetched: list[int] = []
        for position, request in enumerate(schedule):
            if ok is not None and not ok[position]:
                continue
            for segment in range(request.segment, request.end_segment):
                if segment not in seen:
                    seen.add(segment)
                    fetched.append(segment)
        if fetched:
            costs = model.locate_times(head, fetched)
            self.cache.admit_run(
                [segment + offset for segment in fetched], costs
            )
        if self.prefetch and (ok is None or result.all_succeeded):
            opportunistic_prefetch(
                _ShiftedCache(self.cache, offset),
                model,
                head,
                schedule.requests,
                threshold=self.prefetch_threshold,
                limit=self.max_prefetch_per_batch,
            )
