"""RPR010 — phase partition: ``*_seconds`` accounting stays closed.

The paper's figures decompose response time into phases, and every
layer of the repo re-states the same identity: on
``ExecutionResult`` the executor measures it, on ``BatchCompleted``
the bus carries it, and on ``BatchSpan`` the trace reconstructs it —
``locate + transfer + rewind + fault == total`` to 1e-6.  The runtime
cross-checks (``repro trace --smoke``) verify the *values*; this rule
verifies the *shape*: adding a phase to one class and forgetting the
others silently un-balances the partition on a path no smoke test
exercises until a chart is already wrong.

Cross-module checks (via the project symbol table):

* every phase field of ``BatchCompleted`` must exist on
  ``BatchSpan`` (a phase the event carries but the span drops cannot
  reconcile);
* ``BatchSpan.phase_seconds`` must sum *exactly* the phase fields —
  an omitted term under-counts, a non-phase term double-counts;
* every phase field of ``ExecutionResult`` must exist on
  ``BatchCompleted`` (a measured phase that never reaches the bus is
  invisible to the golden traces).

Per-module check:

* no ``+``/``-`` arithmetic mixing a ``*_seconds`` name with a name
  in another time unit (``*_hours``, ``*_minutes``, ``*_ms``,
  ``*_per_hour``) — conversion is multiplication at the boundary,
  never addition.

Phase fields are the ``*_seconds`` dataclass fields minus the
structural ones (``total``/``queue_wait``/``estimated``/
``completion``/``start``/``end``/``arrival``), so a brand-new phase
is recognized without registration.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    terminal_name,
)
from repro.lint.flow.graph import ClassInfo, project_graph
from repro.lint.rules.base import Rule, register

#: ``*_seconds`` fields that are structure, not partition members.
_NON_PHASE = {
    "total_seconds",
    "queue_wait_seconds",
    "estimated_seconds",
    "completion_seconds",
    "start_seconds",
    "end_seconds",
    "arrival_seconds",
    "response_seconds",
    "phase_seconds",
}

#: The three layers whose phase sets must agree.
_EVENT_CLASS = "BatchCompleted"
_SPAN_CLASS = "BatchSpan"
_RESULT_CLASS = "ExecutionResult"

#: Name suffixes in non-second time units (and hour-scale rates).
_OTHER_UNIT_SUFFIXES = (
    "_hours",
    "_minutes",
    "_mins",
    "_ms",
    "_msec",
    "_msecs",
    "_millis",
    "_milliseconds",
    "_per_hour",
)


def _phase_fields(info: ClassInfo) -> set[str]:
    """The partition-member fields of one class."""
    return {
        name
        for name in info.fields
        if name.endswith("_seconds") and name not in _NON_PHASE
    }


def _phase_sum_terms(info: ClassInfo) -> set[str] | None:
    """``self.X`` names summed by a ``phase_seconds`` property.

    Returns None when the class defines no ``phase_seconds`` —
    nothing to audit then.
    """
    for statement in info.node.body:
        if (
            isinstance(statement, ast.FunctionDef)
            and statement.name == "phase_seconds"
        ):
            terms: set[str] = set()
            for node in ast.walk(statement):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    terms.add(node.attr)
            return terms
    return None


@register
class PhasePartitionRule(Rule):
    """Keep the execution-phase partition closed across layers."""

    code = "RPR010"
    name = "phase-partition"
    rationale = (
        "Response-time charts decompose into phases that must "
        "partition execution exactly; a phase added to one layer but "
        "not the others un-balances the 1e-6 identity on a path no "
        "smoke test sees."
    )

    def check_module(
        self, module: ModuleContext
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left = terminal_name(node.left)
            right = terminal_name(node.right)
            if left is None or right is None:
                continue
            for seconds, other in ((left, right), (right, left)):
                if not seconds.endswith("_seconds"):
                    continue
                if other.endswith(_OTHER_UNIT_SUFFIXES):
                    yield module.finding(
                        node,
                        self.code,
                        f"adds/subtracts {seconds!r} and {other!r} "
                        "without unit conversion; convert to "
                        "seconds (multiply at the boundary) before "
                        "accumulating",
                    )
                    break

    def finish(self, project: ProjectContext) -> Iterable[Finding]:
        graph = project_graph(project)
        by_path = project.by_rel_path()
        events = graph.classes_named(_EVENT_CLASS)
        spans = graph.classes_named(_SPAN_CLASS)
        results = graph.classes_named(_RESULT_CLASS)
        for span in spans:
            module = by_path[span.rel_path]
            span_fields = set(span.fields)
            span_phases = _phase_fields(span)
            for event in events:
                for phase in sorted(
                    _phase_fields(event) - span_fields
                ):
                    yield by_path[event.rel_path].finding(
                        event.node,
                        self.code,
                        f"phase {phase!r} on {_EVENT_CLASS} has no "
                        f"matching {_SPAN_CLASS} field — the trace "
                        "cannot reconcile the partition",
                    )
            terms = _phase_sum_terms(span)
            if terms is None:
                continue
            for phase in sorted(span_phases - terms):
                yield module.finding(
                    span.node,
                    self.code,
                    f"{_SPAN_CLASS}.phase_seconds omits phase "
                    f"{phase!r}; the phase sum no longer equals "
                    "total_seconds",
                )
            for extra in sorted(terms - span_phases):
                yield module.finding(
                    span.node,
                    self.code,
                    f"{_SPAN_CLASS}.phase_seconds sums non-phase "
                    f"field {extra!r}; the partition double-counts",
                )
        if events:
            event_phases: set[str] = set()
            for event in events:
                event_phases |= _phase_fields(event)
            for result in results:
                for phase in sorted(
                    _phase_fields(result) - event_phases
                ):
                    yield by_path[result.rel_path].finding(
                        result.node,
                        self.code,
                        f"phase {phase!r} measured on "
                        f"{_RESULT_CLASS} never reaches "
                        f"{_EVENT_CLASS} — it is invisible to "
                        "traces and golden regressions",
                    )
