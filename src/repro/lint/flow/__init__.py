"""``repro.lint.flow`` — cross-module simulation-safety analyses.

The per-module rules (RPR001-RPR006) catch *syntactic* hazards; this
package catches *flow* bugs — the ones that corrupt a frontier chart
without failing a test.  It builds a project-wide symbol table and
call/import graph (:mod:`repro.lint.flow.graph`) and runs three
dataflow analyses on top, shipped as four rules:

* RPR007 ``rng-lineage`` — every RNG descends from a threaded or
  seed-stream-derived seed, proven across call chains;
* RPR008 ``rng-sharing`` — no RNG object crosses a process-pool or
  kernel-actor boundary as a shared object;
* RPR009 ``nondeterminism-taint`` — unordered-iteration results
  (sets, ``os.listdir``, ``glob``) never flow into the event heap,
  scheduling surfaces, or exported output;
* RPR010 ``phase-partition`` — the ``*_seconds`` phase fields of
  ``ExecutionResult``/``BatchCompleted``/``BatchSpan`` stay in sync,
  so the 1e-6 partition identity cannot silently open.

Importing this package registers the rules; ``repro lint --flow``
runs only them, and ``--graph-dump FILE`` serializes the graph.
"""

from __future__ import annotations

from repro.lint.flow import (  # noqa: F401  (import-for-registration)
    phases,
    rng,
    taint,
)
from repro.lint.flow.graph import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
    build_graph,
    module_graph_name,
    project_graph,
)
from repro.lint.rules.base import REGISTRY, Rule

#: The rule codes this package contributes.
FLOW_CODES = ("RPR007", "RPR008", "RPR009", "RPR010")


def flow_rules() -> list[Rule]:
    """One fresh instance of every flow rule, in code order."""
    return [REGISTRY[code]() for code in FLOW_CODES]


__all__ = [
    "CallSite",
    "ClassInfo",
    "FLOW_CODES",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "build_graph",
    "flow_rules",
    "module_graph_name",
    "project_graph",
]
