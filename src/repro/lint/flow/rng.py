"""RPR007/RPR008 — RNG lineage and RNG sharing across boundaries.

The parallel engine's bit-identity guarantee (serial == N workers,
any N) holds because every random stream in the system descends from
:mod:`repro.workload.seed_stream`: a ``(workload_seed, length,
trial)`` triple hashes to its own 48-bit state, so any trial can run
anywhere and still draw exactly its bytes.  Two flow bugs break that
silently:

* **RPR007 (rng-lineage)** — an RNG constructed from a *hardcoded*
  seed.  Two components that both bake in ``seed=42`` share a stream
  and correlate; a magic number deep in library code also cannot be
  swept.  Seeds must arrive as parameters, attributes of a config
  object, or calls into the seed-stream derivation; the only literal
  form allowed is a module-level ``UPPER_CASE`` constant — the
  documented way an *entry point* (example, benchmark) declares its
  seed.  The check is cross-module: a literal passed at a call site
  into a parameter that (transitively, through the call graph) feeds
  an RNG constructor is the same bug one hop removed, and is flagged
  at the call site.
* **RPR008 (rng-sharing)** — an RNG object crossing a process-pool
  or kernel-actor boundary.  A generator pickled to a worker forks
  its state: both sides draw the same bytes, and merge order decides
  the statistics.  Only *derived seeds* may cross; the worker
  constructs its own generator.

Both rules resolve call targets through the project graph and stay
conservative: an expression whose lineage cannot be proven bad is
allowed (the runtime golden regressions are the backstop), so every
finding is actionable.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    resolve_origin,
    terminal_name,
)
from repro.lint.flow.graph import (
    CallSite,
    FunctionInfo,
    ProjectGraph,
    project_graph,
)
from repro.lint.rules.base import Rule, register

#: Fully-resolved constructors that start a random stream.
_RNG_ORIGINS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
}

#: The repo's own generator, recognized by terminal name wherever it
#: was imported from (the class moved once already).
_RNG_TERMINALS = {"LRand48"}

#: Keyword names that carry the seed/state into a constructor.
_SEED_KEYWORDS = ("seed", "state", "raw_state")

#: Modules whose functions *are* the derivation layer: literal
#: arguments to them (trial indexes, namespace tags) are the intended
#: API, not a lineage violation.
_SEED_FACTORY_SUFFIXES = ("seed_stream",)

#: Pool-submission method names (concurrent.futures + multiprocessing).
_SUBMIT_ATTRS = {
    "submit",
    "map",
    "map_async",
    "apply",
    "apply_async",
    "starmap",
    "starmap_async",
    "imap",
    "imap_unordered",
}

#: Kernel-actor boundary: event/callback scheduling surfaces.
_ACTOR_ATTRS = {"schedule"}

#: Origin prefixes that construct a process pool.
_POOL_PREFIXES = ("concurrent.futures", "multiprocessing")


def _is_rng_constructor(
    node: ast.Call, module: ModuleContext
) -> bool:
    """Does this call construct a random generator?"""
    origin = resolve_origin(node.func, module.imports)
    if origin is not None and origin in _RNG_ORIGINS:
        return True
    tail = terminal_name(node.func)
    return tail in _RNG_TERMINALS


def _seed_expressions(node: ast.Call) -> list[ast.expr]:
    """The argument expressions that seed an RNG construction."""
    seeds = list(node.args[:1])
    seeds.extend(
        keyword.value
        for keyword in node.keywords
        if keyword.arg in _SEED_KEYWORDS
    )
    return seeds


def _module_constants(
    module: ModuleContext,
) -> tuple[set[str], set[str]]:
    """(UPPER_CASE constant names, lowercase literal-bound names)."""
    upper: set[str] = set()
    lower: set[str] = set()
    for statement in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
            value = statement.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id.isupper():
                upper.add(target.id)
            elif isinstance(value, ast.Constant):
                lower.add(target.id)
    return upper, lower


def _literal_seed(
    expr: ast.expr, upper: set[str], lower: set[str]
) -> bool:
    """Is this seed expression a hardcoded literal (and not a declared
    ``UPPER_CASE`` entry-point constant)?"""
    if isinstance(expr, ast.Constant):
        return isinstance(expr.value, (int, float))
    if isinstance(expr, ast.UnaryOp) and isinstance(
        expr.operand, ast.Constant
    ):
        return isinstance(expr.operand.value, (int, float))
    if isinstance(expr, ast.Name):
        if expr.id in upper:
            return False
        return expr.id in lower
    return False


def _is_seed_factory(qualified: str) -> bool:
    """Is this symbol part of the seed-derivation layer itself?"""
    module = qualified.rsplit(".", 2)[0] if "." in qualified else ""
    return qualified.rsplit(".", 1)[0].endswith(
        _SEED_FACTORY_SUFFIXES
    ) or module.endswith(_SEED_FACTORY_SUFFIXES)


def _map_arguments(
    site: CallSite, callee: FunctionInfo
) -> list[tuple[str, ast.expr]]:
    """Pair a call site's argument expressions with parameter names."""
    params = list(callee.params)
    if callee.is_method:
        params = params[1:]
    pairs: list[tuple[str, ast.expr]] = []
    for index, arg in enumerate(site.node.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            pairs.append((params[index], arg))
    for keyword in site.node.keywords:
        if keyword.arg is not None and keyword.arg in callee.params:
            pairs.append((keyword.arg, keyword.value))
    return pairs


@register
class RngLineageRule(Rule):
    """Prove every RNG descends from a threaded/derived seed."""

    code = "RPR007"
    name = "rng-lineage"
    rationale = (
        "Parallel runs are bit-identical only because every stream "
        "derives from seed_stream; a hardcoded seed — directly or "
        "through a call chain — correlates streams and cannot be "
        "swept."
    )

    def check_module(
        self, module: ModuleContext
    ) -> Iterable[Finding]:
        upper, lower = _module_constants(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_rng_constructor(node, module):
                continue
            for seed in _seed_expressions(node):
                if _literal_seed(seed, upper, lower):
                    yield module.finding(
                        seed,
                        self.code,
                        "RNG seeded from a hardcoded literal; derive "
                        "the state via repro.workload.seed_stream, "
                        "thread the seed in as a parameter, or "
                        "declare a module-level UPPER_CASE seed "
                        "constant at the entry point",
                    )

    def finish(self, project: ProjectContext) -> Iterable[Finding]:
        graph = project_graph(project)
        seed_params = self._seed_parameters(graph)
        if not seed_params:
            return
        by_path = project.by_rel_path()
        constants = {
            module.rel_path: _module_constants(module)
            for module in project.modules
        }
        for site in graph.calls:
            if not site.internal:
                continue
            callee = graph.functions.get(site.callee)
            if callee is None or _is_seed_factory(site.callee):
                continue
            upper, lower = constants[site.rel_path]
            for param, expr in _map_arguments(site, callee):
                if (site.callee, param) not in seed_params:
                    continue
                if _literal_seed(expr, upper, lower):
                    module = by_path[site.rel_path]
                    yield module.finding(
                        expr,
                        self.code,
                        f"literal seed passed to {param!r} of "
                        f"{site.callee}(), which feeds an RNG "
                        "constructor; derive it via "
                        "repro.workload.seed_stream or thread it "
                        "from the caller's seed",
                    )

    def _seed_parameters(
        self, graph: ProjectGraph
    ) -> set[tuple[str, str]]:
        """(function, param) pairs that flow into RNG seeds.

        Seeded directly (the param appears as a seed argument of an
        RNG constructor inside the function), then propagated to
        callers to a fixpoint: a caller param forwarded into a known
        seed param is itself a seed param.
        """
        seeds: set[tuple[str, str]] = set()
        for info in graph.functions.values():
            if _is_seed_factory(info.qualified):
                continue
            module = graph.modules[info.module].context
            params = set(info.params)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if not _is_rng_constructor(node, module):
                    continue
                for seed in _seed_expressions(node):
                    if (
                        isinstance(seed, ast.Name)
                        and seed.id in params
                    ):
                        seeds.add((info.qualified, seed.id))
        changed = True
        while changed:
            changed = False
            for site in graph.calls:
                if not site.internal or not site.caller:
                    continue
                callee = graph.functions.get(site.callee)
                caller = graph.functions.get(site.caller)
                if callee is None or caller is None:
                    continue
                if _is_seed_factory(site.callee):
                    continue
                caller_params = set(caller.params)
                for param, expr in _map_arguments(site, callee):
                    if (site.callee, param) not in seeds:
                        continue
                    if (
                        isinstance(expr, ast.Name)
                        and expr.id in caller_params
                    ):
                        entry = (site.caller, expr.id)
                        if entry not in seeds:
                            seeds.add(entry)
                            changed = True
        return seeds


@register
class RngSharingRule(Rule):
    """Ban RNG objects crossing pool or kernel-actor boundaries."""

    code = "RPR008"
    name = "rng-sharing"
    rationale = (
        "A generator pickled to a worker (or captured by a scheduled "
        "kernel action) forks its state: both sides draw the same "
        "bytes and merge order decides the statistics — only derived "
        "seeds may cross, with the generator built on the far side."
    )

    def check_module(
        self, module: ModuleContext
    ) -> Iterable[Finding]:
        for scope in _scopes(module.tree):
            yield from self._check_scope(module, scope)

    def _check_scope(
        self, module: ModuleContext, scope: list[ast.stmt]
    ) -> Iterable[Finding]:
        rng_names: set[str] = set()
        pool_names: set[str] = set()
        for statement in scope:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue  # analyzed as its own scope
            for node in _walk_scope(statement):
                self._track(node, module, rng_names, pool_names)
                if not isinstance(node, ast.Call):
                    continue
                attr = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                if attr is None:
                    continue
                receiver = node.func.value
                is_pool_submit = (
                    attr in _SUBMIT_ATTRS
                    and isinstance(receiver, ast.Name)
                    and receiver.id in pool_names
                )
                is_actor = attr in _ACTOR_ATTRS
                if not (is_pool_submit or is_actor):
                    continue
                boundary = (
                    "a process-pool boundary"
                    if is_pool_submit
                    else "the kernel-actor boundary"
                )
                for passed in _call_argument_values(node):
                    if (
                        isinstance(passed, ast.Name)
                        and passed.id in rng_names
                    ) or (
                        isinstance(passed, ast.Call)
                        and _is_rng_constructor(passed, module)
                    ):
                        yield module.finding(
                            passed,
                            self.code,
                            f"RNG object crosses {boundary} as a "
                            "shared object; pass the derived seed "
                            "(repro.workload.seed_stream) and "
                            "construct the generator on the far side",
                        )

    def _track(
        self,
        node: ast.AST,
        module: ModuleContext,
        rng_names: set[str],
        pool_names: set[str],
    ) -> None:
        """Record RNG- and pool-valued local bindings."""
        if isinstance(node, ast.Assign):
            targets = [
                target
                for target in node.targets
                if isinstance(target, ast.Name)
            ]
            self._bind(node.value, targets, module, rng_names, pool_names)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                self._bind(
                    node.value,
                    [node.target],
                    module,
                    rng_names,
                    pool_names,
                )
        elif isinstance(node, ast.With):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    self._bind(
                        item.context_expr,
                        [item.optional_vars],
                        module,
                        rng_names,
                        pool_names,
                    )

    def _bind(
        self,
        value: ast.expr,
        targets: list[ast.Name],
        module: ModuleContext,
        rng_names: set[str],
        pool_names: set[str],
    ) -> None:
        if not targets:
            return
        is_rng = (
            isinstance(value, ast.Call)
            and _is_rng_constructor(value, module)
        ) or (isinstance(value, ast.Name) and value.id in rng_names)
        is_pool = isinstance(value, ast.Call) and _is_pool_constructor(
            value, module
        )
        for target in targets:
            rng_names.discard(target.id)
            pool_names.discard(target.id)
            if is_rng:
                rng_names.add(target.id)
            if is_pool:
                pool_names.add(target.id)


def _is_pool_constructor(
    node: ast.Call, module: ModuleContext
) -> bool:
    origin = resolve_origin(node.func, module.imports)
    return origin is not None and origin.startswith(_POOL_PREFIXES)


def _call_argument_values(node: ast.Call) -> Iterable[ast.expr]:
    for arg in node.args:
        yield arg.value if isinstance(arg, ast.Starred) else arg
    for keyword in node.keywords:
        yield keyword.value


def _scopes(tree: ast.Module) -> list[list[ast.stmt]]:
    """The module body plus every function body, each as one scope."""
    scopes: list[list[ast.stmt]] = [tree.body]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node.body)
    return scopes


def _walk_scope(statement: ast.stmt) -> Iterable[ast.AST]:
    """Walk a statement without descending into nested functions."""
    stack: list[ast.AST] = [statement]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            stack.append(child)
