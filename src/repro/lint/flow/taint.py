"""RPR009 — nondeterminism taint: unordered values must not order anything.

The DES kernel breaks ties on a ``(seconds, priority, seq)`` tuple,
so *everything* that decides the order in which events are scheduled,
requests are pushed, or records are written is part of the replayable
state.  Python ``dict`` preserves insertion order — iterating one is
deterministic when its construction was — but a ``set`` iterates in
hash order (salted per process for ``str`` keys), and ``os.listdir``
/ ``glob`` return whatever order the filesystem feels like.  A value
born from one of those sources is **tainted**: iterating it, or
passing it into an ordering-sensitive sink (the event heap, a
``schedule``/``push``/``publish`` surface, JSONL output), silently
makes the run irreproducible.

The analysis is a forward taint pass per scope (module body and each
function body, in statement order):

* **sources** — set displays/comprehensions, ``set()``/
  ``frozenset()``, ``os.listdir``/``os.scandir``/``os.walk``,
  ``glob.glob``/``glob.iglob``, and pathlib's ``iterdir``/``glob``/
  ``rglob`` methods;
* **propagation** — through local names, order-preserving wrappers
  (``list``/``tuple``/``iter``/``enumerate``/``reversed``/
  ``filter``/``map``), set operators and set methods, and
  ``dict.fromkeys`` (the dict's insertion order is then tainted);
* **sanitizers** — ``sorted(...)`` launders taint; order-insensitive
  reductions (``len``/``sum``/``min``/``max``/``any``/``all``) and
  membership tests consume taint without leaking order;
* **sinks** — direct iteration (``for``/comprehensions), the heap
  (``heapq.*``), ``schedule``/``push``/``publish`` method calls,
  ``json.dump(s)``, and stream ``write``/``writelines``.

Findings read "sort it first": the fix is almost always a
``sorted(...)`` with an explicit, total key.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import Finding, ModuleContext, resolve_origin
from repro.lint.rules.base import Rule, register

#: Resolved call origins that return unordered collections.
_UNORDERED_ORIGINS = {
    "os.listdir",
    "os.scandir",
    "os.walk",
    "glob.glob",
    "glob.iglob",
}

#: Method names returning filesystem-ordered iterables (pathlib).
_UNORDERED_ATTRS = {"iterdir", "glob", "rglob"}

#: Builtin constructors of unordered collections.
_SET_BUILTINS = {"set", "frozenset"}

#: Builtins that preserve the order of their (tainted) input.
_PRESERVING_BUILTINS = {
    "list",
    "tuple",
    "iter",
    "enumerate",
    "reversed",
    "filter",
    "map",
}

#: Set methods whose result inherits the receiver's unorderedness.
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
    "keys",
    "values",
    "items",
}

#: Resolved origins that are ordering-sensitive sinks.
_SINK_ORIGINS = {
    "heapq.heappush",
    "heapq.heappushpop",
    "heapq.heapreplace",
    "heapq.heapify",
    "json.dump",
    "json.dumps",
}

#: Method names that feed the event/scheduling/export surfaces.
_SINK_ATTRS = {"schedule", "push", "publish", "write", "writelines"}

#: Set binary operators (union/intersection/difference/symmetric).
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


@register
class NondeterminismTaintRule(Rule):
    """Track unordered-iteration taint into ordering-sensitive sinks."""

    code = "RPR009"
    name = "nondeterminism-taint"
    rationale = (
        "Set and filesystem iteration order is not replayable; once "
        "it reaches the event heap, a scheduling surface, or "
        "exported output, runs stop being bit-identical — sort with "
        "a total key first."
    )

    def check_module(
        self, module: ModuleContext
    ) -> Iterable[Finding]:
        yield from _TaintPass(module, self.code).run(
            module.tree.body
        )
        for node in ast.walk(module.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                yield from _TaintPass(module, self.code).run(
                    node.body
                )


class _TaintPass:
    """One forward taint pass over one scope, in statement order."""

    def __init__(self, module: ModuleContext, code: str) -> None:
        self._module = module
        self._code = code
        self._tainted: set[str] = set()
        self._findings: list[Finding] = []

    def run(self, body: list[ast.stmt]) -> list[Finding]:
        for statement in body:
            self._statement(statement)
        return self._findings

    # -- statements ----------------------------------------------------

    def _statement(self, statement: ast.stmt) -> None:
        if isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return  # analyzed as its own scope
        if isinstance(statement, ast.Assign):
            self._visit_expr(statement.value)
            tainted = self._is_tainted(statement.value)
            for target in statement.targets:
                self._bind(target, tainted)
            return
        if isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                self._visit_expr(statement.value)
                self._bind(
                    statement.target,
                    self._is_tainted(statement.value),
                )
            return
        if isinstance(statement, ast.AugAssign):
            self._visit_expr(statement.value)
            if isinstance(statement.target, ast.Name):
                if self._is_tainted(statement.value):
                    self._tainted.add(statement.target.id)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._visit_expr(statement.iter)
            if self._is_tainted(statement.iter):
                self._flag_iteration(statement.iter)
            self._bind(statement.target, False)
            for child in (*statement.body, *statement.orelse):
                self._statement(child)
            return
        if isinstance(statement, (ast.If, ast.While)):
            self._visit_expr(statement.test)
            for child in (*statement.body, *statement.orelse):
                self._statement(child)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._visit_expr(item.context_expr)
                if isinstance(item.optional_vars, ast.Name):
                    self._bind(item.optional_vars, False)
            for child in statement.body:
                self._statement(child)
            return
        if isinstance(statement, ast.Try):
            for child in statement.body:
                self._statement(child)
            for handler in statement.handlers:
                for child in handler.body:
                    self._statement(child)
            for child in (*statement.orelse, *statement.finalbody):
                self._statement(child)
            return
        if isinstance(statement, ast.ClassDef):
            for child in statement.body:
                self._statement(child)
            return
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self._visit_expr(child)

    def _bind(self, target: ast.expr, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self._tainted.add(target.id)
            else:
                self._tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, tainted)

    # -- expressions ---------------------------------------------------

    def _visit_expr(self, expr: ast.expr) -> None:
        """Find sinks inside one expression tree."""
        for node in ast.walk(expr):
            if isinstance(node, ast.comprehension):
                if self._is_tainted(node.iter):
                    self._flag_iteration(node.iter)
            elif isinstance(node, ast.Call):
                self._check_sink(node)

    def _check_sink(self, node: ast.Call) -> None:
        origin = resolve_origin(node.func, self._module.imports)
        is_sink = origin is not None and origin in _SINK_ORIGINS
        if not is_sink and isinstance(node.func, ast.Attribute):
            is_sink = node.func.attr in _SINK_ATTRS
        if not is_sink:
            return
        for passed in (
            *node.args,
            *(keyword.value for keyword in node.keywords),
        ):
            if self._is_tainted(passed):
                sink = (
                    origin
                    if origin in _SINK_ORIGINS
                    else node.func.attr  # type: ignore[union-attr]
                )
                self._findings.append(
                    self._module.finding(
                        passed,
                        self._code,
                        f"unordered value flows into {sink}(); "
                        "its order becomes scheduling/output state "
                        "— sort it with a total key first",
                    )
                )

    def _flag_iteration(self, expr: ast.expr) -> None:
        self._findings.append(
            self._module.finding(
                expr,
                self._code,
                "iteration over an unordered collection leaks hash/"
                "filesystem order into the run; wrap it in "
                "sorted(...) with a total key",
            )
        )

    def _is_tainted(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self._tainted
        if isinstance(expr, ast.Starred):
            return self._is_tainted(expr.value)
        if isinstance(expr, ast.IfExp):
            return self._is_tainted(expr.body) or self._is_tainted(
                expr.orelse
            )
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, _SET_OPS
        ):
            return self._is_tainted(expr.left) or self._is_tainted(
                expr.right
            )
        if isinstance(expr, ast.Call):
            return self._is_tainted_call(expr)
        return False

    def _is_tainted_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            # Builtins only count when not shadowed by an import.
            if name in self._module.imports:
                return False
            if name in _SET_BUILTINS:
                return True
            if name == "sorted":
                return False  # the sanitizer
            if name in _PRESERVING_BUILTINS:
                if name == "map":
                    return any(
                        self._is_tainted(arg) for arg in node.args[1:]
                    )
                if name == "filter":
                    return any(
                        self._is_tainted(arg) for arg in node.args[1:]
                    )
                return any(
                    self._is_tainted(arg) for arg in node.args
                )
            return False
        origin = resolve_origin(func, self._module.imports)
        if origin is not None and origin in _UNORDERED_ORIGINS:
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _UNORDERED_ATTRS:
                # pathlib-shaped receiver; strings have no such
                # methods, so terminal-name matching is safe here.
                return True
            if func.attr == "fromkeys" and node.args:
                return self._is_tainted(node.args[0])
            if func.attr in _SET_METHODS:
                receiver_tainted = self._is_tainted(func.value)
                args_tainted = any(
                    self._is_tainted(arg) for arg in node.args
                )
                return receiver_tainted or (
                    func.attr
                    in (
                        "union",
                        "intersection",
                        "difference",
                        "symmetric_difference",
                    )
                    and args_tainted
                )
        return False
