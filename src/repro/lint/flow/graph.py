"""Project-wide symbol table and call/import graph.

The flow rules (RPR007-RPR010) are whole-program analyses: an RNG
constructed in ``repro.library.requests`` is only provably
seed-stream-derived if every *call site* of the constructing function
threads a derived seed in, and the phase partition only reconciles if
the ``*_seconds`` fields of three classes in three modules agree.
This module builds the shared substrate those rules walk:

* a **symbol table** — every top-level function, method, and class of
  every module in the run, under stable dotted qualified names
  (``repro.workload.seed_stream.trial_state``,
  ``repro.serve.fair.WeightedFairQueues.push``);
* an **import graph** — which project modules each module imports
  (external imports are resolved but not edges);
* a **call graph** — every call site, resolved to a project symbol
  where the import map or module-local names allow it, annotated with
  the enclosing function so dataflow can walk caller -> callee.

Resolution is deliberately conservative: a call through a local
variable, a dynamic dispatch, or a name the import map cannot place
simply stays unresolved (``internal=False``) — the flow rules must
never *guess* a target, because a wrong edge turns into a wrong
finding.  The graph is memoized on the :class:`ProjectContext` so the
four flow rules share one build per run, and ``repro lint
--graph-dump`` serializes it as a CI artifact.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.core import (
    ModuleContext,
    ProjectContext,
    dotted_parts,
)

#: Cache key on :attr:`ProjectContext.cache`.
_CACHE_KEY = "flow-graph"


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    qualified: str
    module: str
    rel_path: str
    line: int
    #: Declared parameter names, in order (``self``/``cls`` included).
    params: tuple[str, ...]
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def is_method(self) -> bool:
        """Does the first parameter bind the instance/class?"""
        return bool(self.params) and self.params[0] in ("self", "cls")


@dataclass(frozen=True)
class ClassInfo:
    """One class definition and its body-level field names."""

    qualified: str
    module: str
    rel_path: str
    line: int
    name: str
    #: Names assigned or annotated directly in the class body.
    fields: tuple[str, ...]
    node: ast.ClassDef


@dataclass(frozen=True)
class CallSite:
    """One call expression, resolved as far as statically possible."""

    #: Qualified name of the enclosing function ("" = module body).
    caller: str
    #: Dotted callee; project-qualified when ``internal`` is true.
    callee: str
    #: Does ``callee`` name a symbol defined in this run's modules?
    internal: bool
    rel_path: str
    line: int
    node: ast.Call


@dataclass
class ModuleInfo:
    """One module of the run, as a graph node."""

    name: str
    rel_path: str
    #: Project-internal modules this module imports.
    imports: tuple[str, ...]
    context: ModuleContext


@dataclass
class ProjectGraph:
    """Symbol table + import graph + call graph of one lint run."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)

    def classes_named(self, name: str) -> list[ClassInfo]:
        """All project classes with the given bare name."""
        return [
            info for info in self.classes.values() if info.name == name
        ]

    def calls_to(self, qualified: str) -> list[CallSite]:
        """All resolved call sites targeting one project symbol."""
        return [
            site
            for site in self.calls
            if site.internal and site.callee == qualified
        ]

    def to_record(self) -> dict[str, object]:
        """JSON-safe serialization for ``--graph-dump`` artifacts."""
        modules = {
            name: {
                "path": info.rel_path,
                "imports": sorted(info.imports),
            }
            for name, info in sorted(self.modules.items())
        }
        functions = {
            qualified: {
                "path": info.rel_path,
                "line": info.line,
                "params": list(info.params),
            }
            for qualified, info in sorted(self.functions.items())
        }
        classes = {
            qualified: {
                "path": info.rel_path,
                "line": info.line,
                "fields": list(info.fields),
            }
            for qualified, info in sorted(self.classes.items())
        }
        calls = [
            {
                "caller": site.caller,
                "callee": site.callee,
                "internal": site.internal,
                "path": site.rel_path,
                "line": site.line,
            }
            for site in sorted(
                self.calls,
                key=lambda s: (s.rel_path, s.line, s.callee),
            )
        ]
        return {
            "version": 1,
            "modules": modules,
            "functions": functions,
            "classes": classes,
            "calls": calls,
            "counts": {
                "modules": len(modules),
                "functions": len(functions),
                "classes": len(classes),
                "calls": len(calls),
                "internal_calls": sum(
                    1 for site in self.calls if site.internal
                ),
            },
        }


def module_graph_name(module: ModuleContext) -> str:
    """Stable dotted node name for a module.

    Packaged modules use their import name; loose files (fixtures,
    scripts) fall back to the repo-relative path with slashes turned
    into dots, so every module in a run has exactly one node.
    """
    if module.module_name is not None:
        return module.module_name
    trimmed = module.rel_path
    if trimmed.endswith(".py"):
        trimmed = trimmed[: -len(".py")]
    return trimmed.replace("/", ".")


def _absolutize(origin: str, module: ModuleContext) -> str:
    """Resolve a possibly-relative import origin to a dotted name."""
    if not origin.startswith("."):
        return origin
    level = len(origin) - len(origin.lstrip("."))
    remainder = origin[level:]
    base = module_graph_name(module).split(".")
    if module.path.stem != "__init__":
        base = base[:-1]
    # Each extra dot beyond the first climbs one more package.
    base = base[: len(base) - (level - 1)] if level > 1 else base
    parts = [part for part in base if part]
    if remainder:
        parts.extend(remainder.split("."))
    return ".".join(parts)


class _Resolver:
    """Maps dotted origins onto project symbols."""

    def __init__(self, graph: ProjectGraph) -> None:
        self._graph = graph
        self._by_tail: dict[str, list[str]] = {}
        for name in graph.modules:
            tail = name.rsplit(".", 1)[-1]
            self._by_tail.setdefault(tail, []).append(name)

    def module_for(self, dotted: str) -> tuple[str, str] | None:
        """Split ``dotted`` into (project module, symbol path).

        Tries longest-prefix match against full module names first;
        when nothing matches, falls back to the *tail* name — loose
        fixture modules import each other by bare file name — but
        only when that tail is unambiguous in the run.
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self._graph.modules:
                return prefix, ".".join(parts[cut:])
        tail_owners = self._by_tail.get(parts[0])
        if tail_owners is not None and len(tail_owners) == 1:
            return tail_owners[0], ".".join(parts[1:])
        return None

    def resolve_call(
        self, dotted: str
    ) -> tuple[str, bool]:
        """Project-qualify a dotted callee when it names our symbol."""
        located = self.module_for(dotted)
        if located is None:
            return dotted, False
        module_name, symbol = located
        if not symbol:
            return module_name, False
        qualified = f"{module_name}.{symbol}"
        if (
            qualified in self._graph.functions
            or qualified in self._graph.classes
        ):
            return qualified, True
        return qualified, False


def _class_fields(node: ast.ClassDef) -> tuple[str, ...]:
    """Names assigned or annotated directly in a class body."""
    names: list[str] = []
    for statement in node.body:
        target: ast.expr | None = None
        if isinstance(statement, ast.AnnAssign):
            target = statement.target
        elif isinstance(statement, ast.Assign):
            target = (
                statement.targets[0]
                if len(statement.targets) == 1
                else None
            )
        if isinstance(target, ast.Name):
            names.append(target.id)
    return tuple(names)


def _function_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[str, ...]:
    arguments = node.args
    return tuple(
        param.arg
        for param in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        )
    )


class _SymbolCollector(ast.NodeVisitor):
    """First pass: functions, methods, classes of one module."""

    def __init__(
        self, graph: ProjectGraph, module: ModuleContext, name: str
    ) -> None:
        self._graph = graph
        self._module = module
        self._name = name
        self._scope: list[str] = []

    def _qualify(self, leaf: str) -> str:
        return ".".join([self._name, *self._scope, leaf])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualified = self._qualify(node.name)
        self._graph.classes[qualified] = ClassInfo(
            qualified=qualified,
            module=self._name,
            rel_path=self._module.rel_path,
            line=node.lineno,
            name=node.name,
            fields=_class_fields(node),
            node=node,
        )
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        qualified = self._qualify(node.name)
        # First definition wins: overloads/redefinitions keep the
        # original node so line anchors stay stable.
        self._graph.functions.setdefault(
            qualified,
            FunctionInfo(
                qualified=qualified,
                module=self._name,
                rel_path=self._module.rel_path,
                line=node.lineno,
                params=_function_params(node),
                node=node,
            ),
        )
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef
    ) -> None:
        self._visit_function(node)


class _CallCollector(ast.NodeVisitor):
    """Second pass: every call site, resolved where possible."""

    def __init__(
        self,
        graph: ProjectGraph,
        resolver: _Resolver,
        module: ModuleContext,
        name: str,
    ) -> None:
        self._graph = graph
        self._resolver = resolver
        self._module = module
        self._name = name
        self._scope: list[str] = []
        self._class_stack: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()
        self._scope.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef
    ) -> None:
        self._visit_function(node)

    def _caller(self) -> str:
        if not self._scope:
            return ""
        return ".".join([self._name, *self._scope])

    def _resolve_target(self, func: ast.expr) -> tuple[str, bool]:
        """(callee name, internal?) for one call target expression."""
        parts = dotted_parts(func)
        if parts is None:
            return "<dynamic>", False
        head = parts[0]
        # self.method() / cls.method() inside a class body resolves to
        # a sibling method of the enclosing class when one exists.
        if head in ("self", "cls") and self._class_stack:
            candidate = ".".join(
                [self._name, *self._class_stack, *parts[1:]]
            )
            if candidate in self._graph.functions:
                return candidate, True
            return ".".join(parts), False
        origin = self._module.imports.get(head)
        if origin is not None:
            dotted = _absolutize(
                ".".join([origin, *parts[1:]]), self._module
            )
            return self._resolver.resolve_call(dotted)
        # A bare name defined at module top level.
        candidate = ".".join([self._name, *parts])
        if (
            candidate in self._graph.functions
            or candidate in self._graph.classes
        ):
            return candidate, True
        return ".".join(parts), False

    def visit_Call(self, node: ast.Call) -> None:
        callee, internal = self._resolve_target(node.func)
        self._graph.calls.append(
            CallSite(
                caller=self._caller(),
                callee=callee,
                internal=internal,
                rel_path=self._module.rel_path,
                line=node.lineno,
                node=node,
            )
        )
        self.generic_visit(node)


def build_graph(project: ProjectContext) -> ProjectGraph:
    """Construct the symbol table and call/import graph of a run."""
    graph = ProjectGraph()
    names: dict[str, str] = {}
    for module in project.modules:
        name = module_graph_name(module)
        names[module.rel_path] = name
        graph.modules[name] = ModuleInfo(
            name=name,
            rel_path=module.rel_path,
            imports=(),
            context=module,
        )
    for module in project.modules:
        _SymbolCollector(
            graph, module, names[module.rel_path]
        ).visit(module.tree)
    resolver = _Resolver(graph)
    for module in project.modules:
        name = names[module.rel_path]
        internal_imports: set[str] = set()
        for origin in module.imports.values():
            dotted = _absolutize(origin, module)
            located = resolver.module_for(dotted)
            if located is not None and located[0] != name:
                internal_imports.add(located[0])
        graph.modules[name].imports = tuple(sorted(internal_imports))
        _CallCollector(graph, resolver, module, name).visit(
            module.tree
        )
    return graph


def project_graph(project: ProjectContext) -> ProjectGraph:
    """The memoized graph of a run (built at most once per project)."""
    cached = project.cache.get(_CACHE_KEY)
    if isinstance(cached, ProjectGraph):
        return cached
    graph = build_graph(project)
    project.cache[_CACHE_KEY] = graph
    return graph
