"""Human and ``--json`` rendering of a lint run."""

from __future__ import annotations

import json
from collections import Counter

from repro.lint.baseline import BaselineDiff
from repro.lint.engine import LintRun
from repro.lint.rules import rule_catalog


def render_text(run: LintRun, diff: BaselineDiff | None = None) -> str:
    """Human report: one line per finding plus a summary footer."""
    lines: list[str] = []
    if diff is None:
        reported = run.findings
        for finding in reported:
            lines.append(finding.render())
    else:
        reported = diff.new
        for finding in reported:
            lines.append(finding.render())
        if diff.tolerated:
            lines.append(
                f"note: {len(diff.tolerated)} pre-existing finding(s) "
                "tolerated by the baseline"
            )
        for key, count in sorted(diff.stale.items()):
            lines.append(
                f"stale baseline entry {key}: {count} finding(s) "
                "were fixed — tighten with --update-baseline"
            )
    for path, line in run.unused_suppressions:
        lines.append(
            f"note: unused suppression at {path}:{line} (remove it?)"
        )
    summary = Counter(finding.code for finding in reported)
    by_code = ", ".join(
        f"{code}: {count}" for code, count in sorted(summary.items())
    )
    verdict = "clean" if not reported else f"{len(reported)} finding(s)"
    detail = f" ({by_code})" if by_code else ""
    lines.append(
        f"repro lint: {verdict}{detail} in {run.files_checked} file(s)"
        + (
            f", {run.suppressed} suppressed inline"
            if run.suppressed
            else ""
        )
    )
    return "\n".join(lines)


def render_json(run: LintRun, diff: BaselineDiff | None = None) -> str:
    """Machine report for CI artifacts (stable key order)."""
    reported = run.findings if diff is None else diff.new
    payload = {
        "version": 1,
        "files_checked": run.files_checked,
        "suppressed": run.suppressed,
        "findings": [finding.to_record() for finding in reported],
        "summary": dict(
            sorted(
                Counter(
                    finding.code for finding in reported
                ).items()
            )
        ),
        "rules": rule_catalog(),
    }
    if diff is not None:
        payload["baseline"] = {
            "tolerated": len(diff.tolerated),
            "stale": dict(sorted(diff.stale.items())),
        }
    return json.dumps(payload, indent=2, sort_keys=False)
