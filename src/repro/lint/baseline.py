"""The findings baseline: a ratchet that only turns one way.

The committed baseline (``tools/lint_baseline.json``) records how many
findings of each ``path::code`` bucket existed when a rule landed.
The gate then enforces two directions:

* **never up** — any bucket exceeding its baseline count is a *new*
  finding and fails the run;
* **only down** — a bucket whose live count dropped below its baseline
  is *stale*; the baseline must be rewritten (``--update-baseline``)
  so the fixed findings can never quietly come back.

Counts are used instead of line numbers so an unrelated edit that
shifts a legacy finding by a few lines does not dirty the gate, while
introducing a *second* violation in the same file still fails.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import LintError
from repro.lint.core import Finding

#: Schema version of the baseline file.
_VERSION = 1


def finding_counts(findings: list[Finding]) -> dict[str, int]:
    """Bucket findings by ``path::code``."""
    return dict(Counter(finding.key for finding in findings))


def load_baseline(path: Path) -> dict[str, int]:
    """Read a committed baseline file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise LintError(
            f"baseline file {path} does not exist; create it with "
            "--update-baseline"
        ) from None
    except json.JSONDecodeError as error:
        raise LintError(f"corrupt baseline file {path}: {error}") from None
    if payload.get("version") != _VERSION:
        raise LintError(
            f"baseline file {path} has unsupported version "
            f"{payload.get('version')!r}"
        )
    counts = payload.get("counts", {})
    if not all(
        isinstance(key, str) and isinstance(value, int) and value > 0
        for key, value in counts.items()
    ):
        raise LintError(f"baseline file {path} has malformed counts")
    return dict(counts)


def save_baseline(path: Path, findings: list[Finding]) -> None:
    """Write the current findings as the new baseline."""
    payload = {
        "version": _VERSION,
        "counts": dict(sorted(finding_counts(findings).items())),
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@dataclass
class BaselineDiff:
    """Live findings compared against a committed baseline."""

    #: Findings in buckets that exceed their baseline allowance.
    new: list[Finding] = field(default_factory=list)
    #: Buckets whose live count dropped below the baseline (the
    #: baseline is stale and must be tightened).
    stale: dict[str, int] = field(default_factory=dict)
    #: Findings tolerated by the baseline.
    tolerated: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No new findings (stale entries warn but do not fail)."""
        return not self.new


def diff_baseline(
    findings: list[Finding], baseline: dict[str, int]
) -> BaselineDiff:
    """Split live findings into new vs. tolerated, and spot staleness."""
    live = finding_counts(findings)
    result = BaselineDiff()
    for key, allowed in baseline.items():
        current = live.get(key, 0)
        if current < allowed:
            result.stale[key] = allowed - current
    overflow = {
        key: count - baseline.get(key, 0)
        for key, count in live.items()
        if count > baseline.get(key, 0)
    }
    remaining = dict(overflow)
    for finding in findings:
        if remaining.get(finding.key, 0) > 0:
            remaining[finding.key] -= 1
            result.new.append(finding)
        else:
            result.tolerated.append(finding)
    return result
