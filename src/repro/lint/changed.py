"""Git-aware file selection for ``repro lint --changed``.

Incremental linting must not weaken the cross-module rules: the flow
analyses (RPR007-RPR010) are only sound when they see the whole
project, because a call-graph edge or a class definition in an
*unchanged* file can make a *changed* line a violation.  So
``--changed`` never narrows the parse — it narrows the **report**.
The engine still walks every file; findings are then filtered to the
files git says differ from ``HEAD`` (staged, unstaged, and
untracked).

When git is unavailable, the tree is not a repository, or the diff
cannot be resolved, :func:`changed_rel_paths` returns ``None`` and
the caller falls back to full-tree reporting — degrading to *more*
checking, never less.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

#: Git commands whose union is "what differs from HEAD right now".
_GIT_QUERIES = (
    ("git", "diff", "--name-only", "--diff-filter=d", "HEAD"),
    ("git", "ls-files", "--others", "--exclude-standard"),
)


def _git_lines(command: tuple[str, ...], root: Path) -> list[str] | None:
    """Run one git query; None on any failure (missing git, not a repo)."""
    try:
        completed = subprocess.run(
            command,
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return [line for line in completed.stdout.splitlines() if line]


def changed_rel_paths(root: Path) -> set[str] | None:
    """Root-relative posix paths of changed Python files under ``root``.

    Git reports paths relative to the repository top level; the
    engine keys findings relative to ``root`` (usually the cwd).
    When the two differ, paths are rebased so the filter matches the
    engine's keys.  Returns ``None`` when the changed set cannot be
    determined — callers must then report on the full tree.  An
    empty set is a real answer (clean worktree: nothing to report).
    """
    toplevel_lines = _git_lines(
        ("git", "rev-parse", "--show-toplevel"), root
    )
    if not toplevel_lines:
        return None
    toplevel = Path(toplevel_lines[0])
    changed: set[str] = set()
    for command in _GIT_QUERIES:
        lines = _git_lines(command, root)
        if lines is None:
            return None
        for line in lines:
            if not line.endswith(".py"):
                continue
            absolute = (toplevel / line).resolve()
            try:
                changed.add(
                    absolute.relative_to(root.resolve()).as_posix()
                )
            except ValueError:
                continue  # changed, but outside the linted root
    return changed
