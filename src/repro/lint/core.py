"""Shared data model of the ``repro.lint`` static-analysis pass.

The engine parses every module once into a :class:`ModuleContext`
(source, AST, import map, inline suppressions) and hands the contexts
to each rule; rules report :class:`Finding` objects, which the engine
de-duplicates against suppressions and the committed baseline.

Inline suppressions use the repo's own syntax — *not* ``# noqa`` — so
they can never be confused with (or eaten by) ruff::

    risky_line()  # repro: noqa RPR001 -- wall clock feeds the UI only

A suppression names one or more rule codes and **must** carry a
``-- reason``; a reasonless or malformed suppression is itself a
finding (``RPR000``), so silencing the linter always leaves a written
justification behind.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: Matches an inline suppression comment anywhere in a source line.
SUPPRESSION_RE = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>[^#\n]*)")

#: The codes + reason tail of a well-formed suppression.
_REST_RE = re.compile(
    r"^\s+(?P<codes>RPR\d{3}(?:\s*,\s*RPR\d{3})*)\s*--\s*(?P<reason>\S.*)$"
)

#: Shape of a valid rule code.
CODE_RE = re.compile(r"^RPR\d{3}$")

#: Engine-level findings (parse errors, malformed suppressions).
ENGINE_CODE = "RPR000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    column: int
    code: str
    message: str

    @property
    def key(self) -> str:
        """Baseline bucket: findings ratchet per ``path::code``."""
        return f"{self.path}::{self.code}"

    def to_record(self) -> dict[str, object]:
        """JSON-safe record for ``--json`` reports."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
        }

    def render(self) -> str:
        """Human one-liner (``path:line:col CODE message``)."""
        return (
            f"{self.path}:{self.line}:{self.column} "
            f"{self.code} {self.message}"
        )


@dataclass(frozen=True)
class Suppression:
    """A well-formed inline suppression.

    A trailing comment suppresses its own line; a comment-only line
    suppresses the next line that carries code, so a suppression (and
    its reason) can sit in a comment block above a long statement.
    ``line`` is where the comment lives, ``target_line`` the code line
    it silences.
    """

    line: int
    target_line: int
    codes: frozenset[str]
    reason: str


def _comment_tokens(source: str) -> list[tuple[int, int, str]]:
    """(line, column, text) of every comment token in the source.

    Tokenizing (rather than scanning text lines) keeps suppressions
    that merely appear *inside string literals* — docstrings, error
    messages, this linter's own fixtures — from being parsed as real.
    Sources that fail to tokenize yield no comments; the engine
    reports the syntax error separately.
    """
    comments = []
    try:
        for token in tokenize.generate_tokens(
            io.StringIO(source).readline
        ):
            if token.type == tokenize.COMMENT:
                comments.append(
                    (token.start[0], token.start[1], token.string)
                )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def _suppression_target(lines: list[str], number: int) -> int:
    """The code line a suppression on ``number`` applies to."""
    stripped = lines[number - 1].strip() if number <= len(lines) else ""
    if not stripped.startswith("#"):
        return number  # trailing comment on a code line
    for candidate in range(number + 1, len(lines) + 1):
        text = lines[candidate - 1].strip()
        if text and not text.startswith("#"):
            return candidate
    return number


def parse_suppressions(
    source: str, path: str
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Extract inline suppressions; malformed ones become findings.

    The returned dict is keyed by *target* line (the line the
    suppression silences), so the engine's filter is a single lookup.
    """
    lines = source.splitlines()
    suppressions: dict[int, Suppression] = {}
    problems: list[Finding] = []
    for number, offset, text in _comment_tokens(source):
        match = SUPPRESSION_RE.search(text)
        if match is None:
            continue
        column = offset + match.start() + 1
        rest = _REST_RE.match(match.group("rest"))
        if rest is None:
            problems.append(
                Finding(
                    path=path,
                    line=number,
                    column=column,
                    code=ENGINE_CODE,
                    message=(
                        "malformed suppression: expected "
                        "'# repro: noqa RPRnnn -- reason'"
                    ),
                )
            )
            continue
        codes = frozenset(
            code.strip()
            for code in rest.group("codes").split(",")
        )
        target = _suppression_target(lines, number)
        existing = suppressions.get(target)
        if existing is not None:
            codes = codes | existing.codes
        suppressions[target] = Suppression(
            line=number,
            target_line=target,
            codes=codes,
            reason=rest.group("reason").strip(),
        )
    return suppressions, problems


def build_import_map(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted origin they were imported from.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    time as now`` maps ``now -> time.time``.  Names bound by plain
    ``import a.b`` map the root (``a -> a``), which is how attribute
    chains rooted there resolve.
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = ("." * node.level) + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    return imports


def dotted_parts(node: ast.AST) -> list[str] | None:
    """``a.b.c`` expression -> ``["a", "b", "c"]`` (None if not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def resolve_origin(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Resolve an expression to the dotted name it was imported as.

    Returns ``None`` for chains rooted at local (non-imported) names —
    the caller cannot know what those are, so rules must not guess.
    """
    parts = dotted_parts(node)
    if parts is None:
        return None
    origin = imports.get(parts[0])
    if origin is None:
        return None
    return ".".join([origin, *parts[1:]])


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a name/attribute chain (``a.B`` -> ``B``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class ModuleContext:
    """Everything a rule may want to know about one parsed module."""

    path: Path
    rel_path: str
    module_name: str | None
    source: str
    tree: ast.Module
    imports: dict[str, str]
    suppressions: dict[int, Suppression]

    def finding(
        self, node: ast.AST, code: str, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node of this module."""
        return Finding(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


@dataclass
class ProjectContext:
    """The whole run, for cross-module rules."""

    root: Path
    modules: list[ModuleContext] = field(default_factory=list)
    #: Scratch space shared by cross-module passes within one run —
    #: the flow analyzer memoizes its project graph here so the four
    #: flow rules build it once instead of four times.
    cache: dict[str, object] = field(default_factory=dict)

    def by_rel_path(self) -> dict[str, ModuleContext]:
        """Index the run's modules by repo-relative path."""
        return {module.rel_path: module for module in self.modules}


def module_name_for(path: Path) -> str | None:
    """Dotted import name of a file living inside a package tree.

    Walks up while ``__init__.py`` siblings exist; a file outside any
    package (e.g. a lint fixture) gets ``None`` and is imported by
    path instead when a rule needs the live module.
    """
    path = path.resolve()
    parent = path.parent
    if not (parent / "__init__.py").exists():
        return None
    parts = [] if path.stem == "__init__" else [path.stem]
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts)
