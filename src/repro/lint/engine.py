"""The rule engine: discover, parse, run rules, filter suppressions.

:func:`run_lint` is the single entry point used by the CLI, the test
suite, and the benchmark guard.  It walks the given paths for Python
files, parses each exactly once into a
:class:`~repro.lint.core.ModuleContext`, runs every per-module rule,
then the cross-module ``finish`` passes, and finally drops findings
covered by an inline ``# repro: noqa RPRnnn -- reason`` suppression on
the flagged line.  Unparseable files and malformed suppressions are
reported as ``RPR000`` rather than aborting the run — a linter that
dies on bad input cannot ratchet anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import LintError
from repro.lint.core import (
    CODE_RE,
    ENGINE_CODE,
    Finding,
    ModuleContext,
    ProjectContext,
    build_import_map,
    module_name_for,
    parse_suppressions,
)
from repro.lint.rules import Rule, default_rules

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache"}


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
        elif not path.exists():
            raise LintError(f"no such file or directory: {path}")
    return sorted(found)


def _relative_path(path: Path, root: Path) -> str:
    """Stable repo-relative posix path (baseline keys depend on it)."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_module(
    path: Path, root: Path
) -> tuple[ModuleContext | None, list[Finding]]:
    """Parse one file; syntax errors become RPR000 findings."""
    rel_path = _relative_path(path, root)
    source = path.read_text(encoding="utf-8")
    suppressions, problems = parse_suppressions(source, rel_path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        problems.append(
            Finding(
                path=rel_path,
                line=error.lineno or 1,
                column=(error.offset or 0) + 1,
                code=ENGINE_CODE,
                message=f"syntax error: {error.msg}",
            )
        )
        return None, problems
    module = ModuleContext(
        path=path,
        rel_path=rel_path,
        module_name=module_name_for(path),
        source=source,
        tree=tree,
        imports=build_import_map(tree),
        suppressions=suppressions,
    )
    return module, problems


@dataclass
class LintRun:
    """Outcome of one engine run."""

    findings: list[Finding]
    files_checked: int
    suppressed: int = 0
    #: Suppressions that never matched a finding (informational).
    unused_suppressions: list[tuple[str, int]] = field(
        default_factory=list
    )
    #: The parsed project of the run — the flow analyzer's graph is
    #: memoized on it, so ``--graph-dump`` serializes without a
    #: second parse.
    project: ProjectContext | None = None


def _known_codes(rules: list[Rule]) -> set[str]:
    # Every *registered* code is known, not just the active subset —
    # ``--flow`` must not call a valid RPR002 suppression unknown.
    from repro.lint.rules import REGISTRY

    return (
        {rule.code for rule in rules}
        | set(REGISTRY)
        | {ENGINE_CODE}
    )


def run_lint(
    paths: list[Path] | list[str],
    rules: list[Rule] | None = None,
    root: Path | None = None,
    report_rel_paths: set[str] | None = None,
) -> LintRun:
    """Lint the given files/directories with the given (or all) rules.

    ``report_rel_paths`` restricts *reporting* (not analysis) to the
    given repo-relative paths: the whole tree is still parsed and the
    cross-module passes still see every module — so the flow rules
    stay sound — but findings outside the selection are dropped.
    This is the engine side of ``repro lint --changed``.
    """
    if rules is None:
        rules = default_rules()
    root = Path.cwd() if root is None else Path(root)
    files = iter_python_files([Path(p) for p in paths])
    project = ProjectContext(root=root)
    raw: list[Finding] = []
    for path in files:
        module, problems = load_module(path, root)
        raw.extend(problems)
        if module is None:
            continue
        project.modules.append(module)
        for rule in rules:
            raw.extend(rule.check_module(module))
    for rule in rules:
        raw.extend(rule.finish(project))
    raw.extend(_audit_suppressions(project, _known_codes(rules)))
    findings, suppressed, used = _apply_suppressions(project, raw)
    unused = _unused_suppressions(
        project, used, {rule.code for rule in rules}
    )
    if report_rel_paths is not None:
        findings = [
            finding
            for finding in findings
            if finding.path in report_rel_paths
        ]
        unused = [
            (path, line)
            for path, line in unused
            if path in report_rel_paths
        ]
    findings.sort()
    return LintRun(
        findings=findings,
        files_checked=len(files),
        suppressed=suppressed,
        unused_suppressions=unused,
        project=project,
    )


def _audit_suppressions(
    project: ProjectContext, known_codes: set[str]
) -> list[Finding]:
    """Flag suppressions naming codes that do not exist."""
    problems = []
    for module in project.modules:
        for suppression in module.suppressions.values():
            for code in sorted(suppression.codes):
                if not CODE_RE.match(code) or code not in known_codes:
                    problems.append(
                        Finding(
                            path=module.rel_path,
                            line=suppression.line,
                            column=1,
                            code=ENGINE_CODE,
                            message=(
                                f"suppression names unknown rule "
                                f"code {code}"
                            ),
                        )
                    )
    return problems


def _apply_suppressions(
    project: ProjectContext, raw: list[Finding]
) -> tuple[list[Finding], int, set[tuple[str, int]]]:
    """Drop findings whose line carries a matching suppression."""
    by_path = project.by_rel_path()
    kept: list[Finding] = []
    used: set[tuple[str, int]] = set()
    suppressed = 0
    for finding in raw:
        module = by_path.get(finding.path)
        suppression = (
            module.suppressions.get(finding.line)
            if module is not None
            else None
        )
        if (
            suppression is not None
            and finding.code in suppression.codes
            and finding.code != ENGINE_CODE
        ):
            suppressed += 1
            used.add((finding.path, finding.line))
        else:
            kept.append(finding)
    return kept, suppressed, used


def _unused_suppressions(
    project: ProjectContext,
    used: set[tuple[str, int]],
    active_codes: set[str],
) -> list[tuple[str, int]]:
    """Suppressions that matched nothing (candidates for removal).

    Under a rule subset (``--flow``), a suppression naming only
    inactive rules is not "unused" — its rule never got the chance
    to fire this run.
    """
    unused = []
    for module in project.modules:
        for target, suppression in sorted(module.suppressions.items()):
            if not suppression.codes & active_codes:
                continue
            if (module.rel_path, target) not in used:
                unused.append((module.rel_path, suppression.line))
    return unused
