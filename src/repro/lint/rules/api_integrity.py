"""RPR005 — API/shim integrity: every exported name must resolve.

``__all__`` is the facade contract (``repro.api`` re-exports ~50 names
and ``docs/API.md`` documents them as stable), and the deprecation
shims (``repro.drive.events`` style: a ``_MOVED`` tuple plus a module
``__getattr__``) promise that every moved name still imports.  Both
promises break silently: a stale ``__all__`` entry only explodes on
``from module import *`` or ``getattr``, and a shim pointing at a
renamed target only explodes for the downstream user it was supposed
to protect.

This cross-module rule *imports* each module that declares an
``__all__`` or a shim table and probes every declared name with
``getattr`` (deprecation warnings suppressed, so warn-once shims keep
their single shot for real callers).  Modules inside a package are
imported by dotted name; detached files (fixtures) by path.
"""

from __future__ import annotations

import ast
import importlib
import importlib.util
import itertools
import warnings
from collections.abc import Iterable
from dataclasses import dataclass

from repro.lint.core import Finding, ModuleContext, ProjectContext
from repro.lint.rules.base import Rule, register

#: Counter for unique synthetic names of path-imported modules.
_synthetic_ids = itertools.count()


@dataclass(frozen=True)
class _Export:
    """One declared-name list of one module."""

    module: ModuleContext
    kind: str  # "__all__" or "shim"
    names: tuple[str, ...]
    line: int
    column: int


def _literal_strings(node: ast.AST) -> tuple[str, ...] | None:
    """A tuple/list of string constants, or None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        names.append(element.value)
    return tuple(names)


def _module_declarations(module: ModuleContext) -> Iterable[_Export]:
    """``__all__`` and shim ``_MOVED`` declarations of one module."""
    has_module_getattr = any(
        isinstance(node, ast.FunctionDef) and node.name == "__getattr__"
        for node in module.tree.body
    )
    for node in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        if value is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            names = _literal_strings(value)
            if names is None:
                continue
            if target.id == "__all__":
                yield _Export(
                    module=module,
                    kind="__all__",
                    names=names,
                    line=node.lineno,
                    column=node.col_offset + 1,
                )
            elif target.id == "_MOVED" and has_module_getattr:
                yield _Export(
                    module=module,
                    kind="shim",
                    names=names,
                    line=node.lineno,
                    column=node.col_offset + 1,
                )


def _import_module(module: ModuleContext):
    """Import a linted module (dotted name if packaged, else by path)."""
    if module.module_name is not None:
        return importlib.import_module(module.module_name)
    synthetic = f"_repro_lint_probe_{next(_synthetic_ids)}"
    spec = importlib.util.spec_from_file_location(
        synthetic, module.path
    )
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {module.path}")
    loaded = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(loaded)
    return loaded


@register
class ApiIntegrityRule(Rule):
    """Probe every ``__all__`` and shim target by real import."""

    code = "RPR005"
    name = "api-shim-integrity"
    rationale = (
        "A stale __all__ entry or a shim pointing at a renamed "
        "target breaks exactly the downstream users the facade and "
        "the deprecation policy promised to protect."
    )

    def __init__(self) -> None:
        self._exports: list[_Export] = []

    def check_module(
        self, module: ModuleContext
    ) -> Iterable[Finding]:
        self._exports.extend(_module_declarations(module))
        return ()

    def finish(self, project: ProjectContext) -> Iterable[Finding]:
        by_module: dict[str, list[_Export]] = {}
        for export in self._exports:
            by_module.setdefault(export.module.rel_path, []).append(
                export
            )
        for exports in by_module.values():
            yield from self._probe_module(exports)

    def _probe_module(
        self, exports: list[_Export]
    ) -> Iterable[Finding]:
        module = exports[0].module
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            try:
                live = _import_module(module)
            except Exception as error:  # repro: noqa RPR003 -- the import probe reports broken modules as findings instead of dying; no DriveFault can originate here
                first = exports[0]
                yield Finding(
                    path=module.rel_path,
                    line=first.line,
                    column=first.column,
                    code=self.code,
                    message=(
                        f"module failed to import while probing its "
                        f"exports: {error!r}"
                    ),
                )
                return
            for export in exports:
                for name in export.names:
                    try:
                        getattr(live, name)
                    except AttributeError:
                        label = (
                            "__all__ entry"
                            if export.kind == "__all__"
                            else "deprecation-shim target"
                        )
                        yield Finding(
                            path=module.rel_path,
                            line=export.line,
                            column=export.column,
                            code=self.code,
                            message=(
                                f"{label} {name!r} does not resolve "
                                "on import"
                            ),
                        )
