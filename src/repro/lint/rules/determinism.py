"""RPR001 — determinism: no ambient clocks or unseeded randomness.

The reproduction's headline guarantee is that every figure sweep is
bit-identical across runs and across worker counts (the golden
regressions of ``tests/experiments/golden`` depend on it).  One
``time.time()`` or unseeded ``np.random.default_rng()`` inside
``src/repro`` silently voids that guarantee, so seeds and timestamps
must always *arrive as parameters* instead of being pulled from the
environment.

Duration measurement (``time.perf_counter`` / ``time.monotonic`` /
``time.process_time``) is deliberately allowed: wall-clock *intervals*
feed CPU-cost figures and degraded-mode budgets, never the simulated
statistics.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import Finding, ModuleContext, resolve_origin
from repro.lint.rules.base import Rule, register

#: Calls that read ambient state and are banned outright.
_BANNED_CALLS = {
    "time.time": "wall-clock reads are nondeterministic",
    "time.time_ns": "wall-clock reads are nondeterministic",
    "datetime.datetime.now": "ambient timestamps are nondeterministic",
    "datetime.datetime.utcnow": "ambient timestamps are nondeterministic",
    "datetime.datetime.today": "ambient timestamps are nondeterministic",
    "datetime.date.today": "ambient timestamps are nondeterministic",
    "uuid.uuid1": "uuid1 mixes in clock and host state",
    "uuid.uuid4": "uuid4 draws from the OS entropy pool",
    "os.urandom": "OS entropy is not replayable",
}

#: Whole namespaces whose every call is banned.
_BANNED_PREFIXES = ("secrets.",)

#: numpy.random attributes that are fine to *call* (modern seeded API).
_NUMPY_OK = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: Constructors that are fine only when given an explicit seed.
_SEED_REQUIRED = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}


@register
class DeterminismRule(Rule):
    """Ban ambient clocks and unseeded random sources."""

    code = "RPR001"
    name = "determinism"
    rationale = (
        "Golden figure regressions require bit-identical runs; clocks "
        "and unseeded RNGs must not leak into simulated statistics — "
        "seeds arrive as parameters."
    )

    def check_module(
        self, module: ModuleContext
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_origin(node.func, module.imports)
            if origin is None:
                continue
            message = self._verdict(origin, node)
            if message is not None:
                yield module.finding(node, self.code, message)

    def _verdict(self, origin: str, node: ast.Call) -> str | None:
        """Why this resolved call is banned (None = allowed)."""
        if origin in _BANNED_CALLS:
            return (
                f"call to {origin}() is banned in src/repro: "
                f"{_BANNED_CALLS[origin]}; take the value as a "
                "parameter instead"
            )
        for prefix in _BANNED_PREFIXES:
            if origin.startswith(prefix):
                return (
                    f"call to {origin}() is banned in src/repro: "
                    "secrets are nondeterministic by design"
                )
        if origin in _SEED_REQUIRED:
            if not node.args and not node.keywords:
                return (
                    f"{origin}() without an explicit seed breaks "
                    "bit-identical replay; thread the seed in as a "
                    "parameter"
                )
            return None
        if origin.startswith("numpy.random."):
            tail = origin.rsplit(".", 1)[1]
            if tail not in _NUMPY_OK:
                return (
                    f"legacy global-state API {origin}() is banned; "
                    "use a seeded numpy.random.default_rng(seed) "
                    "Generator"
                )
        elif origin.startswith("random."):
            return (
                f"module-level {origin}() uses the shared global RNG; "
                "use a seeded random.Random(seed) instance or a "
                "numpy Generator"
            )
        return None
