"""RPR004 — obs-event registry: publishes and taxonomy must agree.

A cross-module pass over the whole tree.  The event taxonomy is
harvested from any module defining event classes in the
``repro.obs.events`` idiom — a class with a ``name: ClassVar[str] =
"layer.action"`` annotation.  The rule then checks both directions:

* every ``bus.publish(Ctor(...))`` call site must construct a class
  that is registered in the taxonomy, and every event-name *string*
  handed to ``subscribe``/``collect`` kind filters must name a
  registered event — a typo'd ``"cache.hti"`` filter would silently
  match nothing;
* every registered event class must be constructed somewhere in the
  tree — an event nobody can ever observe is dead taxonomy and usually
  means an instrumentation hook was dropped in a refactor.

When the linted path set contains no taxonomy module at all (e.g. a
single-package run like ``repro lint src/repro/cache``), the rule
stays silent rather than reporting everything unknown; run it over the
full tree to get both directions.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from dataclasses import dataclass

from repro.lint.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    terminal_name,
)
from repro.lint.rules.base import Rule, register

#: The base event class registers itself under this name; skip it.
_BASE_EVENT_NAME = "event"

#: Methods whose string arguments are event-name kind filters.
_KIND_FILTER_METHODS = {"subscribe", "collect"}


@dataclass(frozen=True)
class _EventDef:
    """One registered event class (harvested from a taxonomy module)."""

    event_name: str
    class_name: str
    rel_path: str
    line: int
    column: int


def _classvar_event_name(node: ast.ClassDef) -> str | None:
    """The ``name: ClassVar[str] = "..."`` value of an event class."""
    for statement in node.body:
        if (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and statement.target.id == "name"
            and isinstance(statement.value, ast.Constant)
            and isinstance(statement.value.value, str)
            and "ClassVar" in ast.dump(statement.annotation)
        ):
            return statement.value.value
    return None


def _string_leaves(node: ast.AST) -> Iterable[ast.Constant]:
    """String constants inside a literal (tuple/list/set aware)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        yield node
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            yield from _string_leaves(element)


@register
class EventRegistryRule(Rule):
    """Cross-check publish/subscribe sites against the event taxonomy."""

    code = "RPR004"
    name = "obs-event-registry"
    rationale = (
        "A publish of an unregistered event or a subscription to a "
        "typo'd name silently drops telemetry; an event nobody "
        "publishes is dead taxonomy."
    )

    def __init__(self) -> None:
        self._defs: list[_EventDef] = []
        self._published: list[tuple[str, Finding]] = []
        self._kind_strings: list[tuple[str, Finding]] = []
        self._called_names: set[str] = set()

    def check_module(
        self, module: ModuleContext
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                event_name = _classvar_event_name(node)
                if (
                    event_name is not None
                    and event_name != _BASE_EVENT_NAME
                    # Taxonomy names are dotted ``layer.action``;
                    # other ClassVar[str] ``name`` fields (e.g. a
                    # lint rule's label) are not event classes.
                    and "." in event_name
                ):
                    self._defs.append(
                        _EventDef(
                            event_name=event_name,
                            class_name=node.name,
                            rel_path=module.rel_path,
                            line=node.lineno,
                            column=node.col_offset + 1,
                        )
                    )
            elif isinstance(node, ast.Call):
                self._harvest_call(module, node)
        return ()

    def _harvest_call(
        self, module: ModuleContext, node: ast.Call
    ) -> None:
        callee = terminal_name(node.func)
        if callee is not None:
            self._called_names.add(callee)
        if callee == "publish" and isinstance(node.func, ast.Attribute):
            for argument in node.args[:1]:
                if isinstance(argument, ast.Call):
                    ctor = terminal_name(argument.func)
                    if ctor is not None and ctor[:1].isupper():
                        self._published.append(
                            (
                                ctor,
                                module.finding(
                                    argument,
                                    self.code,
                                    f"publishes {ctor}(...), which is "
                                    "not registered in the "
                                    "repro.obs.events taxonomy",
                                ),
                            )
                        )
        if (
            callee in _KIND_FILTER_METHODS
            and isinstance(node.func, ast.Attribute)
        ):
            candidates = list(node.args)
            candidates += [
                keyword.value
                for keyword in node.keywords
                if keyword.arg == "kinds"
            ]
            for candidate in candidates:
                for leaf in _string_leaves(candidate):
                    self._kind_strings.append(
                        (
                            leaf.value,
                            module.finding(
                                leaf,
                                self.code,
                                f"event-name filter {leaf.value!r} "
                                "is not in the repro.obs.events "
                                "taxonomy",
                            ),
                        )
                    )

    def finish(self, project: ProjectContext) -> Iterable[Finding]:
        if not self._defs:
            return
        class_names = {definition.class_name for definition in self._defs}
        event_names = {definition.event_name for definition in self._defs}
        for ctor, finding in self._published:
            if ctor not in class_names:
                yield finding
        for value, finding in self._kind_strings:
            if value not in event_names:
                yield finding
        for definition in self._defs:
            if definition.class_name not in self._called_names:
                yield Finding(
                    path=definition.rel_path,
                    line=definition.line,
                    column=definition.column,
                    code=self.code,
                    message=(
                        f"event {definition.event_name!r} "
                        f"({definition.class_name}) is registered but "
                        "never published anywhere in the linted tree"
                    ),
                )
