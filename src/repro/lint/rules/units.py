"""RPR006 — unit naming: time-valued names carry a ``_seconds`` suffix.

The whole codebase accounts time in seconds (``locate_seconds``,
``penalty_seconds``, ``request_timeout_seconds``, ...) and the phase
partition of :class:`~repro.obs.events.BatchCompleted` only reconciles
because every contributor is in the same unit.  A parameter named
bare ``timeout`` or ``delay_ms`` re-introduces the ambiguity that
convention removed, so public signatures and class attributes must not
use suffixless time names or sub-second unit suffixes.

Hour-scale workload knobs (``horizon_hours``, ``rate_per_hour``) are
exempt: the paper specifies arrival rates per hour, the suffix is
explicit, and the conversion happens exactly once at the workload
boundary.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import Finding, ModuleContext
from repro.lint.rules.base import Rule, register

#: Suffixless names that are time quantities with no unit.
_BARE_TIME_NAMES = {
    "timeout",
    "delay",
    "interval",
    "duration",
    "deadline",
    "latency",
    "wait",
    "backoff",
    "elapsed",
}

#: Non-second unit suffixes the repo bans in public signatures.
_BANNED_SUFFIXES = (
    "_ms",
    "_msec",
    "_msecs",
    "_millis",
    "_milliseconds",
    "_micros",
    "_usec",
    "_usecs",
    "_microseconds",
    "_ns",
    "_nanos",
    "_nanoseconds",
    "_mins",
    "_minutes",
    "_hrs",
)


def _bad_name(name: str) -> str | None:
    """Why a name violates the unit convention (None = fine)."""
    if name.startswith("_"):
        return None
    if name in _BARE_TIME_NAMES:
        return (
            f"time-valued name {name!r} has no unit; call it "
            f"{name}_seconds"
        )
    for suffix in _BANNED_SUFFIXES:
        if name.endswith(suffix):
            return (
                f"name {name!r} uses a non-second unit suffix; the "
                "repo accounts time in seconds — convert at the "
                "boundary and call it ..._seconds"
            )
    return None


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef):
    """All named parameters of a function def."""
    arguments = node.args
    params = [
        *arguments.posonlyargs,
        *arguments.args,
        *arguments.kwonlyargs,
    ]
    if arguments.vararg is not None:
        params.append(arguments.vararg)
    if arguments.kwarg is not None:
        params.append(arguments.kwarg)
    return params


@register
class UnitNamingRule(Rule):
    """Enforce ``_seconds`` suffixes on public time-valued names."""

    code = "RPR006"
    name = "unit-naming"
    rationale = (
        "The phase partition reconciles only because every time "
        "quantity is in seconds; bare 'timeout' or '_ms' names "
        "re-introduce unit ambiguity at the API surface."
    )

    def check_module(
        self, module: ModuleContext
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if node.name.startswith("_"):
                    continue
                for param in _function_params(node):
                    if param.arg in ("self", "cls"):
                        continue
                    message = _bad_name(param.arg)
                    if message is not None:
                        yield module.finding(
                            param,
                            self.code,
                            f"parameter of {node.name}(): {message}",
                        )
            elif isinstance(node, ast.ClassDef):
                if node.name.startswith("_"):
                    continue
                yield from self._check_class_attributes(module, node)

    def _check_class_attributes(
        self, module: ModuleContext, node: ast.ClassDef
    ) -> Iterable[Finding]:
        for statement in node.body:
            target: ast.expr | None = None
            if isinstance(statement, ast.AnnAssign):
                target = statement.target
            elif isinstance(statement, ast.Assign):
                target = (
                    statement.targets[0]
                    if len(statement.targets) == 1
                    else None
                )
            if not isinstance(target, ast.Name):
                continue
            message = _bad_name(target.id)
            if message is not None:
                yield module.finding(
                    statement,
                    self.code,
                    f"attribute of {node.name}: {message}",
                )
