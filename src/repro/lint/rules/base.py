"""The pluggable rule protocol and registry of ``repro.lint``.

A rule is a class with a stable ``code`` (``RPR0xx``), a short
``name``, and a ``rationale`` explaining *why* the invariant matters
to this reproduction.  Per-module rules implement
:meth:`Rule.check_module`; cross-module rules additionally implement
:meth:`Rule.finish`, which runs once after every module has been
visited and may consult state accumulated during the per-module pass.

Rules register themselves with the :func:`register` decorator; the
engine instantiates one fresh instance of every registered rule per
run, so accumulated cross-module state never leaks between runs.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import ClassVar

from repro.exceptions import LintError
from repro.lint.core import Finding, ModuleContext, ProjectContext


class Rule:
    """Base class for lint rules (subclass and :func:`register`)."""

    #: Stable machine code, ``RPR0xx``.
    code: ClassVar[str] = ""
    #: Short kebab-case label for catalogs and reports.
    name: ClassVar[str] = ""
    #: Why this invariant matters to the reproduction.
    rationale: ClassVar[str] = ""

    def check_module(
        self, module: ModuleContext
    ) -> Iterable[Finding]:
        """Per-module pass; yield findings for this module."""
        return ()

    def finish(self, project: ProjectContext) -> Iterable[Finding]:
        """Cross-module pass, after every module was visited."""
        return ()


#: All registered rule classes by code.
REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a rule to the registry (codes are unique)."""
    if not cls.code or not cls.name:
        raise LintError(f"rule {cls.__name__} must define code and name")
    existing = REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        raise LintError(
            f"duplicate rule code {cls.code}: "
            f"{existing.__name__} and {cls.__name__}"
        )
    REGISTRY[cls.code] = cls
    return cls


def default_rules() -> list[Rule]:
    """One fresh instance of every registered rule, in code order."""
    return [REGISTRY[code]() for code in sorted(REGISTRY)]


def rule_catalog() -> list[dict[str, str]]:
    """The registry as JSON-safe records (for reports and docs)."""
    return [
        {
            "code": code,
            "name": REGISTRY[code].name,
            "rationale": REGISTRY[code].rationale,
        }
        for code in sorted(REGISTRY)
    ]
