"""RPR002 — float discipline: no ``==``/``!=`` between float values.

The locate-time model and the schedulers accumulate IEEE-754 sums
whose low bits depend on association order; an exact equality against
such a value encodes an accident of evaluation order, not a property
of the schedule.  Compare with a tolerance (``math.isclose``) or —
better — compare the *integer counts* the float was derived from.

The rule is heuristic (a single-pass AST walk has no type inference):
an operand is considered float-valued when it is a float literal, a
``float(...)`` conversion, or a name carrying one of the repo's
float-typed suffixes (``_seconds``, ``_ratio``, ``_fraction``,
``_probability``).  Comparisons against an exact-zero literal or
``math.inf``/``math.nan`` are exempt: zero and infinity are exact in
IEEE-754 and are used as deliberate sentinels (e.g. "jitter disabled",
"timeout disabled").  ``== pytest.approx(...)`` is exempt too — that
*is* the tolerance comparison the rule asks for.
"""

from __future__ import annotations

import ast
import math
from collections.abc import Iterable

from repro.lint.core import (
    Finding,
    ModuleContext,
    resolve_origin,
    terminal_name,
)
from repro.lint.rules.base import Rule, register

#: Name suffixes the repo reserves for float-typed quantities.
_FLOAT_SUFFIXES = ("_seconds", "_ratio", "_fraction", "_probability")

#: Resolved names that are exact float sentinels (comparison-safe).
_EXACT_SENTINELS = {"math.inf", "math.nan"}

#: Calls that already perform a tolerance comparison under ``==``.
_TOLERANT_CALLS = {"pytest.approx"}


def _is_zero_or_inf_literal(node: ast.AST) -> bool:
    """Exact-zero / infinity literals are IEEE-exact sentinels."""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        value = node.value
        return value == 0.0 or math.isinf(value) or math.isnan(value)
    return False


class _FloatVerdict:
    """Classify one comparison operand."""

    def __init__(self, module: ModuleContext, node: ast.AST) -> None:
        inner = node
        if isinstance(inner, ast.UnaryOp) and isinstance(
            inner.op, (ast.USub, ast.UAdd)
        ):
            inner = inner.operand
        self.exempt = _is_zero_or_inf_literal(node) or (
            resolve_origin(inner, module.imports) in _EXACT_SENTINELS
        )
        if isinstance(inner, ast.Call):
            self.exempt = self.exempt or (
                resolve_origin(inner.func, module.imports)
                in _TOLERANT_CALLS
            )
        self.suspicious = False
        if self.exempt:
            return
        if isinstance(inner, ast.Constant) and isinstance(
            inner.value, float
        ):
            self.suspicious = True
        elif isinstance(inner, ast.Call) and (
            isinstance(inner.func, ast.Name)
            and inner.func.id == "float"
        ):
            self.suspicious = True
        else:
            name = terminal_name(inner)
            if name is not None and name.endswith(_FLOAT_SUFFIXES):
                self.suspicious = True


@register
class FloatDisciplineRule(Rule):
    """Flag exact equality between float-typed expressions."""

    code = "RPR002"
    name = "float-discipline"
    rationale = (
        "Exact == on accumulated floats encodes evaluation-order "
        "accidents; use math.isclose or compare the integer counts "
        "the float came from."
    )

    def check_module(
        self, module: ModuleContext
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left = _FloatVerdict(module, operands[index])
                right = _FloatVerdict(module, operands[index + 1])
                if left.exempt or right.exempt:
                    continue
                if left.suspicious or right.suspicious:
                    yield module.finding(
                        node,
                        self.code,
                        "exact ==/!= between float-typed "
                        "expressions; use math.isclose(...) or "
                        "compare integer counts",
                    )
                    break
