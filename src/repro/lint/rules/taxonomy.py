"""RPR003 — exception taxonomy: no swallowed faults, no ad-hoc raises.

The resilience layer's contract (PR 4) is that a
:class:`~repro.exceptions.DriveFault` is *always* either retried by the
machinery built for it or surfaced — never silently swallowed.  A bare
``except:`` or a broad ``except Exception`` handler that does not
re-raise can eat a fault mid-batch and corrupt the completion
accounting, so both are banned inside ``src/repro``.

Raises must speak the repo's language: new exceptions come from
:mod:`repro.exceptions` (or are local subclasses of them), with a
small sanctioned set of built-ins for caller-contract errors
(``ValueError`` for bad arguments, ``KeyError`` for missing lookups,
``NotImplementedError``, ``SystemExit`` for CLIs, ...).  Raising
``Exception``/``RuntimeError``/``OSError`` directly is flagged — those
are exactly the types a caller cannot catch precisely.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.core import Finding, ModuleContext, terminal_name
from repro.lint.rules.base import Rule, register

#: Handler types broad enough to swallow a DriveFault.
_BROAD_HANDLERS = {
    "Exception",
    "BaseException",
    "ReproError",
    "DriveError",
    "DriveFault",
}

#: Built-ins sanctioned for caller-contract errors.
_ALLOWED_BUILTINS = {
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "AttributeError",
    "NotImplementedError",
    "StopIteration",
    "SystemExit",
    "KeyboardInterrupt",
    "OverflowError",
    "ZeroDivisionError",
    "ArithmeticError",
    "AssertionError",
    "ImportError",
    "ModuleNotFoundError",
}

#: Fallback taxonomy when repro.exceptions cannot be imported (e.g.
#: when linting a detached fixture tree).
_FALLBACK_TAXONOMY = {
    "ReproError",
    "GeometryError",
    "SegmentOutOfRange",
    "SchedulingError",
    "EmptyBatchError",
    "BatchTooLarge",
    "MetricsError",
    "NoSamplesError",
    "CacheError",
    "DriveError",
    "DriveFault",
    "LocateFault",
    "ReadFault",
    "DriveReset",
    "NoTapeMounted",
    "LibraryError",
    "UnknownTape",
    "ExperimentError",
    "TraceError",
    "LintError",
}


def _taxonomy_names() -> frozenset[str]:
    """Exception classes exported by :mod:`repro.exceptions`."""
    try:
        from repro import exceptions as taxonomy
    except ImportError:  # pragma: no cover - detached checkout
        return frozenset(_FALLBACK_TAXONOMY)
    names = {
        name
        for name in dir(taxonomy)
        if isinstance(getattr(taxonomy, name), type)
        and issubclass(getattr(taxonomy, name), BaseException)
    }
    return frozenset(names | _FALLBACK_TAXONOMY)


def _local_allowed(tree: ast.Module, allowed: set[str]) -> set[str]:
    """Locally defined classes whose base chain reaches an allowed type."""
    class_bases: dict[str, list[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases = [
                base_name
                for base in node.bases
                if (base_name := terminal_name(base)) is not None
            ]
            class_bases[node.name] = bases
    local: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, bases in class_bases.items():
            if name in local:
                continue
            if any(base in allowed or base in local for base in bases):
                local.add(name)
                changed = True
    return local


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body contain any ``raise``?"""
    return any(
        isinstance(node, ast.Raise)
        for child in handler.body
        for node in ast.walk(child)
    )


def _handler_type_names(handler: ast.ExceptHandler) -> list[str]:
    """Terminal names of the caught type (tuple-aware)."""
    node = handler.type
    if node is None:
        return []
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for element in elements:
        name = terminal_name(element)
        if name is not None:
            names.append(name)
    return names


@register
class ExceptionTaxonomyRule(Rule):
    """Ban fault-swallowing handlers and off-taxonomy raises."""

    code = "RPR003"
    name = "exception-taxonomy"
    rationale = (
        "DriveFaults must reach the retry machinery or the caller; "
        "broad silent handlers corrupt completion accounting, and "
        "ad-hoc exception types evade the taxonomy callers catch."
    )

    def __init__(self) -> None:
        self._taxonomy = _taxonomy_names()

    def check_module(
        self, module: ModuleContext
    ) -> Iterable[Finding]:
        allowed = set(self._taxonomy) | _ALLOWED_BUILTINS
        allowed |= _local_allowed(module.tree, allowed)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(module, node, allowed)

    def _check_handler(
        self, module: ModuleContext, handler: ast.ExceptHandler
    ) -> Iterable[Finding]:
        if handler.type is None:
            yield module.finding(
                handler,
                self.code,
                "bare 'except:' swallows everything including "
                "DriveFault and KeyboardInterrupt; name the "
                "exception types you mean",
            )
            return
        broad = [
            name
            for name in _handler_type_names(handler)
            if name in _BROAD_HANDLERS
        ]
        if broad and not _handler_reraises(handler):
            yield module.finding(
                handler,
                self.code,
                f"'except {broad[0]}' can swallow DriveFault "
                "without re-raising; narrow the type or re-raise "
                "so faults reach the retry machinery",
            )

    def _check_raise(
        self,
        module: ModuleContext,
        node: ast.Raise,
        allowed: set[str],
    ) -> Iterable[Finding]:
        exc = node.exc
        if exc is None:
            return
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = terminal_name(exc)
        if name is None or not name[:1].isupper():
            # Re-raising a bound variable or a computed class —
            # out of static reach; the handler checks cover these.
            return
        if name not in allowed:
            yield module.finding(
                node,
                self.code,
                f"raise of {name} is outside the repro.exceptions "
                "taxonomy; raise a ReproError subclass (or a "
                "sanctioned builtin like ValueError) so callers "
                "can catch precisely",
            )
