"""The rule set of :mod:`repro.lint`.

Importing this package registers every built-in rule; downstream code
usually just calls :func:`default_rules` for one fresh instance of
each.  See ``docs/STATIC_ANALYSIS.md`` for the rule catalog with
rationale and suppression syntax.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (import-for-registration)
    api_integrity,
    determinism,
    events_registry,
    floats,
    taxonomy,
    units,
)

# The cross-module flow analyses (RPR007-RPR010) live in their own
# package but register into the same rule registry on import.
import repro.lint.flow  # noqa: F401,E402  (import-for-registration)

from repro.lint.rules.base import (  # noqa: E402
    REGISTRY,
    Rule,
    default_rules,
    register,
    rule_catalog,
)

__all__ = [
    "REGISTRY",
    "Rule",
    "default_rules",
    "register",
    "rule_catalog",
]
