"""``repro lint`` — the CLI of the static-analysis gate.

Examples::

    python -m repro lint src/repro
    python -m repro lint src/repro --json > lint-report.json
    python -m repro lint src/repro --baseline tools/lint_baseline.json
    python -m repro lint src/repro --flow --graph-dump call-graph.json
    python -m repro lint --changed
    python -m repro lint --list-rules

Exit status: 0 when clean (or clean modulo the baseline), 1 when any
new finding exists, 2 on usage or input errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.exceptions import LintError
from repro.lint.baseline import (
    diff_baseline,
    load_baseline,
    save_baseline,
)
from repro.lint.changed import changed_rel_paths
from repro.lint.engine import run_lint
from repro.lint.flow import flow_rules, project_graph
from repro.lint.report import render_json, render_text
from repro.lint.rules import rule_catalog


def _default_paths() -> list[Path]:
    """Lint the installed ``repro`` package when no path is given."""
    import repro

    return [Path(repro.__file__).parent]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Repo-aware static analysis: determinism, float "
            "discipline, exception taxonomy, obs-event registry, "
            "API/shim integrity, unit naming (RPR001-RPR006) plus "
            "cross-module flow analyses — RNG lineage/sharing, "
            "nondeterminism taint, phase partition (RPR007-RPR010)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=(
            "files or directories to lint (default: the installed "
            "repro package)"
        ),
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            "compare findings against a committed baseline; only "
            "new findings fail the run"
        ),
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=(
            "rewrite --baseline FILE from the current findings "
            "(the ratchet: run it after fixing, never to admit "
            "new findings)"
        ),
    )
    parser.add_argument(
        "--strict-baseline", action="store_true",
        help=(
            "also fail when the baseline is stale (live findings "
            "dropped below it) — keeps the committed ratchet tight"
        ),
    )
    parser.add_argument(
        "--flow", action="store_true",
        help=(
            "run only the cross-module flow rules (RPR007-RPR010): "
            "RNG lineage/sharing, nondeterminism taint, phase "
            "partition"
        ),
    )
    parser.add_argument(
        "--graph-dump", default=None, metavar="FILE",
        help=(
            "also write the project call/import graph as JSON to "
            "FILE (CI publishes this artifact)"
        ),
    )
    parser.add_argument(
        "--changed", action="store_true",
        help=(
            "report only findings in files git says differ from "
            "HEAD; the whole tree is still analyzed so cross-module "
            "rules stay sound, and the run falls back to full-tree "
            "reporting when the changed set cannot be determined"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """``repro lint`` entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in rule_catalog():
            print(f"{rule['code']} {rule['name']}: {rule['rationale']}")
        return 0
    if args.update_baseline and args.baseline is None:
        parser.error("--update-baseline requires --baseline FILE")
    paths = (
        [Path(p) for p in args.paths]
        if args.paths
        else _default_paths()
    )
    rules = flow_rules() if args.flow else None
    report_rel_paths = None
    if args.changed:
        report_rel_paths = changed_rel_paths(Path.cwd())
        if report_rel_paths is None:
            print(
                "repro lint: --changed could not resolve a git "
                "diff; reporting on the full tree",
                file=sys.stderr,
            )
        elif not report_rel_paths and args.graph_dump is None:
            print("repro lint: --changed found no modified Python files")
            return 0
    try:
        run = run_lint(
            paths, rules=rules, report_rel_paths=report_rel_paths
        )
        if args.graph_dump is not None and run.project is not None:
            record = project_graph(run.project).to_record()
            Path(args.graph_dump).write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        if args.update_baseline:
            save_baseline(Path(args.baseline), run.findings)
            print(
                f"baseline written to {args.baseline} "
                f"({len(run.findings)} finding(s))"
            )
            return 0
        diff = None
        if args.baseline is not None:
            diff = diff_baseline(
                run.findings, load_baseline(Path(args.baseline))
            )
    except LintError as error:
        print(f"repro lint: error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(render_json(run, diff))
    else:
        print(render_text(run, diff))
    failed = bool(run.findings) if diff is None else not diff.clean
    if diff is not None and args.strict_baseline and diff.stale:
        failed = True
    return 1 if failed else 0
