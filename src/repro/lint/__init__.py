"""``repro.lint`` — repo-aware static analysis for the reproduction.

A pluggable AST-based rule engine that mechanically enforces the
conventions the reproduction's correctness rests on: determinism
(RPR001), float discipline (RPR002), the exception taxonomy (RPR003),
the obs-event registry (RPR004), API/shim integrity (RPR005), and
second-based unit naming (RPR006) — plus the cross-module flow
analyses of :mod:`repro.lint.flow`: RNG lineage (RPR007), RNG
sharing across pool/actor boundaries (RPR008), nondeterminism taint
(RPR009), and the phase partition (RPR010).  Run it as ``python -m
repro lint src/repro``; see ``docs/STATIC_ANALYSIS.md`` for the
catalog, suppression syntax, and the baseline-ratchet workflow.
"""

from __future__ import annotations

from repro.lint.baseline import (
    BaselineDiff,
    diff_baseline,
    finding_counts,
    load_baseline,
    save_baseline,
)
from repro.lint.changed import changed_rel_paths
from repro.lint.core import Finding, ModuleContext, ProjectContext
from repro.lint.engine import LintRun, run_lint
from repro.lint.flow import (
    FLOW_CODES,
    ProjectGraph,
    build_graph,
    flow_rules,
    project_graph,
)
from repro.lint.report import render_json, render_text
from repro.lint.rules import (
    REGISTRY,
    Rule,
    default_rules,
    register,
    rule_catalog,
)

__all__ = [
    "BaselineDiff",
    "FLOW_CODES",
    "Finding",
    "LintRun",
    "ModuleContext",
    "ProjectContext",
    "ProjectGraph",
    "REGISTRY",
    "Rule",
    "build_graph",
    "changed_rel_paths",
    "default_rules",
    "diff_baseline",
    "finding_counts",
    "flow_rules",
    "load_baseline",
    "project_graph",
    "register",
    "render_json",
    "render_text",
    "rule_catalog",
    "run_lint",
    "save_baseline",
]
