"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the common cases.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(ReproError):
    """A tape-geometry constraint was violated (bad track/section layout)."""


class SegmentOutOfRange(GeometryError):
    """An absolute segment number fell outside the tape."""

    def __init__(self, segment: int, total_segments: int) -> None:
        self.segment = segment
        self.total_segments = total_segments
        super().__init__(
            f"segment {segment} out of range for tape with "
            f"{total_segments} segments"
        )


class SchedulingError(ReproError):
    """A scheduler received invalid input or failed to produce a schedule."""


class EmptyBatchError(SchedulingError):
    """A scheduler was asked to order an empty request batch."""


class BatchTooLarge(SchedulingError):
    """A request batch exceeds the algorithm's practical size limit."""

    def __init__(self, size: int, limit: int, algorithm: str) -> None:
        self.size = size
        self.limit = limit
        self.algorithm = algorithm
        super().__init__(
            f"{algorithm} limited to {limit} requests, got {size}"
        )


class MetricsError(ReproError):
    """Invalid use of the accounting/metrics layer."""


class NoSamplesError(MetricsError):
    """An aggregate statistic was requested from an empty sample set."""


class CacheError(ReproError):
    """Invalid operation on the disk staging cache tier."""


class DriveError(ReproError):
    """Invalid operation on a (simulated) tape drive."""


class NoTapeMounted(DriveError):
    """An I/O operation was issued while no tape was mounted."""


class LibraryError(ReproError):
    """Invalid operation on the robotic tape library."""


class UnknownTape(LibraryError):
    """A mount request named a cartridge that is not in the library."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class TraceError(ReproError):
    """A telemetry trace was malformed or inconsistent."""
