"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the common cases.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(ReproError):
    """A tape-geometry constraint was violated (bad track/section layout)."""


class SegmentOutOfRange(GeometryError):
    """An absolute segment number fell outside the tape."""

    def __init__(self, segment: int, total_segments: int) -> None:
        self.segment = segment
        self.total_segments = total_segments
        super().__init__(
            f"segment {segment} out of range for tape with "
            f"{total_segments} segments"
        )


class SchedulingError(ReproError):
    """A scheduler received invalid input or failed to produce a schedule."""


class EmptyBatchError(SchedulingError):
    """A scheduler was asked to order an empty request batch."""


class BatchTooLarge(SchedulingError):
    """A request batch exceeds the algorithm's practical size limit."""

    def __init__(self, size: int, limit: int, algorithm: str) -> None:
        self.size = size
        self.limit = limit
        self.algorithm = algorithm
        super().__init__(
            f"{algorithm} limited to {limit} requests, got {size}"
        )


class MetricsError(ReproError):
    """Invalid use of the accounting/metrics layer."""


class NoSamplesError(MetricsError):
    """An aggregate statistic was requested from an empty sample set."""


class CacheError(ReproError):
    """Invalid operation on the disk staging cache tier."""


class DriveError(ReproError):
    """Invalid operation on a (simulated) tape drive."""


class DriveFault(DriveError):
    """A transient drive mechanism fault (the retryable kind).

    Raised by a fault-injecting drive when an operation fails the way a
    real DLT mechanism does — a missed position, a bad block checksum, a
    firmware reset.  Unlike the other :class:`DriveError` subclasses
    (which mean the *caller* misused the drive), a fault is a property
    of the mechanism: the same operation may succeed on retry, and the
    resilience layer (:mod:`repro.resilience`) is built to retry it.

    Attributes
    ----------
    segment:
        The segment the failed operation targeted.
    position:
        Head position when the fault hit.
    penalty_seconds:
        Mechanism time the failed attempt consumed (already charged to
        the drive clock when the exception is raised).
    """

    #: Taxonomy tag (``locate`` / ``read`` / ``reset``); set per subclass.
    kind = "fault"

    def __init__(
        self,
        message: str,
        *,
        segment: int,
        position: int,
        penalty_seconds: float = 0.0,
    ) -> None:
        self.segment = int(segment)
        self.position = int(position)
        self.penalty_seconds = float(penalty_seconds)
        super().__init__(
            f"{message} (segment {segment}, head at {position})"
        )


class LocateFault(DriveFault):
    """A locate hard-failed: the servo never settled on the target."""

    kind = "locate"


class ReadFault(DriveFault):
    """A read error: the transfer completed but the data was bad."""

    kind = "read"


class DriveReset(DriveFault):
    """The drive reset mid-operation and lost its position (head at 0)."""

    kind = "reset"


class NoTapeMounted(DriveError):
    """An I/O operation was issued while no tape was mounted."""


class LibraryError(ReproError):
    """Invalid operation on the robotic tape library."""


class UnknownTape(LibraryError):
    """A mount request named a cartridge that is not in the library."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class TraceError(ReproError):
    """A telemetry trace was malformed or inconsistent."""


class LintError(ReproError):
    """The static-analysis pass was misconfigured or hit a broken input."""


class ServeError(ReproError):
    """Invalid operation on the serving gateway."""


class UnknownTenant(ServeError):
    """A request named a tenant the gateway was not configured with."""


class AdmissionRejected(ServeError):
    """The gateway refused to serve a request (the typed shed).

    Never *raised* on the serving path — shedding a request must not
    abort the simulation — but recorded, one instance per shed
    request, on the gateway's shed ledger so every rejection carries a
    machine-readable reason.  Subclasses tag the cause the way
    :class:`DriveFault` tags mechanism faults.

    Attributes
    ----------
    tenant:
        The tenant whose request was shed.
    segment:
        The segment the request addressed.
    arrival_seconds:
        When the request arrived at the gateway.
    """

    #: Taxonomy tag (``overload`` / ``deadline``); set per subclass.
    kind = "rejected"

    def __init__(
        self,
        message: str,
        *,
        tenant: str,
        segment: int,
        arrival_seconds: float,
    ) -> None:
        self.tenant = tenant
        self.segment = int(segment)
        self.arrival_seconds = float(arrival_seconds)
        super().__init__(
            f"{message} (tenant {tenant!r}, segment {segment}, "
            f"arrived {arrival_seconds:.3f} s)"
        )


class TenantOverloaded(AdmissionRejected):
    """Shed at admission: the tenant hit its outstanding-request cap."""

    kind = "overload"


class DeadlineExpired(AdmissionRejected):
    """Shed at release: the request could no longer meet its deadline."""

    kind = "deadline"
