"""Derived per-trial seed streams for parallel experiments.

The seed repo drew every trial of a sweep from *one* sequential
``lrand48`` stream: trial ``t`` of length ``N`` saw whatever state the
stream reached after all earlier trials, so trials could only be
reproduced by replaying the whole sweep in order — which forces serial
execution.  This module replaces that coupling with *derived* streams:
each ``(workload_seed, length, trial)`` triple is hashed to its own
48-bit ``lrand48`` state, so any trial can be generated in isolation,
on any worker, in any order, and still produce exactly the batch it
would produce in a serial run.

The derivation is a SplitMix64 finalization over the triple (plus a
namespace tag separating experiments that share a workload seed),
truncated to the generator's 48-bit state space.  SplitMix64 is the
standard seed-sequence mixer (Steele, Lea & Flood, OOPSLA 2014): its
output function is a bijection of the 64-bit input, so distinct trial
triples map to well-spread states with no cheap collisions.

The legacy sequential stream remains available through
``seed_mode="legacy"`` on :class:`~repro.experiments.config.ExperimentConfig`
for bit-compatibility with pre-parallel results.
"""

from __future__ import annotations

from repro.workload.random_uniform import UniformWorkload

_GOLDEN_GAMMA = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1
_MASK48 = (1 << 48) - 1


def splitmix64(value: int) -> int:
    """One SplitMix64 finalization step (a 64-bit bijection)."""
    value = (value + _GOLDEN_GAMMA) & _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    value ^= value >> 31
    return value


def _mix(*components: int) -> int:
    """Fold integer components through chained SplitMix64 steps."""
    state = 0
    for component in components:
        state = splitmix64(state ^ (component & _MASK64))
    return state


def _namespace_tag(namespace: str) -> int:
    """A stable 64-bit tag for a namespace string (FNV-1a)."""
    tag = 0xCBF29CE484222325
    for byte in namespace.encode("utf-8"):
        tag = ((tag ^ byte) * 0x100000001B3) & _MASK64
    return tag


def trial_state(
    workload_seed: int,
    length: int,
    trial: int,
    namespace: str = "per-locate",
) -> int:
    """The 48-bit ``lrand48`` state for one experiment trial.

    Distinct ``(workload_seed, length, trial, namespace)`` tuples give
    independent-looking states; equal tuples always give the same
    state, which is what makes parallel execution bit-identical to
    serial execution under the per-trial seed mode.
    """
    return _mix(
        _namespace_tag(namespace), workload_seed, length, trial
    ) & _MASK48


def trial_workload(
    total_segments: int,
    workload_seed: int,
    length: int,
    trial: int,
    namespace: str = "per-locate",
) -> UniformWorkload:
    """A :class:`UniformWorkload` positioned at one trial's stream."""
    return UniformWorkload(
        total_segments=total_segments,
        seed=workload_seed,
        raw_state=trial_state(workload_seed, length, trial, namespace),
    )
