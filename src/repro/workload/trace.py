"""Request-trace recording and replay.

Synthetic workloads are fine for reproducing the paper, but a storage
system is ultimately judged on its own traces.  This module gives the
harness a trace format — JSON Lines, one timed request per line — with
a recorder, a loader, and converters from the synthetic generators, so

* a simulated run can be captured and replayed bit-for-bit later
  (regression baselines),
* real request logs can be converted to the same shape and pushed
  through the scheduling and online machinery.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.workload.arrivals import TimedRequest


def save_trace(
    requests: Iterable[TimedRequest], path: str | Path
) -> Path:
    """Write timed requests as JSON Lines; returns the path written."""
    path = Path(path)
    with path.open("w") as handle:
        for request in requests:
            handle.write(
                json.dumps(
                    {
                        "t": request.arrival_seconds,
                        "segment": request.segment,
                        "length": request.length,
                    }
                )
            )
            handle.write("\n")
    return path


def load_trace(path: str | Path) -> list[TimedRequest]:
    """Read a JSON Lines trace back into timed requests.

    Validates monotone non-negative arrival times and positive
    lengths; raises ``ValueError`` on malformed lines.
    """
    path = Path(path)
    requests: list[TimedRequest] = []
    previous = -1.0
    for number, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            request = TimedRequest(
                arrival_seconds=float(record["t"]),
                segment=int(record["segment"]),
                length=int(record.get("length", 1)),
            )
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise ValueError(
                f"{path}:{number}: malformed trace line: {error}"
            ) from error
        if request.arrival_seconds < 0:
            raise ValueError(
                f"{path}:{number}: negative arrival time"
            )
        if request.arrival_seconds < previous:
            raise ValueError(
                f"{path}:{number}: arrivals must be non-decreasing"
            )
        if request.length < 1:
            raise ValueError(f"{path}:{number}: length must be >= 1")
        previous = request.arrival_seconds
        requests.append(request)
    return requests


def trace_from_batch(
    segments: Sequence[int],
    arrival_seconds: float = 0.0,
    length: int = 1,
) -> list[TimedRequest]:
    """Wrap a static batch as a trace arriving at one instant."""
    return [
        TimedRequest(
            arrival_seconds=arrival_seconds,
            segment=int(segment),
            length=length,
        )
        for segment in segments
    ]
