"""Request arrival processes for the online batching system.

The paper's scenario is a storage system that aggregates random
requests into batches and schedules each batch (Section 5: "a tape is
scheduled repeatedly, executing retrievals in batches").  These
processes generate timed request streams for that simulation.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.constants import DEFAULT_TOTAL_SEGMENTS
from repro.workload.zipf import ZipfWorkload


@dataclass(frozen=True)
class TimedRequest:
    """One request with its arrival time."""

    arrival_seconds: float
    segment: int
    length: int = 1


@dataclass
class PoissonArrivals:
    """Poisson request arrivals with uniform segment targets.

    Parameters
    ----------
    rate_per_hour:
        Mean arrival rate.  For context: an unscheduled DLT4000 services
        ~50 random I/Os per hour, a well-scheduled one several hundred.
    total_segments:
        Segment range of the target cartridge.
    seed:
        Generator seed.
    """

    rate_per_hour: float
    total_segments: int = DEFAULT_TOTAL_SEGMENTS
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise ValueError("rate_per_hour must be positive")
        self._rng = np.random.default_rng(self.seed)

    def stream(self, horizon_seconds: float) -> Iterator[TimedRequest]:
        """Yield requests with arrival times below ``horizon_seconds``."""
        rate_per_second = self.rate_per_hour / 3600.0
        clock = 0.0
        while True:
            clock += float(self._rng.exponential(1.0 / rate_per_second))
            if clock >= horizon_seconds:
                return
            yield TimedRequest(
                arrival_seconds=clock,
                segment=int(self._rng.integers(0, self.total_segments)),
            )

    def batch(self, horizon_seconds: float) -> list[TimedRequest]:
        """Materialized :meth:`stream`."""
        return list(self.stream(horizon_seconds))


@dataclass
class ZipfArrivals:
    """Poisson arrival times with Zipf-skewed segment targets.

    The arrival process of :class:`PoissonArrivals` composed with the
    skewed segment draws of
    :class:`~repro.workload.zipf.ZipfWorkload` — the workload a disk
    staging cache in front of the tape cares about, since only repeated
    (skewed) accesses can hit.  Draws are *with* replacement: temporal
    locality is the point.
    """

    rate_per_hour: float
    workload: ZipfWorkload
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise ValueError("rate_per_hour must be positive")
        self._rng = np.random.default_rng(self.seed)

    def stream(self, horizon_seconds: float) -> Iterator[TimedRequest]:
        """Yield requests with arrival times below ``horizon_seconds``."""
        rate_per_second = self.rate_per_hour / 3600.0
        clock = 0.0
        while True:
            clock += float(self._rng.exponential(1.0 / rate_per_second))
            if clock >= horizon_seconds:
                return
            segment = int(
                self.workload.sample_batch(1, distinct=False)[0]
            )
            yield TimedRequest(arrival_seconds=clock, segment=segment)

    def batch(self, horizon_seconds: float) -> list[TimedRequest]:
        """Materialized :meth:`stream`."""
        return list(self.stream(horizon_seconds))
