"""Uniform random batch generation — the paper's workload.

The simulation experiments draw batches of *distinct* segment numbers
("generate a set of 1 + N segment numbers") uniformly from the segment
range of the characterized tape (0..622057), using ``lrand48``.  The
first draw of each batch plays the role of the initial head position
when the experiment uses random starting points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_TOTAL_SEGMENTS
from repro.workload.lrand48 import LRand48


@dataclass
class UniformWorkload:
    """Distinct uniform segment batches, ``lrand48``-driven.

    Parameters
    ----------
    total_segments:
        Segment range to draw from (the paper uses 622,058).
    seed:
        ``srand48`` seed; the experiment series repeats with five
        different seeds.
    raw_state:
        Optional full 48-bit generator state overriding the seeded
        state — how :mod:`repro.workload.seed_stream` positions a
        workload at one trial's derived stream.
    """

    total_segments: int = DEFAULT_TOTAL_SEGMENTS
    seed: int = 0
    raw_state: int | None = None

    def __post_init__(self) -> None:
        self._gen = LRand48(self.seed)
        if self.raw_state is not None:
            self._gen.set_state(self.raw_state)

    def sample_segment(self) -> int:
        """One uniform segment number."""
        return self._gen.below(self.total_segments)

    def sample_batch(self, size: int) -> np.ndarray:
        """``size`` distinct uniform segment numbers (a set, like the
        paper's), in draw order."""
        if size > self.total_segments:
            raise ValueError(
                f"cannot draw {size} distinct segments from "
                f"{self.total_segments}"
            )
        seen: set[int] = set()
        out = np.empty(size, dtype=np.int64)
        count = 0
        while count < size:
            segment = self._gen.below(self.total_segments)
            if segment not in seen:
                seen.add(segment)
                out[count] = segment
                count += 1
        return out

    def sample_batch_with_origin(
        self, size: int, origin_at_start: bool
    ) -> tuple[int, np.ndarray]:
        """One experiment trial's inputs: ``(origin, batch)``.

        Draws ``1 + size`` distinct segments as in Figure 3 of the
        paper; the first is the initial head position for random-start
        experiments, or is replaced by 0 when ``origin_at_start``.
        """
        draws = self.sample_batch(size + 1)
        origin = 0 if origin_at_start else int(draws[0])
        return origin, draws[1:]
