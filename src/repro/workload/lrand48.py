"""A faithful reimplementation of the POSIX 48-bit ``rand48`` family.

The paper's simulation experiments are driven by the Solaris
``lrand48()`` pseudo-random generator (Section 5, Figure 3).  This is
the standard 48-bit linear congruential generator

    X(n+1) = (a * X(n) + c) mod 2**48,
    a = 0x5DEECE66D, c = 0xB,

with ``lrand48()`` returning the high 31 bits and ``srand48(seed)``
initializing the state to ``(seed << 16) | 0x330E``.  Reimplementing it
(rather than substituting a modern generator) keeps the workload
machinery bit-compatible with how the paper's batches were drawn.
"""

from __future__ import annotations

_A = 0x5DEECE66D
_C = 0xB
_MASK = (1 << 48) - 1
_SRAND48_PAD = 0x330E


class LRand48:
    """The POSIX ``lrand48`` generator as a small object.

    >>> gen = LRand48(0)
    >>> gen.lrand48() >= 0
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.srand48(seed)

    def srand48(self, seed: int) -> None:
        """Reseed exactly like POSIX ``srand48``."""
        self._state = (((seed & 0xFFFFFFFF) << 16) | _SRAND48_PAD) & _MASK

    def get_state(self) -> int:
        """The full 48-bit generator state (for save/restore)."""
        return self._state

    def set_state(self, state: int) -> None:
        """Restore a state captured by :meth:`get_state`.

        Unlike :meth:`srand48` (which can only reach the 2**32 states
        with the ``0x330E`` pad), this addresses the whole 48-bit state
        space — which is what the derived per-trial seed streams of
        :mod:`repro.workload.seed_stream` use.
        """
        self._state = state & _MASK

    def _step(self) -> int:
        self._state = (_A * self._state + _C) & _MASK
        return self._state

    def lrand48(self) -> int:
        """Next non-negative long: uniform over ``[0, 2**31)``."""
        return self._step() >> 17

    def drand48(self) -> float:
        """Next double: uniform over ``[0.0, 1.0)``."""
        return self._step() / float(1 << 48)

    def mrand48(self) -> int:
        """Next signed long: uniform over ``[-2**31, 2**31)``."""
        value = self._step() >> 16
        return value - (1 << 32) if value >= (1 << 31) else value

    def below(self, bound: int) -> int:
        """``lrand48() % bound`` — how the paper maps draws to segments."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.lrand48() % bound
