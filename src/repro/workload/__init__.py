"""Workload generators: the paper's lrand48 uniform batches plus
arrival processes and a skew extension."""

from repro.workload.arrivals import (
    PoissonArrivals,
    TimedRequest,
    ZipfArrivals,
)
from repro.workload.lrand48 import LRand48
from repro.workload.random_uniform import UniformWorkload
from repro.workload.seed_stream import (
    splitmix64,
    trial_state,
    trial_workload,
)
from repro.workload.trace import (
    load_trace,
    save_trace,
    trace_from_batch,
)
from repro.workload.zipf import ZipfWorkload

__all__ = [
    "LRand48",
    "PoissonArrivals",
    "TimedRequest",
    "UniformWorkload",
    "ZipfArrivals",
    "ZipfWorkload",
    "load_trace",
    "save_trace",
    "splitmix64",
    "trace_from_batch",
    "trial_state",
    "trial_workload",
]
