"""Skewed (Zipf) workloads — an extension beyond the paper.

The paper evaluates uniformly random batches and notes its LOSS
recommendation holds "for up to 1536 *uniformly randomly distributed*
requests".  Real database workloads skew; this generator produces
Zipf-distributed batches over a seeded random placement of hot data, so
the ablation benchmarks can check how the schedulers' ranking shifts
when requests cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import DEFAULT_TOTAL_SEGMENTS


@dataclass
class ZipfWorkload:
    """Zipf-over-ranks batches mapped onto a placed hot set.

    Rank ``r`` (1-based) is drawn with probability proportional to
    ``r**-alpha`` over ``universe`` distinct hot segments.  Two
    placements of the hot set are supported:

    ``scattered``
        every hot segment lands at an independent uniform position —
        a hot set of unrelated objects;
    ``clustered``
        the hot set consists of contiguous runs of ``run_length``
        segments at random positions — a hot relation whose blocks are
        laid out sequentially on tape.  Clustered skew is what lets
        the schedulers exploit read-ahead within sections.
    """

    total_segments: int = DEFAULT_TOTAL_SEGMENTS
    alpha: float = 1.1
    universe: int = 10_000
    seed: int = 0
    placement: str = "scattered"
    run_length: int = 64
    _rng: np.random.Generator = field(init=False, repr=False)
    _placement: np.ndarray = field(init=False, repr=False)
    _cdf: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0 < self.universe <= self.total_segments:
            raise ValueError("universe must be in (0, total_segments]")
        if self.placement not in ("scattered", "clustered"):
            raise ValueError(
                f"unknown placement {self.placement!r}"
            )
        if self.run_length < 1:
            raise ValueError("run_length must be >= 1")
        self._rng = np.random.default_rng(self.seed)
        self._placement = self._place_hot_set()
        weights = np.arange(1, self.universe + 1, dtype=np.float64) ** (
            -self.alpha
        )
        self._cdf = np.cumsum(weights / weights.sum())

    def _place_hot_set(self) -> np.ndarray:
        if self.placement == "scattered":
            return self._rng.choice(
                self.total_segments, size=self.universe, replace=False
            ).astype(np.int64)
        # Clustered: contiguous runs at random (non-overlapping by
        # construction: starts drawn on a run_length grid).
        runs = -(-self.universe // self.run_length)
        grid = self.total_segments // self.run_length
        if runs > grid:
            raise ValueError(
                "universe too large for clustered placement"
            )
        starts = (
            self._rng.choice(grid, size=runs, replace=False).astype(
                np.int64
            )
            * self.run_length
        )
        segments = (
            starts[:, None] + np.arange(self.run_length, dtype=np.int64)
        ).reshape(-1)[: self.universe]
        # Interleave runs into the rank order so the hottest ranks are
        # spread over several runs (a hot relation is hot as a whole).
        return self._rng.permutation(segments)

    def sample_batch(self, size: int, distinct: bool = True) -> np.ndarray:
        """``size`` Zipf-skewed segment numbers."""
        if distinct and size > self.universe:
            raise ValueError(
                f"cannot draw {size} distinct segments from a universe "
                f"of {self.universe}"
            )
        chosen: list[int] = []
        seen: set[int] = set()
        while len(chosen) < size:
            rank = int(
                np.searchsorted(self._cdf, self._rng.random())
            )
            segment = int(self._placement[min(rank, self.universe - 1)])
            if distinct:
                if segment in seen:
                    continue
                seen.add(segment)
            chosen.append(segment)
        return np.asarray(chosen, dtype=np.int64)
