"""Figure 8 — percent error of estimated LOSS schedule times.

LOSS schedules are built and estimated with the cartridge's calibrated
locate-time model, then executed on the ground-truth drive.  The paper
reports errors "much less than 1 %" below 384 requests, growing to
about 5 % at the largest schedules — because dense schedules are
dominated by short locates near the track ends, the least accurate part
of the model.  Percent error is (estimate − measurement) / measurement.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.experiments.validation import (
    ValidationResult,
    run_validation,
)
from repro.geometry.generator import generate_tape
from repro.model.locate import LocateTimeModel


def run(
    config: ExperimentConfig | None = None,
    workers: int | None = 1,
) -> ValidationResult:
    """Validate model estimates against the ground-truth drive."""
    config = config or ExperimentConfig()
    tape = generate_tape(seed=config.tape_seed)
    return run_validation(
        schedule_model=LocateTimeModel(tape),
        true_geometry=tape,
        config=config,
        label="figure8",
        workers=workers,
    )


def report(result: ValidationResult) -> None:
    """Print per-size percent errors."""
    print_table(
        ["N", "mean % error", "std %"],
        result.rows(),
        title=(
            "Figure 8: percent error in estimated schedule execution "
            "times, LOSS (paper: <1% small, ~5% at 2048)"
        ),
    )


def main(
    config: ExperimentConfig | None = None,
    workers: int | None = 1,
) -> ValidationResult:
    """Run and report."""
    result = run(config, workers=workers)
    report(result)
    return result
