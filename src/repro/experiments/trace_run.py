"""Instrumented end-to-end run: record, verify, and export a trace.

``python -m repro trace`` services a Poisson stream on a fully
instrumented :class:`~repro.online.system.TertiaryStorageSystem` (the
whole pipeline shares one :class:`~repro.obs.bus.EventBus`), then
summarizes the recorded stream.  Two built-in cross-checks make this a
smoke test of the telemetry layer itself (``--smoke`` fails the process
when either breaks):

1. every batch span's phase durations — locate + transfer + rewind —
   partition the measured execution to 1e-6 s;
2. the mean response time computed *from the trace* equals the
   system's own ``ResponseStats.mean_seconds``.

With ``--trace-jsonl FILE`` the raw event stream is written as JSON
Lines (lossless; see :func:`repro.obs.trace.read_events_jsonl`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.geometry.generator import generate_tape
from repro.obs.bus import EventBus
from repro.obs.metrics import MetricsRegistry, bind_standard_metrics
from repro.obs.trace import (
    TraceRecorder,
    TraceSummary,
    response_stats_from_events,
    write_events_jsonl,
)
from repro.online.batch_queue import BatchPolicy
from repro.online.system import TertiaryStorageSystem
from repro.scheduling.base import get_scheduler
from repro.workload.arrivals import PoissonArrivals

#: Reconciliation tolerance for the phase-sum invariant (seconds).
PHASE_TOLERANCE_SECONDS = 1e-6

#: Simulated hours per scale (mirrors the cache-sim driver).
_HORIZON_HOURS = {"quick": 2.0, "full": 12.0, "paper": 48.0}


@dataclass(frozen=True)
class TraceRunResult:
    """The recorded trace plus its verification outcome."""

    summary: TraceSummary
    registry: MetricsRegistry
    system: TertiaryStorageSystem
    recorder: TraceRecorder
    worst_phase_error_seconds: float
    mean_matches: bool
    jsonl_path: str | None

    @property
    def phases_reconcile(self) -> bool:
        """Did every batch's phase sum match its execution time?"""
        return self.worst_phase_error_seconds <= PHASE_TOLERANCE_SECONDS

    @property
    def ok(self) -> bool:
        """Both smoke invariants hold."""
        return self.phases_reconcile and self.mean_matches

    def headers(self) -> list[str]:
        """Columns of :meth:`rows` (tabular result protocol)."""
        return ["metric", "value"]

    def rows(self) -> list[list]:
        """The trace summary plus the verification lines."""
        return [
            *self.summary.rows(),
            ["worst phase error (s)", self.worst_phase_error_seconds],
            ["phases reconcile", self.phases_reconcile],
            ["trace mean == stats mean", self.mean_matches],
        ]

    def to_dict(self) -> list[dict]:
        """Records for export."""
        return [dict(zip(self.headers(), row)) for row in self.rows()]


def run(
    config: ExperimentConfig | None = None,
    algorithm: str = "LOSS",
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    max_batch: int = 96,
    trace_jsonl: str | None = None,
) -> TraceRunResult:
    """Service an instrumented Poisson run and verify its trace."""
    config = config or ExperimentConfig()
    if horizon_hours is None:
        horizon_hours = _HORIZON_HOURS[config.scale]
    tape = generate_tape(seed=config.tape_seed)

    bus = EventBus()
    recorder = TraceRecorder(bus)
    registry = bind_standard_metrics(bus)
    system = TertiaryStorageSystem(
        geometry=tape,
        scheduler=get_scheduler(algorithm),
        policy=BatchPolicy(max_batch=max_batch),
        bus=bus,
    )
    requests = PoissonArrivals(
        rate_per_hour=rate_per_hour,
        total_segments=tape.total_segments,
        seed=config.workload_seed,
    ).batch(horizon_hours * 3600.0)
    stats = system.run(requests)

    spans = recorder.batch_spans()
    worst = max(
        (abs(span.phase_seconds - span.total_seconds) for span in spans),
        default=0.0,
    )
    trace_stats = response_stats_from_events(recorder.events)
    mean_matches = (
        trace_stats.count == stats.count
        # repro: noqa RPR002 -- the smoke contract IS bit-exactness:
        # the trace-derived mean must equal the stats mean to the
        # last bit, so a tolerance here would hide real drift
        and trace_stats.mean_seconds == stats.mean_seconds
    )
    if trace_jsonl is not None:
        write_events_jsonl(recorder.events, trace_jsonl)
    return TraceRunResult(
        summary=recorder.summary(),
        registry=registry,
        system=system,
        recorder=recorder,
        worst_phase_error_seconds=worst,
        mean_matches=mean_matches,
        jsonl_path=trace_jsonl,
    )


def report(result: TraceRunResult) -> None:
    """Print the trace summary and the verification lines."""
    print_table(
        ["metric", "value"],
        result.rows(),
        precision=3,
        title=(
            "Instrumented run: trace summary and telemetry "
            "cross-checks"
        ),
    )
    if result.jsonl_path is not None:
        print(f"trace written to {result.jsonl_path}")


def main(
    config: ExperimentConfig | None = None,
    algorithm: str = "LOSS",
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    max_batch: int = 96,
    trace_jsonl: str | None = None,
    smoke: bool = False,
) -> TraceRunResult:
    """Run and report; with ``smoke=True``, fail on broken invariants."""
    result = run(
        config,
        algorithm=algorithm,
        rate_per_hour=rate_per_hour,
        horizon_hours=horizon_hours,
        max_batch=max_batch,
        trace_jsonl=trace_jsonl,
    )
    report(result)
    if smoke and not result.ok:
        raise SystemExit(
            "trace smoke check failed: "
            f"worst phase error {result.worst_phase_error_seconds} s, "
            f"trace mean matches stats: {result.mean_matches}"
        )
    return result
