"""Multi-drive library experiment: arms × drives × policy × rate.

``python -m repro library-sim`` services the same Poisson request
stream — addressed uniformly to a shelf of cartridges — on a
:class:`~repro.library.MultiDriveSystem` at every point of an
(arms, drives, assignment policy, arrival rate) grid, reporting the
paper's response-time percentiles next to the quantities only a
multi-drive library has: per-drive utilization, robot-arm occupancy
(aggregate and busiest-arm), and exchanges per request.  The headline check is **zero lost requests** at every point
(a request neither completed nor surfaced as failed is a kernel bug,
not a statistic), and the expected shape is mean response time falling
strictly as drives are added at a fixed arrival rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.geometry.generator import generate_tape
from repro.library.cartridge import (
    Cartridge,
    DEFAULT_EXCHANGE_SECONDS,
)
from repro.library.policies import (
    get_arm_policy,
    get_assignment_policy,
    get_exchange_policy,
)
from repro.library.requests import poisson_library_stream
from repro.library.system import MultiDriveSystem
from repro.online.batch_queue import BatchPolicy
from repro.scheduling.base import get_scheduler

#: Drive-count grid when the caller does not pass one.
DEFAULT_DRIVES = (1, 2, 4)

#: Assignment-policy grid when the caller does not pass one.
DEFAULT_ASSIGNMENTS = ("affinity", "least-loaded")

#: Arm-count grid when the caller does not pass one.
DEFAULT_ARMS = (1, 2)

#: Cartridges on the shelf by default.
DEFAULT_CARTRIDGES = 8

#: Simulated hours per scale (mirrors the cache-sim/chaos drivers).
_HORIZON_HOURS = {"quick": 2.0, "full": 8.0, "paper": 24.0}


@dataclass(frozen=True)
class LibraryPoint:
    """One (drives, policy, rate) grid point's outcome."""

    drives: int
    arms: int
    cartridges: int
    assignment: str
    exchange: str
    rate_per_hour: float
    requests: int
    completed: int
    failed: int
    lost: int
    batches: int
    exchanges: int
    mean_response_seconds: float | None
    p50_response_seconds: float | None
    p99_response_seconds: float | None
    drive_utilization: float
    robot_occupancy: float
    max_arm_occupancy: float
    mean_mount_wait_seconds: float

    @property
    def exchanges_per_request(self) -> float:
        """Robot exchanges amortized over the serviced requests."""
        if self.completed == 0:
            return 0.0
        return self.exchanges / self.completed


@dataclass(frozen=True)
class LibrarySweepResult:
    """The sweep, in the tabular-result protocol."""

    label: str
    points: tuple[LibraryPoint, ...]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return [
            "drives", "arms", "cartridges", "assignment", "exchange",
            "rate/h", "requests", "completed", "failed", "lost",
            "batches", "exchanges", "exch/req", "mean (s)",
            "p50 (s)", "p99 (s)", "drive util", "robot occ",
            "arm occ", "mount wait (s)",
        ]

    def rows(self) -> list[list]:
        """One row per grid point."""
        return [
            [
                point.drives,
                point.arms,
                point.cartridges,
                point.assignment,
                point.exchange,
                point.rate_per_hour,
                point.requests,
                point.completed,
                point.failed,
                point.lost,
                point.batches,
                point.exchanges,
                point.exchanges_per_request,
                point.mean_response_seconds,
                point.p50_response_seconds,
                point.p99_response_seconds,
                point.drive_utilization,
                point.robot_occupancy,
                point.max_arm_occupancy,
                point.mean_mount_wait_seconds,
            ]
            for point in self.points
        ]

    def to_dict(self) -> list[dict]:
        """Records for export."""
        return [dict(zip(self.headers(), row)) for row in self.rows()]

    @property
    def all_complete(self) -> bool:
        """Did every grid point service every request?"""
        return all(
            point.completed == point.requests for point in self.points
        )


def _shelf(config: ExperimentConfig, cartridges: int) -> list[Cartridge]:
    """Deterministic cartridge shelf: tape-0, tape-1, ..."""
    return [
        Cartridge(
            f"tape-{index}",
            generate_tape(seed=config.tape_seed + index),
        )
        for index in range(cartridges)
    ]


def run_point(
    config: ExperimentConfig,
    drives: int,
    arms: int = 1,
    arm_policy: str = "least-busy",
    cartridges: int = DEFAULT_CARTRIDGES,
    assignment: str = "affinity",
    exchange: str = "drain",
    rate_per_hour: float = 240.0,
    horizon_hours: float | None = None,
    max_batch: int = 32,
    algorithm: str = "LOSS",
    exchange_seconds: float = DEFAULT_EXCHANGE_SECONDS,
    shelf: list[Cartridge] | None = None,
) -> LibraryPoint:
    """Service one request stream at one grid point.

    ``shelf`` lets the sweep reuse one generated cartridge set across
    points (generation and model calibration dominate small runs);
    fresh systems are built per point regardless.
    """
    if horizon_hours is None:
        horizon_hours = _HORIZON_HOURS[config.scale]
    if shelf is None:
        shelf = _shelf(config, cartridges)
    from repro.obs.bus import EventBus

    bus = EventBus()
    mount_waits = bus.collect("library.mount_wait")
    system = MultiDriveSystem(
        shelf,
        drives=drives,
        arms=arms,
        arm_assignment=get_arm_policy(arm_policy),
        scheduler=get_scheduler(algorithm),
        policy=BatchPolicy(max_batch=max_batch),
        assignment=get_assignment_policy(assignment),
        exchange=get_exchange_policy(exchange),
        exchange_seconds=exchange_seconds,
        bus=bus,
    )
    requests = poisson_library_stream(
        system.labels(),
        rate_per_hour=rate_per_hour,
        total_segments=shelf[0].geometry.total_segments,
        seed=config.workload_seed,
        horizon_seconds=horizon_hours * 3600.0,
    )
    stats = system.run(requests)
    has_samples = stats.count > 0
    makespan = system.clock_seconds
    busy = sum(bay.busy_seconds for bay in system.bays)
    occupancies = system.robot.occupancies(makespan)
    return LibraryPoint(
        drives=drives,
        arms=arms,
        cartridges=len(shelf),
        assignment=assignment,
        exchange=exchange,
        rate_per_hour=rate_per_hour,
        requests=len(requests),
        completed=stats.count,
        failed=len(system.failed),
        lost=system.lost,
        batches=len(system.batches),
        exchanges=system.exchanges,
        mean_response_seconds=(
            stats.mean_seconds if has_samples else None
        ),
        p50_response_seconds=(
            stats.percentile(50) if has_samples else None
        ),
        p99_response_seconds=(
            stats.percentile(99) if has_samples else None
        ),
        drive_utilization=(
            busy / (drives * makespan) if makespan > 0 else 0.0
        ),
        robot_occupancy=(
            system.robot.busy_seconds / makespan
            if makespan > 0 else 0.0
        ),
        max_arm_occupancy=(
            max(occupancies) if occupancies else 0.0
        ),
        mean_mount_wait_seconds=(
            sum(event.wait_seconds for event in mount_waits)
            / len(mount_waits)
            if mount_waits else 0.0
        ),
    )


def run(
    config: ExperimentConfig | None = None,
    drives=None,
    arms=None,
    arm_policy: str = "least-busy",
    cartridges: int = DEFAULT_CARTRIDGES,
    assignments=None,
    exchange: str = "drain",
    rates=None,
    horizon_hours: float | None = None,
    max_batch: int = 32,
    algorithm: str = "LOSS",
    smoke: bool = False,
) -> LibrarySweepResult:
    """Sweep the (arms, drives, assignment policy, rate) grid.

    ``smoke=True`` shrinks the grid to the CI gate: 2 drives, 1 arm, 8
    cartridges, one policy, a short horizon — fast, and still a real
    end-to-end mount/dispatch/complete cycle.
    """
    config = config or ExperimentConfig()
    if smoke:
        drives = (2,)
        arms = (1,)
        assignments = ("affinity",)
        if horizon_hours is None:
            horizon_hours = 0.5
    if drives is None:
        drives = DEFAULT_DRIVES
    if arms is None:
        arms = DEFAULT_ARMS
    if assignments is None:
        assignments = DEFAULT_ASSIGNMENTS
    if rates is None:
        rates = (240.0,)
    shelf = _shelf(config, cartridges)
    points = tuple(
        run_point(
            config,
            drives=drive_count,
            arms=arm_count,
            arm_policy=arm_policy,
            cartridges=cartridges,
            assignment=assignment,
            exchange=exchange,
            rate_per_hour=rate,
            horizon_hours=horizon_hours,
            max_batch=max_batch,
            algorithm=algorithm,
            shelf=shelf,
        )
        for rate in rates
        for arm_count in arms
        for assignment in assignments
        for drive_count in drives
    )
    return LibrarySweepResult(label="library-sim", points=points)


def report(result: LibrarySweepResult) -> None:
    """Print the sweep table and the zero-loss verdict."""
    print_table(
        result.headers(),
        result.rows(),
        precision=3,
        title=(
            "Multi-drive library sweep: response time, utilization, "
            "and exchange overhead"
        ),
    )
    if result.all_complete:
        print(
            "all requests completed at every grid point "
            "(zero lost requests)"
        )
    else:
        print("WARNING: requests were lost at some grid point")


def main(
    config: ExperimentConfig | None = None,
    drives=None,
    arms=None,
    arm_policy: str = "least-busy",
    cartridges: int = DEFAULT_CARTRIDGES,
    assignments=None,
    exchange: str = "drain",
    rates=None,
    horizon_hours: float | None = None,
    max_batch: int = 32,
    algorithm: str = "LOSS",
    smoke: bool = False,
) -> LibrarySweepResult:
    """Run and report."""
    result = run(
        config,
        drives=drives,
        arms=arms,
        arm_policy=arm_policy,
        cartridges=cartridges,
        assignments=assignments,
        exchange=exchange,
        rates=rates,
        horizon_hours=horizon_hours,
        max_batch=max_batch,
        algorithm=algorithm,
        smoke=smoke,
    )
    report(result)
    return result
