"""Figure 7 — DLT4000 utilization curves per schedule length and size.

For target utilizations of 25 %, 33 %, 50 %, 75 % and 90 % of the
1.5 MB/s sequential bandwidth, the per-request transfer size (MB)
needed as a function of schedule length, using the measured expected
positioning cost of LOSS schedules.  The paper's headline readings: a
solitary random I/O needs a 50–100 MB transfer for good utilization;
with a 10-request schedule ~30 MB suffices; long schedules bring it
down to a few MB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.utilization import (
    FIGURE7_UTILIZATIONS,
    transfer_size_for_utilization,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.experiments.runner import run_per_locate


@dataclass(frozen=True)
class Figure7Result(TabularResult):
    """Transfer-size requirement per (utilization, schedule length)."""

    lengths: tuple[int, ...]
    utilizations: tuple[float, ...]
    locate_seconds: dict[int, float]
    megabytes: dict[tuple[float, int], float]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return [
            "length",
            "locate_seconds",
            *(f"mb_at_{u:g}_util" for u in self.utilizations),
        ]

    def rows(self) -> list[list]:
        """Table rows: length, then MB per request per utilization."""
        rows = []
        for length in self.lengths:
            row: list = [length, self.locate_seconds[length]]
            for utilization in self.utilizations:
                row.append(self.megabytes[(utilization, length)])
            rows.append(row)
        return rows


def run(
    config: ExperimentConfig | None = None,
    utilizations: tuple[float, ...] = FIGURE7_UTILIZATIONS,
    workers: int | None = 1,
) -> Figure7Result:
    """Measure LOSS positioning costs, derive the utilization curves."""
    config = config or ExperimentConfig()
    per_locate = run_per_locate(
        config, origin_at_start=False, algorithms=("LOSS",),
        workers=workers,
    )
    locate_seconds: dict[int, float] = {}
    megabytes: dict[tuple[float, int], float] = {}
    for length in per_locate.lengths:
        locate_total = per_locate.point("LOSS", length).locate_only_mean
        locate_seconds[length] = locate_total
        for utilization in utilizations:
            megabytes[(utilization, length)] = (
                transfer_size_for_utilization(
                    utilization, length, locate_total
                )
                / 1e6
            )
    return Figure7Result(
        lengths=per_locate.lengths,
        utilizations=tuple(utilizations),
        locate_seconds=locate_seconds,
        megabytes=megabytes,
    )


def report(result: Figure7Result) -> None:
    """Print the utilization table (MB per request)."""
    headers = ["N", "locate s"] + [
        f"{u:.0%}" for u in result.utilizations
    ]
    print_table(
        headers,
        result.rows(),
        title=(
            "Figure 7: transfer MB per request to reach target "
            "utilization (LOSS schedules)"
        ),
    )


def main(
    config: ExperimentConfig | None = None,
    workers: int | None = 1,
) -> Figure7Result:
    """Run and report."""
    result = run(config, workers=workers)
    report(result)
    return result
