"""Cache-sim — the disk staging tier under a skewed online workload.

An extension beyond the paper's figures: the paper's *online tertiary
storage* setting implies a hierarchical store in which random reads
only hit tape after missing a disk staging tier.  This experiment runs
the Zipf arrival stream through the online batching system twice —
cache-off (the seed repo's behaviour) and cache-on at a sweep of
staging capacities — and reports hit rate and mean/p99 response time.
The headline: once the cache holds a few percent of the hot set, mean
response time drops strictly below the cache-off baseline, because
every hit skips a 10–100 s locate *and* thins the batch queue the
misses wait in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.admission import get_admission
from repro.cache.policies import get_policy
from repro.cache.store import SegmentCache
from repro.cache.system import CachedTertiaryStorageSystem
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.geometry.generator import generate_tape
from repro.online.batch_queue import BatchPolicy
from repro.online.system import TertiaryStorageSystem
from repro.workload.arrivals import TimedRequest, ZipfArrivals
from repro.workload.zipf import ZipfWorkload

#: Capacity sweep, as fractions of the workload's hot set.
DEFAULT_CAPACITY_FRACTIONS = (0.01, 0.05, 0.20, 0.50)

#: Simulated horizon (hours) per trial scale.
_HORIZON_HOURS = {"quick": 4.0, "full": 12.0, "paper": 48.0}


@dataclass(frozen=True)
class CacheSimPoint:
    """One cache-on run at a fixed staging capacity."""

    capacity_segments: int
    hit_rate: float
    mean_seconds: float
    p99_seconds: float
    evictions: int
    prefetch_insertions: int


@dataclass(frozen=True)
class CacheSimResult(TabularResult):
    """The sweep plus its cache-off baseline."""

    label: str
    alpha: float
    hot_set: int
    placement: str
    rate_per_hour: float
    horizon_seconds: float
    request_count: int
    policy: str
    admission: str
    prefetch: bool
    baseline_mean_seconds: float
    baseline_p99_seconds: float
    points: tuple[CacheSimPoint, ...]

    def headers(self) -> list[str]:
        """Column names matching :meth:`rows` (used by exporters)."""
        return [
            "capacity_segments",
            "percent_of_hot_set",
            "hit_percent",
            "mean_minutes",
            "p99_minutes",
            "mean_vs_off_percent",
        ]

    def rows(self) -> list[list]:
        """Report rows: the baseline first, then the capacity sweep."""
        out: list[list] = [
            [
                0,
                0.0,
                None,
                self.baseline_mean_seconds / 60.0,
                self.baseline_p99_seconds / 60.0,
                None,
            ]
        ]
        for point in self.points:
            out.append(
                [
                    point.capacity_segments,
                    100.0 * point.capacity_segments / self.hot_set,
                    100.0 * point.hit_rate,
                    point.mean_seconds / 60.0,
                    point.p99_seconds / 60.0,
                    100.0
                    * (1.0 - point.mean_seconds
                       / self.baseline_mean_seconds),
                ]
            )
        return out


def _simulate(
    tape,
    requests: list[TimedRequest],
    cache: SegmentCache | None,
    max_batch: int,
    prefetch: bool,
) -> TertiaryStorageSystem:
    policy = BatchPolicy(max_batch=max_batch)
    if cache is None:
        system = TertiaryStorageSystem(geometry=tape, policy=policy)
    else:
        system = CachedTertiaryStorageSystem(
            geometry=tape, policy=policy, cache=cache, prefetch=prefetch
        )
    system.run(requests)
    return system


def _run_capacity_point(
    tape,
    requests: list[TimedRequest],
    capacity: int,
    max_batch: int,
    prefetch: bool,
    policy: str,
    admission: str,
) -> CacheSimPoint:
    """One cache-on run — an independent, picklable work unit.

    The capacity sweep replays the same request stream per capacity,
    so each point is deterministic in isolation and the sweep
    parallelizes trivially (identical results for any worker count).
    """
    cache = SegmentCache(
        capacity,
        policy=get_policy(policy),
        admission=get_admission(admission),
    )
    system = _simulate(tape, requests, cache, max_batch, prefetch)
    return CacheSimPoint(
        capacity_segments=capacity,
        hit_rate=cache.stats.hit_rate,
        mean_seconds=system.stats.mean_seconds,
        p99_seconds=system.stats.percentile(99),
        evictions=cache.stats.evictions,
        prefetch_insertions=cache.stats.prefetch_insertions,
    )


def run(
    config: ExperimentConfig | None = None,
    capacities: tuple[int, ...] | None = None,
    alpha: float = 0.8,
    hot_set: int = 4_000,
    placement: str = "clustered",
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    max_batch: int = 96,
    policy: str = "gdsf",
    admission: str = "always",
    prefetch: bool = True,
    workers: int | None = 1,
) -> CacheSimResult:
    """Sweep staging capacity against the cache-off baseline.

    The workload is Zipf(``alpha``) over a ``hot_set``-segment hot set
    (``clustered`` placement by default — a hot relation laid out
    sequentially, which is also what makes read-through prefetch
    meaningful), arriving Poisson at ``rate_per_hour``.  The same
    request stream is replayed for every configuration, so each
    capacity point is an independent simulation and ``workers > 1``
    fans the sweep over a process pool with identical results.
    """
    config = config or ExperimentConfig()
    if horizon_hours is None:
        horizon_hours = _HORIZON_HOURS[config.scale]
    if capacities is None:
        capacities = tuple(
            max(1, int(round(fraction * hot_set)))
            for fraction in DEFAULT_CAPACITY_FRACTIONS
        )
    tape = generate_tape(seed=config.tape_seed)
    workload = ZipfWorkload(
        total_segments=tape.total_segments,
        alpha=alpha,
        universe=hot_set,
        seed=config.workload_seed,
        placement=placement,
    )
    requests = ZipfArrivals(
        rate_per_hour=rate_per_hour,
        workload=workload,
        seed=config.workload_seed + 1,
    ).batch(horizon_hours * 3600.0)

    from repro.experiments.parallel import _pool_context, resolve_workers

    workers = resolve_workers(workers)
    baseline = _simulate(tape, requests, None, max_batch, prefetch)
    if workers == 1 or len(capacities) <= 1:
        points = [
            _run_capacity_point(
                tape, requests, capacity, max_batch, prefetch,
                policy, admission,
            )
            for capacity in capacities
        ]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(workers, len(capacities)),
            mp_context=_pool_context(),
        ) as pool:
            points = list(
                pool.map(
                    _run_capacity_point,
                    [tape] * len(capacities),
                    [requests] * len(capacities),
                    capacities,
                    [max_batch] * len(capacities),
                    [prefetch] * len(capacities),
                    [policy] * len(capacities),
                    [admission] * len(capacities),
                )
            )
    return CacheSimResult(
        label="cache-sim",
        alpha=alpha,
        hot_set=hot_set,
        placement=placement,
        rate_per_hour=rate_per_hour,
        horizon_seconds=horizon_hours * 3600.0,
        request_count=len(requests),
        policy=policy,
        admission=admission,
        prefetch=prefetch,
        baseline_mean_seconds=baseline.stats.mean_seconds,
        baseline_p99_seconds=baseline.stats.percentile(99),
        points=tuple(points),
    )


def report(result: CacheSimResult) -> None:
    """Print the capacity sweep (row 0 = cache-off baseline)."""
    print_table(
        [
            "capacity",
            "% hot set",
            "hit %",
            "mean (min)",
            "p99 (min)",
            "mean vs off %",
        ],
        result.rows(),
        title=(
            f"Cache-sim: Zipf(a={result.alpha}) x {result.request_count}"
            f" requests, {result.policy}/{result.admission}"
            f"{'+prefetch' if result.prefetch else ''}"
            f" (hot set {result.hot_set}, {result.placement})"
        ),
    )


def main(
    config: ExperimentConfig | None = None, **kwargs
) -> CacheSimResult:
    """Run and report."""
    result = run(config, **kwargs)
    report(result)
    return result
