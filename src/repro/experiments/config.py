"""Experiment configuration: the paper's grids and trial counts.

The paper's simulation (Figure 3) sweeps schedule lengths over a fixed
grid and runs enormous trial counts (100,000 per point for lengths up
to 192) to pin down means on 1995 hardware.  We keep the grid and offer
three trial scales:

* ``quick`` — seconds per figure; standard errors stay well below the
  gaps between algorithms (the default for tests and benches);
* ``full`` — minutes per figure; tighter confidence intervals;
* ``paper`` — the literal published trial table (hours; offered for
  completeness).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError

#: The paper's schedule-length grid (Figure 3 pseudocode).
PAPER_SCHEDULE_LENGTHS: tuple[int, ...] = (
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16, 24, 32, 48, 64, 96, 128,
    192, 256, 384, 512, 768, 1024, 1536, 2048,
)

#: The paper's per-length trial counts.
_PAPER_LARGE_TRIALS = {
    256: 25_000,
    384: 12_000,
    512: 7_000,
    768: 3_000,
    1024: 1_600,
    1536: 800,
    2048: 400,
}

#: The paper's OPT trial counts (OPT is exponential for them).
PAPER_OPT_TRIALS = {10: 10_000, 12: 100}

#: Largest batch OPT is asked to schedule (the paper stops at 12).
OPT_MAX_LENGTH = 12


def paper_trials(length: int) -> int:
    """The paper's trial count for one schedule length."""
    return _PAPER_LARGE_TRIALS.get(length, 100_000)


def quick_trials(length: int) -> int:
    """Reduced trial counts that preserve every published ordering."""
    if length <= 12:
        return 150
    if length <= 64:
        return 60
    if length <= 256:
        return 20
    if length <= 768:
        return 8
    return 4


def full_trials(length: int) -> int:
    """Intermediate scale."""
    return min(paper_trials(length), 20 * quick_trials(length))


_SCALES = {
    "quick": quick_trials,
    "full": full_trials,
    "paper": paper_trials,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of the simulation experiments.

    Attributes
    ----------
    tape_seed:
        Seed of the synthetic cartridge ("the characterized tape").
    workload_seed:
        ``srand48`` seed; the paper repeats each series with 5 seeds.
    lengths:
        Schedule-length grid.
    scale:
        Trial-count scale: ``quick``, ``full``, or ``paper``.
    max_length:
        Truncate the grid (benches use small prefixes).
    seed_mode:
        ``"per-trial"`` (default) derives an independent ``lrand48``
        state per ``(workload_seed, length, trial)`` via
        :mod:`repro.workload.seed_stream`, which makes trials
        order-independent and therefore parallelizable with
        bit-identical statistics.  ``"legacy"`` replays the seed repo's
        single sequential stream (one ``srand48(workload_seed)`` call
        for a whole sweep); it is serial-only.
    """

    tape_seed: int = 1
    workload_seed: int = 0
    lengths: tuple[int, ...] = PAPER_SCHEDULE_LENGTHS
    scale: str = "quick"
    max_length: int | None = None
    seed_mode: str = "per-trial"

    def __post_init__(self) -> None:
        if self.scale not in _SCALES:
            raise ExperimentError(
                f"unknown scale {self.scale!r}; pick from "
                f"{sorted(_SCALES)}"
            )
        if self.seed_mode not in ("per-trial", "legacy"):
            raise ExperimentError(
                f"unknown seed_mode {self.seed_mode!r}; pick "
                "'per-trial' or 'legacy'"
            )

    @property
    def effective_lengths(self) -> tuple[int, ...]:
        """The grid after ``max_length`` truncation."""
        if self.max_length is None:
            return self.lengths
        return tuple(n for n in self.lengths if n <= self.max_length)

    def trials(self, length: int) -> int:
        """Trial count for one schedule length at this scale."""
        return _SCALES[self.scale](length)

    def opt_trials(self, length: int) -> int:
        """Trial count for OPT at one schedule length.

        OPT is the expensive scheduler; like the paper (10,000 trials
        at length 10, 100 at 12, against 100,000 elsewhere) its trial
        budget shrinks with length.
        """
        base = self.trials(length)
        if self.scale == "paper":
            return min(base, PAPER_OPT_TRIALS.get(length, base))
        if length > 10:
            return min(base, 10)
        if length > 6:
            return min(base, 60)
        return base
