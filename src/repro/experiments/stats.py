"""Streaming statistics for Monte-Carlo experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class RunningStats:
    """Welford's online mean/variance accumulator.

    Numerically stable across the millions of samples the paper-scale
    runs produce; supports merging partial accumulators.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def add(self, value: float) -> None:
        """Fold one sample in."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def extend(self, values) -> None:
        """Fold many samples in."""
        for value in values:
            self.add(float(value))

    @property
    def variance(self) -> float:
        """Sample variance (n - 1 denominator)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count < 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (Chan et al. parallel update)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        return self
