"""The Section 8 "results in a nutshell" table.

Published operating points (random I/Os per hour on the DLT4000):

=========================  ======
unscheduled (FIFO)             50
OPT, batches of 10             93
LOSS, batches of 96           124
LOSS, batches of 1024         285
READ, batch of 1536           391
=========================  ======

plus the absolute saving: 192 random I/Os take 3.87 hours unscheduled
and 1.37 hours under LOSS.  This driver recomputes every row from the
simulation and prints it beside the published number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rates import PaperSummaryTargets, ios_per_hour
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.experiments.runner import run_per_locate


@dataclass(frozen=True)
class SummaryResult(TabularResult):
    """Measured operating points beside the published ones."""

    fifo_rate: float
    opt_rate_at_10: float
    loss_rate_at_96: float
    loss_rate_at_1024: float
    read_rate_at_1536: float
    fifo_hours_192: float
    loss_hours_192: float
    targets: PaperSummaryTargets

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return ["metric", "ours", "paper"]

    def rows(self) -> list[list]:
        """Side-by-side rows (ours vs paper)."""
        t = self.targets
        return [
            ["FIFO I/Os per hour", self.fifo_rate, t.fifo_rate],
            ["OPT @ 10 I/Os per hour", self.opt_rate_at_10,
             t.opt_rate_at_10],
            ["LOSS @ 96 I/Os per hour", self.loss_rate_at_96,
             t.loss_rate_at_96],
            ["LOSS @ 1024 I/Os per hour", self.loss_rate_at_1024,
             t.loss_rate_at_1024],
            ["READ @ 1536 I/Os per hour", self.read_rate_at_1536,
             t.read_rate_at_1536],
            ["192 I/Os unscheduled (hours)", self.fifo_hours_192,
             t.fifo_hours_192],
            ["192 I/Os under LOSS (hours)", self.loss_hours_192,
             t.loss_hours_192],
        ]


def run(config: ExperimentConfig | None = None) -> SummaryResult:
    """Recompute the Section 8 operating points."""
    config = config or ExperimentConfig()
    lengths = (10, 96, 192, 1024, 1536)
    sweep_config = ExperimentConfig(
        tape_seed=config.tape_seed,
        workload_seed=config.workload_seed,
        lengths=lengths,
        scale=config.scale,
        max_length=config.max_length,
    )
    result = run_per_locate(
        sweep_config,
        origin_at_start=False,
        algorithms=("FIFO", "OPT", "LOSS", "READ"),
    )

    def rate(algorithm: str, length: int) -> float:
        point = result.point(algorithm, length)
        return ios_per_hour(point.total.mean, length)

    def hours(algorithm: str, length: int) -> float:
        return result.point(algorithm, length).total.mean / 3600.0

    return SummaryResult(
        fifo_rate=rate("FIFO", 192),
        opt_rate_at_10=rate("OPT", 10),
        loss_rate_at_96=rate("LOSS", 96),
        loss_rate_at_1024=rate("LOSS", 1024),
        read_rate_at_1536=rate("READ", 1536),
        fifo_hours_192=hours("FIFO", 192),
        loss_hours_192=hours("LOSS", 192),
        targets=PaperSummaryTargets(),
    )


def report(result: SummaryResult) -> None:
    """Print the side-by-side table."""
    print_table(
        ["operating point", "measured", "paper"],
        result.rows(),
        title="Section 8 summary: retrieval rates, measured vs published",
    )


def main(config: ExperimentConfig | None = None) -> SummaryResult:
    """Run and report."""
    result = run(config)
    report(result)
    return result
