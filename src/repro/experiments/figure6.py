"""Figure 6 — CPU seconds to generate a schedule.

The paper times its schedulers on a SparcStation 20/61: OPT explodes
(936 s for 12 locates with permutation enumeration), LOSS is quadratic
(30.5 s at 2048), the others stay under a second.  Absolute numbers on
modern hardware differ by orders of magnitude; the reproduction target
is the *growth shape* per algorithm, which this driver measures with
``time.perf_counter`` around each ``schedule()`` call.

Our OPT uses the exact Held–Karp DP instead of permutations, so its
curve grows as 2ⁿ rather than n! — still exponential, still exact; the
literal permutation scheduler (``OPT-brute``) is available for the
small range.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.experiments.runner import PerLocateResult, run_per_locate

#: Scheduling-cost curves shown in the paper's Figure 6.
FIGURE6_ALGORITHMS: tuple[str, ...] = (
    "SORT", "SLTF", "SCAN", "WEAVE", "LOSS", "OPT",
)


def run(
    config: ExperimentConfig | None = None,
    algorithms: tuple[str, ...] = FIGURE6_ALGORITHMS,
    workers: int | None = 1,
) -> PerLocateResult:
    """Time schedule generation across the length grid.

    Note that with ``workers > 1`` the *statistics of the estimated
    execution times* stay bit-identical, but the measured CPU seconds
    are wall-clock samples and naturally vary run to run.
    """
    return run_per_locate(
        config or ExperimentConfig(),
        origin_at_start=False,
        algorithms=algorithms,
        measure_cpu=True,
        workers=workers,
    )


def cpu_rows(result: PerLocateResult) -> list[list]:
    """Rows of mean CPU seconds per schedule."""
    rows = []
    for length in result.lengths:
        row: list = [length]
        for algorithm in result.algorithms:
            cell = result.points.get((algorithm, length))
            row.append(
                None if cell is None or cell.cpu.count == 0
                else cell.cpu.mean
            )
        rows.append(row)
    return rows


def report(result: PerLocateResult) -> None:
    """Print the CPU-cost table."""
    print_table(
        ["N", *result.algorithms],
        cpu_rows(result),
        precision=5,
        title="Figure 6: CPU seconds to generate a schedule",
    )


def main(
    config: ExperimentConfig | None = None,
    workers: int | None = 1,
) -> PerLocateResult:
    """Run and report."""
    result = run(config, workers=workers)
    report(result)
    return result
