"""Figure 5 — mean time per locate vs schedule length, BOT start.

The same sweep as Figure 4, but every schedule starts with the head at
segment 0 — the robotic-changer scenario in which a freshly mounted
cartridge is always rewound (single-reel DLT cartridges rewind to
eject).  Small batches are cheaper than in Figure 4 because the first
locate never has to double back.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    PerLocateResult,
    run_per_locate,
)

ORIGIN_AT_START = True


def run(
    config: ExperimentConfig | None = None,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    workers: int | None = 1,
) -> PerLocateResult:
    """Run the Figure 5 sweep (head at beginning of tape)."""
    return run_per_locate(
        config or ExperimentConfig(),
        origin_at_start=ORIGIN_AT_START,
        algorithms=algorithms,
        workers=workers,
    )


def report(result: PerLocateResult) -> None:
    """Print the figure as a table (seconds per locate)."""
    print_table(
        ["N", *result.algorithms],
        result.rows(),
        title="Figure 5: mean seconds per locate, start at beginning of tape",
    )


def main(
    config: ExperimentConfig | None = None,
    workers: int | None = 1,
) -> PerLocateResult:
    """Run and report."""
    result = run(config, workers=workers)
    report(result)
    return result
