"""Shared machinery for the validation experiments (Figures 8 and 9).

Both figures compare *estimated* schedule execution time (computed from
a locate-time model) against *measured* execution (on the ground-truth
drive standing in for the physical DLT4000), for LOSS schedules of
increasing size, a few trials per size.  They differ only in which
model the scheduler/estimator is given:

* Figure 8 — the cartridge's own calibrated model (errors stay under a
  few percent, growing with schedule density);
* Figure 9 — the *wrong cartridge's* model (tape B's key points on
  tape A), which the paper calls "disastrous" (~20 % typical error).
"""

from __future__ import annotations

from dataclasses import dataclass

from concurrent.futures import ProcessPoolExecutor

from repro.drive.physical import ground_truth_drive
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import TabularResult
from repro.experiments.stats import RunningStats
from repro.geometry.tape import TapeGeometry
from repro.scheduling.executor import execute_schedule
from repro.scheduling.loss import LossScheduler
from repro.workload.random_uniform import UniformWorkload
from repro.workload.seed_stream import trial_workload

#: Schedule sizes used for the validation runs (Figure 8's x axis).
VALIDATION_LENGTHS: tuple[int, ...] = (
    8, 16, 32, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048,
)

#: Trials per size (the paper uses 4).
VALIDATION_TRIALS = 4


@dataclass
class ValidationPoint:
    """Estimate-vs-measurement errors at one schedule size."""

    length: int
    percent_error: RunningStats

    @property
    def mean(self) -> float:
        """Mean percent error, (estimate - measurement) / measurement."""
        return self.percent_error.mean


@dataclass
class ValidationResult(TabularResult):
    """Per-size percent errors."""

    label: str
    points: list[ValidationPoint]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return ["length", "mean_percent_error", "std_percent_error"]

    def rows(self) -> list[list]:
        """Table rows: N, mean %, std %."""
        return [
            [p.length, p.mean, p.percent_error.std]
            for p in self.points
        ]

    def to_dict(self) -> list[dict]:
        """One record per size, carrying the run's label and trials."""
        return [
            {
                "label": self.label,
                "length": point.length,
                "trials": point.percent_error.count,
                "mean_percent_error": point.mean,
                "std_percent_error": point.percent_error.std,
            }
            for point in self.points
        ]


def _measure_one_length(
    schedule_model,
    true_geometry: TapeGeometry,
    length: int,
    trials: int,
    workload_seed: int,
    drive_seed: int,
) -> ValidationPoint:
    """One grid point under per-trial seed streams.

    Each trial's batch comes from its own derived stream (namespace
    ``"validation"``), so grid points are independent work units — the
    parallel path maps this function over the lengths and collects the
    points in grid order, bit-identical to the serial path.
    """
    scheduler = LossScheduler()
    stats = RunningStats()
    for trial in range(trials):
        workload = trial_workload(
            true_geometry.total_segments,
            workload_seed,
            length,
            trial,
            namespace="validation",
        )
        origin, batch = workload.sample_batch_with_origin(
            length, origin_at_start=False
        )
        schedule = scheduler.schedule(schedule_model, origin, batch)
        estimate = schedule.estimated_seconds
        drive = ground_truth_drive(
            true_geometry, seed=drive_seed, initial_position=origin
        )
        measured = execute_schedule(drive, schedule).total_seconds
        stats.add(100.0 * (estimate - measured) / measured)
    return ValidationPoint(length=length, percent_error=stats)


def run_validation(
    schedule_model,
    true_geometry: TapeGeometry,
    config: ExperimentConfig | None = None,
    lengths: tuple[int, ...] = VALIDATION_LENGTHS,
    trials: int = VALIDATION_TRIALS,
    label: str = "validation",
    drive_seed: int = 0,
    workers: int | None = 1,
) -> ValidationResult:
    """Estimate-vs-measurement comparison for LOSS schedules.

    Parameters
    ----------
    schedule_model:
        The model given to the scheduler *and* the estimator (the
        paper's "estimated" side).  For Figure 8 this is the true
        cartridge's model; for Figure 9 it is the wrong cartridge's.
    true_geometry:
        The cartridge actually in the drive; measurements run on its
        ground-truth drive.
    workers:
        Process count (``None``/``0`` = all CPUs).  Under the default
        per-trial seed mode each length is an independent work unit and
        the result is bit-identical for every worker count; the legacy
        seed mode is serial-only.
    """
    from repro.experiments.parallel import _pool_context, resolve_workers

    config = config or ExperimentConfig()
    workers = resolve_workers(workers)
    lengths = tuple(
        n for n in lengths
        if config.max_length is None or n <= config.max_length
    )
    if config.seed_mode == "legacy":
        if workers != 1:
            raise ExperimentError(
                "seed_mode='legacy' replays one sequential lrand48 "
                "stream and cannot run on multiple workers"
            )
        return _run_validation_legacy(
            schedule_model, true_geometry, config, lengths, trials,
            label, drive_seed,
        )
    if workers == 1 or len(lengths) <= 1:
        points = [
            _measure_one_length(
                schedule_model, true_geometry, length, trials,
                config.workload_seed, drive_seed,
            )
            for length in lengths
        ]
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(lengths)),
            mp_context=_pool_context(),
        ) as pool:
            points = list(
                pool.map(
                    _measure_one_length,
                    [schedule_model] * len(lengths),
                    [true_geometry] * len(lengths),
                    lengths,
                    [trials] * len(lengths),
                    [config.workload_seed] * len(lengths),
                    [drive_seed] * len(lengths),
                )
            )
    return ValidationResult(label=label, points=points)


def _run_validation_legacy(
    schedule_model,
    true_geometry: TapeGeometry,
    config: ExperimentConfig,
    lengths: tuple[int, ...],
    trials: int,
    label: str,
    drive_seed: int,
) -> ValidationResult:
    """The seed repo's serial loop: one shared ``lrand48`` stream."""
    scheduler = LossScheduler()
    workload = UniformWorkload(
        total_segments=true_geometry.total_segments,
        seed=config.workload_seed,
    )
    points = []
    for length in lengths:
        stats = RunningStats()
        for _ in range(trials):
            origin, batch = workload.sample_batch_with_origin(
                length, origin_at_start=False
            )
            schedule = scheduler.schedule(schedule_model, origin, batch)
            estimate = schedule.estimated_seconds
            drive = ground_truth_drive(
                true_geometry, seed=drive_seed, initial_position=origin
            )
            measured = execute_schedule(drive, schedule).total_seconds
            stats.add(100.0 * (estimate - measured) / measured)
        points.append(ValidationPoint(length=length, percent_error=stats))
    return ValidationResult(label=label, points=points)
