"""Section 3 measurement table — the locate-time aggregates.

The paper's drive characterization reports: maximum locate ~180 s,
expected locate from the beginning of tape to a random segment 96.5 s,
expected locate between two random segments 72.4 s, and ~300
destinations per source with an abrupt ~25 s drop.  This driver
recomputes all of them from the model by Monte Carlo and prints them
next to the published values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    PAPER_MAX_LOCATE_SECONDS,
    PAPER_MEAN_LOCATE_FROM_BOT_SECONDS,
    PAPER_MEAN_LOCATE_RANDOM_SECONDS,
)
from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.geometry.generator import generate_tape
from repro.model.locate import LocateTimeModel


@dataclass(frozen=True)
class Section3Result(TabularResult):
    """Model aggregates vs the published measurements."""

    mean_from_bot: float
    mean_random: float
    max_locate: float
    big_drop_destinations: float

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return ["metric", "ours", "paper"]

    def rows(self) -> list[list]:
        """Side-by-side rows (ours vs paper)."""
        return [
            ["mean locate BOT -> random (s)",
             self.mean_from_bot, PAPER_MEAN_LOCATE_FROM_BOT_SECONDS],
            ["mean locate random -> random (s)",
             self.mean_random, PAPER_MEAN_LOCATE_RANDOM_SECONDS],
            ["max locate (s)",
             self.max_locate, PAPER_MAX_LOCATE_SECONDS],
            ["~25 s drop destinations per source",
             self.big_drop_destinations, 300.0],
        ]


def run(tape_seed: int = 1, samples: int = 200_000, seed: int = 0):
    """Monte-Carlo the Section 3 aggregates."""
    tape = generate_tape(seed=tape_seed)
    model = LocateTimeModel(tape)
    rng = np.random.default_rng(seed)

    destinations = rng.integers(0, tape.total_segments, samples)
    from_bot = model.locate_times(0, destinations)

    sources = rng.integers(0, tape.total_segments, samples)
    pair_destinations = rng.integers(0, tape.total_segments, samples)
    random_random = model.times(sources, pair_destinations)

    # Max locate: exhaustive over destinations for a worst-case source
    # (the far end of a forward track) plus the sampled pairs.
    worst_source_candidates = rng.integers(0, tape.total_segments, 64)
    max_locate = float(random_random.max())
    for source in worst_source_candidates.tolist():
        curve = model.locate_times(
            int(source), np.arange(tape.total_segments)
        )
        max_locate = max(max_locate, float(curve.max()))

    # Count big (~25 s) abrupt drops for a handful of sources.
    drop_counts = []
    for source in rng.integers(0, tape.total_segments, 8).tolist():
        curve = model.locate_times(
            int(source), np.arange(tape.total_segments)
        )
        drops = -np.diff(curve)
        drop_counts.append(int(((drops > 20.0) & (drops < 32.0)).sum()))

    return Section3Result(
        mean_from_bot=float(from_bot.mean()),
        mean_random=float(random_random.mean()),
        max_locate=max_locate,
        big_drop_destinations=float(np.mean(drop_counts)),
    )


def report(result: Section3Result) -> None:
    """Print the side-by-side table."""
    print_table(
        ["aggregate", "model", "paper"],
        result.rows(),
        title="Section 3: locate-time aggregates, model vs published",
    )


def main(tape_seed: int = 1) -> Section3Result:
    """Run and report."""
    result = run(tape_seed=tape_seed)
    report(result)
    return result
