"""Figure 1 — detailed locate- and rewind-time curves from segment 0.

The paper's Figure 1 plots the locate time from the beginning of the
tape to every destination (solid curve) and the corresponding rewind
time (dotted curve), with dashed vertical lines at the track
boundaries.  The curve is a sawtooth: locate time rises within a
section and drops abruptly — by ~5 s in forward tracks and ~25 s in
reverse tracks — one segment past each peak (the dips).

This driver regenerates the full curves, verifies the dip structure,
and prints a sampled table plus the dip statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.geometry.generator import generate_tape
from repro.model.locate import LocateTimeModel
from repro.model.rewind import rewind_time


@dataclass(frozen=True)
class Figure1Result(TabularResult):
    """The two curves plus the detected dip structure."""

    destinations: np.ndarray
    locate_seconds: np.ndarray
    rewind_seconds: np.ndarray
    track_boundaries: np.ndarray
    dip_segments: np.ndarray
    dip_drops: np.ndarray

    @property
    def forward_dip_drop(self) -> float:
        """Median abrupt drop at forward-track dips (paper: ~5 s)."""
        small = self.dip_drops[self.dip_drops < 12.0]
        return float(np.median(small)) if small.size else 0.0

    @property
    def reverse_dip_drop(self) -> float:
        """Median abrupt drop at reverse-track dips (paper: ~25 s)."""
        big = self.dip_drops[self.dip_drops >= 12.0]
        return float(np.median(big)) if big.size else 0.0

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return ["metric", "value"]

    def rows(self) -> list[list]:
        """Summary rows: the dip structure the figure illustrates (the
        raw curves are arrays; export those via numpy directly)."""
        return [
            ["destinations", int(self.destinations.size)],
            ["max_locate_seconds", float(self.locate_seconds.max())],
            ["max_rewind_seconds", float(self.rewind_seconds.max())],
            ["track_boundaries", int(self.track_boundaries.size)],
            ["dips_detected", int(self.dip_segments.size)],
            ["forward_dip_drop_seconds", self.forward_dip_drop],
            ["reverse_dip_drop_seconds", self.reverse_dip_drop],
        ]


def run(tape_seed: int = 1, source: int = 0) -> Figure1Result:
    """Compute the Figure 1 curves for one synthetic cartridge."""
    tape = generate_tape(seed=tape_seed)
    model = LocateTimeModel(tape)
    destinations = np.arange(tape.total_segments, dtype=np.int64)
    locate = model.locate_times(source, destinations)
    rewind = np.asarray(rewind_time(tape, destinations))
    diffs = np.diff(locate)
    dip_positions = np.flatnonzero(diffs < -2.5) + 1
    return Figure1Result(
        destinations=destinations,
        locate_seconds=locate,
        rewind_seconds=rewind,
        track_boundaries=tape.track_first_segments(),
        dip_segments=dip_positions,
        dip_drops=-diffs[dip_positions - 1],
    )


def report(result: Figure1Result, stride: int = 40_000) -> None:
    """Print a sampled view of the curves plus dip statistics."""
    rows = [
        [
            int(dest),
            float(result.locate_seconds[dest]),
            float(result.rewind_seconds[dest]),
        ]
        for dest in range(0, result.destinations.size, stride)
    ]
    print_table(
        ["destination", "locate s", "rewind s"],
        rows,
        title="Figure 1: locate/rewind time from segment 0 (sampled)",
    )
    print_table(
        ["dips detected", "fwd drop s", "rev drop s", "max locate s"],
        [[
            int(result.dip_segments.size),
            result.forward_dip_drop,
            result.reverse_dip_drop,
            float(result.locate_seconds.max()),
        ]],
        title="Figure 1: sawtooth structure (paper: ~5 s fwd, ~25 s rev)",
    )


def main(tape_seed: int = 1) -> Figure1Result:
    """Run and report."""
    result = run(tape_seed=tape_seed)
    report(result)
    return result
