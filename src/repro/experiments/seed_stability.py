"""Seed-stability check — Section 5's replication claim.

"The entire set of experiments is repeated for 5 different initial
pseudorandom number seeds.  The mean schedule execution time varies by
less than 0.5% across these 5 sets of experiments, except for the OPT
algorithm on schedules of length 12, which has only 100 trials, where
the mean varies 2.5%."

This driver reruns the per-locate experiment with five workload seeds
and reports, per (algorithm, length) cell, the relative spread of the
mean — confirming that the reported figures are not artifacts of one
seed.  At reduced trial scales the spreads are proportionally larger;
the invariant that survives any scale is that the spread stays well
below the separation between algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.experiments.runner import run_per_locate

#: The seeds; the paper used five.
DEFAULT_SEEDS: tuple[int, ...] = (0, 1, 2, 3, 4)


@dataclass(frozen=True)
class SeedStabilityResult(TabularResult):
    """Relative spread of per-locate means across seeds."""

    algorithms: tuple[str, ...]
    lengths: tuple[int, ...]
    seeds: tuple[int, ...]
    #: (algorithm, length) -> per-seed means.
    means: dict[tuple[str, int], np.ndarray]

    def relative_spread(self, algorithm: str, length: int) -> float:
        """(max - min) / mean of the per-seed means."""
        values = self.means[(algorithm, length)]
        return float((values.max() - values.min()) / values.mean())

    def separation(self, length: int) -> float:
        """Smallest relative gap between adjacent algorithm means."""
        values = sorted(
            float(self.means[(algorithm, length)].mean())
            for algorithm in self.algorithms
        )
        gaps = [
            (b - a) / a for a, b in zip(values, values[1:])
        ]
        return min(gaps) if gaps else 0.0

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`: N, then one per algorithm."""
        return [
            "length",
            *(f"{a}_spread_percent" for a in self.algorithms),
        ]

    def rows(self) -> list[list]:
        """Table rows: length, then per-algorithm spread (percent)."""
        rows = []
        for length in self.lengths:
            row: list = [length]
            for algorithm in self.algorithms:
                row.append(
                    100.0 * self.relative_spread(algorithm, length)
                )
            rows.append(row)
        return rows


#: Representative lengths for the replication check.
DEFAULT_LENGTHS: tuple[int, ...] = (8, 48, 192)


def run(
    config: ExperimentConfig | None = None,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    algorithms: tuple[str, ...] = ("FIFO", "SLTF", "LOSS"),
) -> SeedStabilityResult:
    """Rerun the per-locate sweep once per seed.

    Only ``scale``, ``tape_seed`` and ``max_length`` of ``config`` are
    honoured; the length grid is the small representative
    :data:`DEFAULT_LENGTHS` (five full sweeps would quintuple the
    Figure 4 cost for no extra information).
    """
    base = config or ExperimentConfig(scale="quick")
    lengths = tuple(
        n
        for n in DEFAULT_LENGTHS
        if base.max_length is None or n <= base.max_length
    ) or (DEFAULT_LENGTHS[0],)
    config = ExperimentConfig(
        tape_seed=base.tape_seed,
        lengths=lengths,
        scale=base.scale,
    )
    means: dict[tuple[str, int], list[float]] = {}
    for seed in seeds:
        seeded = ExperimentConfig(
            tape_seed=config.tape_seed,
            workload_seed=seed,
            lengths=config.lengths,
            scale=config.scale,
        )
        result = run_per_locate(
            seeded, origin_at_start=False, algorithms=algorithms
        )
        for length in result.lengths:
            for algorithm in algorithms:
                means.setdefault((algorithm, length), []).append(
                    result.point(algorithm, length).per_locate_mean
                )
    return SeedStabilityResult(
        algorithms=algorithms,
        lengths=tuple(
            length
            for length in config.effective_lengths
        ),
        seeds=tuple(seeds),
        means={
            key: np.asarray(values) for key, values in means.items()
        },
    )


def report(result: SeedStabilityResult) -> None:
    """Print per-cell spreads."""
    print_table(
        ["N", *(f"{a} spread %" for a in result.algorithms)],
        result.rows(),
        title=(
            "Section 5 replication: spread of mean time per locate "
            "across seeds"
        ),
    )


def main(config: ExperimentConfig | None = None) -> SeedStabilityResult:
    """Run and report."""
    result = run(config)
    report(result)
    return result
