"""Empirical cross-check of the Figure 7 utilization algebra.

Figure 7 derives the transfer size needed for a target utilization
from the positioning cost of single-segment schedules, implicitly
assuming the positioning cost does not change when each request
transfers megabytes instead of 32 KB.  It does change a little: a
multi-segment read carries the head forward, which alters the next
locate.  This experiment *simulates* batches of genuine multi-segment
requests end to end and compares the measured utilization with the
analytic prediction — quantifying the approximation the paper (and our
Figure 7 driver) relies on.

Finding: while the batch's total transfer is small against the
cartridge (the regime Figure 7 plots), the algebra is good to a couple
of utilization points.  It over-predicts grossly only when the
requested data approaches the cartridge's capacity (e.g. 512 requests
of 100 MB on a 20 GB tape), where requests overlap and the
independence assumption collapses — a regime where READ is the right
plan anyway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.utilization import utilization_for_transfer_size
from repro.constants import SEGMENT_BYTES, SEGMENT_TRANSFER_SECONDS
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.experiments.stats import RunningStats
from repro.geometry.generator import generate_tape
from repro.model.locate import LocateTimeModel
from repro.scheduling.estimator import estimate_schedule_seconds
from repro.scheduling.loss import LossScheduler
from repro.scheduling.request import Request
from repro.workload.random_uniform import UniformWorkload

#: Batch sizes and per-request transfer sizes (MB) exercised.
DEFAULT_LENGTHS: tuple[int, ...] = (10, 96, 512)
DEFAULT_TRANSFER_MB: tuple[float, ...] = (1.0, 10.0, 30.0, 100.0)


@dataclass(frozen=True)
class Figure7EmpiricalResult(TabularResult):
    """Measured vs predicted utilization per (N, transfer size)."""

    lengths: tuple[int, ...]
    transfer_mb: tuple[float, ...]
    measured: dict[tuple[int, float], float]
    predicted: dict[tuple[int, float], float]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return [
            "length",
            "transfer_mb",
            "measured_percent",
            "predicted_percent",
            "gap_points",
        ]

    def rows(self) -> list[list]:
        """Rows: N, MB, measured %, predicted %, gap (points)."""
        rows = []
        for length in self.lengths:
            for megabytes in self.transfer_mb:
                measured = 100 * self.measured[(length, megabytes)]
                predicted = 100 * self.predicted[(length, megabytes)]
                rows.append(
                    [length, megabytes, measured, predicted,
                     measured - predicted]
                )
        return rows

    def max_gap_points(self) -> float:
        """Largest |measured - predicted| utilization gap, in points."""
        return max(
            abs(
                100 * self.measured[key] - 100 * self.predicted[key]
            )
            for key in self.measured
        )


def run(
    config: ExperimentConfig | None = None,
    lengths: tuple[int, ...] = DEFAULT_LENGTHS,
    transfer_mb: tuple[float, ...] = DEFAULT_TRANSFER_MB,
    trials: int = 3,
) -> Figure7EmpiricalResult:
    """Simulate multi-segment batches; compare with the algebra."""
    config = config or ExperimentConfig()
    tape = generate_tape(seed=config.tape_seed)
    model = LocateTimeModel(tape)
    scheduler = LossScheduler()
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=config.workload_seed
    )

    measured: dict[tuple[int, float], RunningStats] = {}
    predicted: dict[tuple[int, float], RunningStats] = {}
    for length in lengths:
        for megabytes in transfer_mb:
            segments_per_request = max(
                1, math.ceil(megabytes * 1e6 / SEGMENT_BYTES)
            )
            headroom = tape.total_segments - segments_per_request
            for _ in range(trials):
                origin, batch = workload.sample_batch_with_origin(
                    length, origin_at_start=False
                )
                batch = batch % headroom
                requests = [
                    Request(int(s), length=segments_per_request)
                    for s in sorted(set(batch.tolist()))
                ]
                schedule = scheduler.schedule(model, origin, requests)
                total = schedule.estimated_seconds
                transfer = (
                    len(requests)
                    * segments_per_request
                    * SEGMENT_TRANSFER_SECONDS
                )
                measured.setdefault(
                    (length, megabytes), RunningStats()
                ).add(transfer / total)

                # Analytic prediction from the same batch's
                # single-segment positioning cost.
                thin = scheduler.schedule(
                    model, origin, [Request(r.segment) for r in requests]
                )
                locate_only = estimate_schedule_seconds(
                    model, thin, include_transfers=False
                )
                predicted.setdefault(
                    (length, megabytes), RunningStats()
                ).add(
                    utilization_for_transfer_size(
                        megabytes * 1e6, len(requests), locate_only
                    )
                )
    return Figure7EmpiricalResult(
        lengths=lengths,
        transfer_mb=transfer_mb,
        measured={key: s.mean for key, s in measured.items()},
        predicted={key: s.mean for key, s in predicted.items()},
    )


def report(result: Figure7EmpiricalResult) -> None:
    """Print the measured-vs-predicted utilization table."""
    print_table(
        ["N", "MB/request", "measured %", "predicted %", "gap pts"],
        result.rows(),
        title=(
            "Figure 7 cross-check: simulated multi-segment batches vs "
            "the utilization algebra"
        ),
    )


def main(
    config: ExperimentConfig | None = None,
) -> Figure7EmpiricalResult:
    """Run and report."""
    result = run(config)
    report(result)
    return result
