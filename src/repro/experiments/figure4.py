"""Figure 4 — mean time per locate vs schedule length, random start.

Reproduces the paper's central comparison: for every algorithm and
every schedule length on the grid, the mean execution seconds per
request, with the initial head position drawn uniformly (the repeated
batch-scheduling scenario).  The published shape: FIFO flat at ~72 s;
SORT poor for small batches, converging for dense ones; SLTF/WEAVE/
SCAN in between; LOSS best among the heuristics; OPT best where
feasible (N <= 12); READ constant 14,000 s total, so per-locate cost
falls as 1/N and crosses LOSS near N = 1536.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    PerLocateResult,
    run_per_locate,
)

ORIGIN_AT_START = False


def run(
    config: ExperimentConfig | None = None,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    workers: int | None = 1,
) -> PerLocateResult:
    """Run the Figure 4 sweep (random initial head position)."""
    return run_per_locate(
        config or ExperimentConfig(),
        origin_at_start=ORIGIN_AT_START,
        algorithms=algorithms,
        workers=workers,
    )


def report(result: PerLocateResult) -> None:
    """Print the figure as a table (seconds per locate)."""
    print_table(
        ["N", *result.algorithms],
        result.rows(),
        title="Figure 4: mean seconds per locate, random starting point",
    )


def main(
    config: ExperimentConfig | None = None,
    workers: int | None = 1,
) -> PerLocateResult:
    """Run and report."""
    result = run(config, workers=workers)
    report(result)
    return result
