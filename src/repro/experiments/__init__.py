"""Experiment drivers: one module per figure/table of the paper.

Each module exposes ``run(config) -> result``, ``report(result)`` and a
``main()`` that does both; the CLI (``python -m repro``) and the
benchmark suite are thin wrappers over these.
"""

from repro.experiments import (
    cache_sim,
    chaos,
    drive_generations,
    figure1,
    figure4,
    figure5,
    figure6,
    figure7,
    figure7_empirical,
    figure8,
    figure9,
    figure10,
    library_sim,
    optimality,
    section3_stats,
    seed_stability,
    serve_sim,
    summary_table,
    trace_run,
)
from repro.experiments.config import (
    ExperimentConfig,
    OPT_MAX_LENGTH,
    PAPER_SCHEDULE_LENGTHS,
    full_trials,
    paper_trials,
    quick_trials,
)
from repro.experiments.ascii_plot import (
    render_per_locate_result,
    render_series,
)
from repro.experiments.parallel import (
    DEFAULT_CHUNK_TRIALS,
    ChunkTask,
    SweepSpec,
    chunk_plan,
    resolve_workers,
    run_per_locate_sweep,
)
from repro.experiments.report import format_table, print_table
from repro.experiments.result import TabularResult
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    PerLocateResult,
    SeriesPoint,
    run_per_locate,
)
from repro.experiments.stats import RunningStats
from repro.experiments.validation import (
    VALIDATION_LENGTHS,
    ValidationResult,
    run_validation,
)

__all__ = [
    "ChunkTask",
    "DEFAULT_ALGORITHMS",
    "DEFAULT_CHUNK_TRIALS",
    "ExperimentConfig",
    "OPT_MAX_LENGTH",
    "PAPER_SCHEDULE_LENGTHS",
    "PerLocateResult",
    "RunningStats",
    "SeriesPoint",
    "SweepSpec",
    "TabularResult",
    "VALIDATION_LENGTHS",
    "ValidationResult",
    "cache_sim",
    "chaos",
    "chunk_plan",
    "drive_generations",
    "figure1",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure7_empirical",
    "figure8",
    "figure9",
    "figure10",
    "format_table",
    "full_trials",
    "library_sim",
    "optimality",
    "paper_trials",
    "print_table",
    "quick_trials",
    "render_per_locate_result",
    "render_series",
    "resolve_workers",
    "run_per_locate",
    "run_per_locate_sweep",
    "run_validation",
    "section3_stats",
    "seed_stability",
    "serve_sim",
    "summary_table",
    "trace_run",
]
