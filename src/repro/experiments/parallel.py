"""The parallel experiment engine for the Figure 3 simulation loop.

Every figure sweep is embarrassingly parallel across trials — the paper
runs up to 100,000 independent trials per grid point — but the seed
repo's runner was chained to one sequential ``lrand48`` stream, so the
whole ``lengths × trials × algorithms`` loop had to run on one core.
This engine fans trials out across a process pool while keeping the
statistics **bit-identical to the serial path**:

* every trial draws its batch from a derived seed stream
  (:func:`repro.workload.seed_stream.trial_workload`), so a trial's
  inputs depend only on ``(workload_seed, length, trial)``, never on
  which worker runs it or in what order;
* trials are grouped into fixed-size chunks whose boundaries do **not**
  depend on the worker count; each chunk folds its samples into partial
  :class:`~repro.experiments.stats.RunningStats` accumulators in trial
  order;
* partial accumulators are merged with
  :meth:`~repro.experiments.stats.RunningStats.merge` in ascending
  ``(grid position, chunk index)`` order — the same reduction tree
  regardless of how many workers computed the chunks.

Under this scheme ``workers=1`` and ``workers=N`` run the identical
sequence of floating-point operations per cell, so means, standard
deviations, and counts match cell-for-cell, bit-for-bit (the
determinism tests assert exact equality).

Workers memoize the generated tape, its
:class:`~repro.model.locate.LocateTimeModel`, and the scheduler
instances, so each process pays substrate construction once per sweep,
not once per chunk.  On platforms with ``fork`` the parent pre-warms
the cache before spawning, so workers inherit the built substrate for
free.

Progress is published on a :class:`~repro.obs.bus.EventBus` (the
``experiment.*`` taxonomy) from the coordinating process as chunk
results arrive.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig, OPT_MAX_LENGTH
from repro.experiments.stats import RunningStats
from repro.geometry.generator import generate_tape
from repro.model.locate import LocateTimeModel
from repro.obs.bus import EventBus
from repro.obs.events import (
    SweepChunkCompleted,
    SweepCompleted,
    SweepStarted,
)
from repro.scheduling.base import get_scheduler
from repro.workload.seed_stream import trial_workload

#: Trials per chunk.  Fixed — never derived from the worker count —
#: because the chunk boundaries define the merge tree and the merge
#: tree defines the bits of the result.
DEFAULT_CHUNK_TRIALS = 25


@dataclass(frozen=True)
class SweepSpec:
    """Everything a worker needs to rebuild one sweep's substrate."""

    tape_seed: int
    workload_seed: int
    origin_at_start: bool
    algorithms: tuple[str, ...]
    measure_cpu: bool = False
    namespace: str = "per-locate"


@dataclass(frozen=True)
class ChunkTask:
    """One unit of work: trials ``[trial_start, trial_stop)`` of one
    schedule length, with the length's OPT trial budget."""

    length: int
    chunk_index: int
    trial_start: int
    trial_stop: int
    opt_budget: int

    @property
    def trials(self) -> int:
        """Trials in this chunk."""
        return self.trial_stop - self.trial_start


#: Per-process substrate cache: ``(tape_seed, algorithms) ->
#: (total_segments, model, schedulers)``.
_SUBSTRATE_CACHE: dict = {}


def _substrate(spec: SweepSpec):
    """Build (or fetch the memoized) tape model and schedulers."""
    key = (spec.tape_seed, spec.algorithms)
    hit = _SUBSTRATE_CACHE.get(key)
    if hit is None:
        tape = generate_tape(seed=spec.tape_seed)
        hit = (
            tape.total_segments,
            LocateTimeModel(tape),
            {name: get_scheduler(name) for name in spec.algorithms},
        )
        # One sweep at a time per worker: drop stale substrates so a
        # long-lived pool doesn't accumulate tapes.
        _SUBSTRATE_CACHE.clear()
        _SUBSTRATE_CACHE[key] = hit
    return hit


def run_chunk(
    spec: SweepSpec, task: ChunkTask
) -> dict[str, tuple[RunningStats, RunningStats]]:
    """Execute one chunk; returns per-algorithm (total, cpu) partials.

    Pure with respect to the sweep definition: the returned statistics
    depend only on ``(spec, task)``, which is what lets chunks run on
    any worker in any order.
    """
    total_segments, model, schedulers = _substrate(spec)
    partial = {
        name: (RunningStats(), RunningStats())
        for name in spec.algorithms
    }
    for trial in range(task.trial_start, task.trial_stop):
        workload = trial_workload(
            total_segments,
            spec.workload_seed,
            task.length,
            trial,
            spec.namespace,
        )
        origin, batch = workload.sample_batch_with_origin(
            task.length, spec.origin_at_start
        )
        for name in spec.algorithms:
            if name.startswith("OPT") and (
                task.length > OPT_MAX_LENGTH or trial >= task.opt_budget
            ):
                continue
            total, cpu = partial[name]
            started = time.perf_counter() if spec.measure_cpu else 0.0
            schedule = schedulers[name].schedule(model, origin, batch)
            if spec.measure_cpu:
                cpu.add(time.perf_counter() - started)
            total.add(schedule.estimated_seconds)
    return partial


def chunk_plan(
    config: ExperimentConfig,
    lengths: tuple[int, ...],
    chunk_trials: int = DEFAULT_CHUNK_TRIALS,
) -> list[ChunkTask]:
    """The sweep's work units, in canonical (merge) order."""
    if chunk_trials < 1:
        raise ExperimentError("chunk_trials must be >= 1")
    tasks = []
    for length in lengths:
        trials = config.trials(length)
        opt_budget = min(trials, config.opt_trials(length))
        for chunk_index, start in enumerate(
            range(0, trials, chunk_trials)
        ):
            tasks.append(
                ChunkTask(
                    length=length,
                    chunk_index=chunk_index,
                    trial_start=start,
                    trial_stop=min(start + chunk_trials, trials),
                    opt_budget=opt_budget,
                )
            )
    return tasks


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker count (``None``/``0`` = all CPUs)."""
    if workers is None or workers == 0:
        return multiprocessing.cpu_count()
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    return workers


def _pool_context():
    """Prefer ``fork`` so workers inherit the pre-warmed substrate."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def execute_plan(
    spec,
    tasks: list,
    chunk_fn=None,
    warm_fn=None,
    workers: int | None = 1,
    bus: EventBus | None = None,
    label: str = "sweep",
) -> list:
    """Run every chunk and return partials in plan (merge) order.

    Generic fan-out/ordered-collect: ``chunk_fn(spec, task)`` must be a
    picklable top-level callable whose result depends only on its
    arguments (:func:`run_chunk` by default); ``warm_fn(spec)``, when
    given, pre-builds per-process state — invoked in the parent before
    forking (workers inherit it) and implicitly by ``chunk_fn`` in each
    worker otherwise.

    With ``workers == 1`` the chunks run in-process; otherwise they are
    distributed over a process pool.  Either way the returned list is
    ordered like ``tasks``, so downstream reduction is identical.
    """
    if chunk_fn is None:
        chunk_fn = run_chunk
        warm_fn = _substrate
    workers = resolve_workers(workers)
    started = time.perf_counter()
    if bus is not None:
        bus.publish(
            SweepStarted(
                seconds=0.0,
                label=label,
                workers=workers,
                total_tasks=len(tasks),
            )
        )

    partials: list = [None] * len(tasks)

    def _progress(index: int) -> None:
        if bus is None:
            return
        done = sum(1 for p in partials if p is not None)
        task = tasks[index]
        bus.publish(
            SweepChunkCompleted(
                seconds=time.perf_counter() - started,
                label=label,
                length=task.length,
                chunk_index=task.chunk_index,
                chunk_trials=task.trials,
                done_tasks=done,
                total_tasks=len(tasks),
            )
        )

    if workers == 1 or len(tasks) <= 1:
        # Warm the in-process cache once, then run chunks in order.
        if warm_fn is not None:
            warm_fn(spec)
        for index, task in enumerate(tasks):
            partials[index] = chunk_fn(spec, task)
            _progress(index)
    else:
        # Pre-warm before forking so children inherit the substrate.
        context = _pool_context()
        if warm_fn is not None and context.get_start_method() == "fork":
            warm_fn(spec)
        with ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)), mp_context=context
        ) as pool:
            pending = {
                pool.submit(chunk_fn, spec, task): index
                for index, task in enumerate(tasks)
            }
            while pending:
                finished, _ = wait(
                    pending, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    index = pending.pop(future)
                    partials[index] = future.result()
                    _progress(index)

    if bus is not None:
        bus.publish(
            SweepCompleted(
                seconds=time.perf_counter() - started,
                label=label,
                workers=workers,
                total_tasks=len(tasks),
            )
        )
    return partials


def run_per_locate_sweep(
    config: ExperimentConfig,
    origin_at_start: bool,
    algorithms: tuple[str, ...],
    measure_cpu: bool = False,
    workers: int | None = 1,
    bus: EventBus | None = None,
    chunk_trials: int = DEFAULT_CHUNK_TRIALS,
    label: str | None = None,
):
    """The per-trial-seeded Figure 4/5/6 sweep, serial or parallel.

    This is the engine behind
    :func:`repro.experiments.runner.run_per_locate` whenever
    ``config.seed_mode == "per-trial"``; the result is bit-identical
    for every ``workers`` value.
    """
    # Local import: runner is the public module and imports us lazily.
    from repro.experiments.runner import PerLocateResult, SeriesPoint

    spec = SweepSpec(
        tape_seed=config.tape_seed,
        workload_seed=config.workload_seed,
        origin_at_start=origin_at_start,
        algorithms=tuple(algorithms),
        measure_cpu=measure_cpu,
    )
    lengths = config.effective_lengths
    tasks = chunk_plan(config, lengths, chunk_trials)
    partials = execute_plan(
        spec,
        tasks,
        workers=workers,
        bus=bus,
        label=label
        or ("figure5" if origin_at_start else "figure4"),
    )

    points: dict[tuple[str, int], SeriesPoint] = {
        (name, length): SeriesPoint(name, length)
        for length in lengths
        for name in algorithms
    }
    for task, partial in zip(tasks, partials):
        for name in algorithms:
            total, cpu = partial[name]
            point = points[(name, task.length)]
            point.total.merge(total)
            point.cpu.merge(cpu)
    return PerLocateResult(
        origin_at_start=origin_at_start,
        algorithms=tuple(algorithms),
        lengths=lengths,
        points=points,
    )
