"""The tabular result protocol shared by every experiment result.

Every ``run()`` in :mod:`repro.experiments` returns a result object;
each one reports as a table.  The protocol is two methods:

``headers() -> list[str]``
    Column names, machine-friendly (they become CSV columns and JSON
    keys).

``to_dict() -> list[dict]``
    The result flattened to records — one dict per table row, keyed by
    :meth:`headers`.

:mod:`repro.experiments.export` dispatches on the protocol (duck-typed
``to_dict``), not on concrete classes, so a new experiment only has to
implement the two methods — or inherit :class:`TabularResult` and
implement ``headers()`` + ``rows()`` — to gain CSV/JSON export for
free.
"""

from __future__ import annotations


class TabularResult:
    """Mixin deriving ``to_dict()`` from ``headers()`` + ``rows()``.

    Subclasses provide ``rows() -> list[list]`` (the report table) and
    ``headers() -> list[str]`` (matching column names); the mixin zips
    them into records.  Override :meth:`to_dict` when the export shape
    should be richer than the printed table (e.g.
    :class:`~repro.experiments.runner.PerLocateResult` exports one
    record per cell, not per row).
    """

    def headers(self) -> list[str]:
        raise NotImplementedError(
            f"{type(self).__name__} must implement headers()"
        )

    def rows(self) -> list[list]:
        raise NotImplementedError(
            f"{type(self).__name__} must implement rows()"
        )

    def to_dict(self) -> list[dict]:
        """Flatten to records: one dict per row, keyed by headers."""
        names = self.headers()
        records = []
        for row in self.rows():
            if len(row) != len(names):
                raise ValueError(
                    f"{type(self).__name__}: row width {len(row)} != "
                    f"{len(names)} headers"
                )
            records.append(dict(zip(names, row)))
        return records
