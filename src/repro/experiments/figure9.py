"""Figure 9 — estimate error with the wrong tape's key points.

The Figure 8 experiment repeated with the model parameterized by *tape
B's* key points while the drive holds *tape A*: the answer to "is it
really necessary to characterize each individual tape?".  The paper
calls the consequence disastrous — typical errors around 20 % — because
wrong key points misassign segments to sections, and adjacent sections
differ by ~5 s (forward tracks) / ~25 s (reverse tracks) per locate.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.experiments.validation import (
    ValidationResult,
    run_validation,
)
from repro.geometry.generator import make_tape_pair
from repro.model.locate import LocateTimeModel


def run(
    config: ExperimentConfig | None = None,
    workers: int | None = 1,
) -> ValidationResult:
    """Schedule with tape B's model, execute on tape A."""
    config = config or ExperimentConfig()
    tape_a, tape_b = make_tape_pair(seed=config.tape_seed)
    return run_validation(
        schedule_model=LocateTimeModel(tape_b),
        true_geometry=tape_a,
        config=config,
        label="figure9",
        workers=workers,
    )


def report(result: ValidationResult) -> None:
    """Print per-size percent errors."""
    print_table(
        ["N", "mean % error", "std %"],
        result.rows(),
        title=(
            "Figure 9: percent error with wrong key points "
            "(paper: ~20% typical)"
        ),
    )


def main(
    config: ExperimentConfig | None = None,
    workers: int | None = 1,
) -> ValidationResult:
    """Run and report."""
    result = run(config, workers=workers)
    report(result)
    return result
