"""Plain-text table rendering for experiment reports.

Every experiment driver prints the same rows/series the paper's figure
or table reports, in aligned monospace tables, so a run's output can be
eyeballed against the published plots.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_cell(value, width: int = 0, precision: int = 2) -> str:
    """Render one table cell."""
    if value is None:
        text = "-"
    elif isinstance(value, float):
        text = f"{value:.{precision}f}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    cells = [
        [format_cell(value, precision=precision) for value in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(text.rjust(w) for text, w in zip(row, widths))
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    precision: int = 2,
    title: str | None = None,
) -> None:
    """Print an aligned text table."""
    print(format_table(headers, rows, precision=precision, title=title))
    print()
