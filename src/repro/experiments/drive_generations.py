"""Scheduling value across drive generations (extension experiment).

The paper characterizes the DLT4000 but names its faster siblings —
the DLT7000 and the IBM 3590 (Section 2).  This experiment replays the
central comparison (FIFO vs SLTF vs LOSS vs READ, per-locate seconds)
on each generation's profile and asks: does the scheduling advantage
survive faster hardware?

The answer the simulation gives: yes, proportionally.  Faster transport
shrinks *all* positioning times by roughly the speed ratio, so the
relative gains of scheduling (2–10×) carry over, while the READ
crossover point stays in the same region — it is set by the ratio of
full-tape time to per-locate time, which the speedup leaves roughly
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rates import ios_per_hour
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.experiments.stats import RunningStats
from repro.profiles import DLT4000, DLT7000, IBM3590, DriveProfile
from repro.scheduling.base import get_scheduler
from repro.workload.random_uniform import UniformWorkload

#: Default algorithm set (READ handled through its whole-tape plan).
DEFAULT_ALGORITHMS: tuple[str, ...] = ("FIFO", "SLTF", "LOSS", "READ")

#: Batch size for the comparison (a LOSS sweet spot in Figure 4).
DEFAULT_LENGTH = 96


@dataclass(frozen=True)
class GenerationPoint:
    """One (profile, algorithm) cell."""

    profile: str
    algorithm: str
    per_locate_seconds: float
    per_hour: float


@dataclass(frozen=True)
class DriveGenerationsResult(TabularResult):
    """Per-profile comparison table."""

    length: int
    points: dict[tuple[str, str], GenerationPoint]
    profiles: tuple[str, ...]
    algorithms: tuple[str, ...]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`: drive, then one per algorithm."""
        return ["drive", *(f"{a}_per_hour" for a in self.algorithms)]

    def rows(self) -> list[list]:
        """Rows: profile, then I/Os-per-hour per algorithm."""
        rows = []
        for profile in self.profiles:
            row: list = [profile]
            for algorithm in self.algorithms:
                row.append(self.points[(profile, algorithm)].per_hour)
            rows.append(row)
        return rows

    def speedup(self, profile: str) -> float:
        """LOSS-over-FIFO throughput gain on one profile."""
        return (
            self.points[(profile, "LOSS")].per_hour
            / self.points[(profile, "FIFO")].per_hour
        )


def run(
    config: ExperimentConfig | None = None,
    profiles: tuple[DriveProfile, ...] = (DLT4000, DLT7000, IBM3590),
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    length: int = DEFAULT_LENGTH,
    trials: int = 8,
) -> DriveGenerationsResult:
    """Replay the batch-scheduling comparison on each drive profile."""
    config = config or ExperimentConfig()
    points: dict[tuple[str, str], GenerationPoint] = {}
    for profile in profiles:
        tape, model = profile.build_system(seed=config.tape_seed)
        workload = UniformWorkload(
            total_segments=tape.total_segments,
            seed=config.workload_seed,
        )
        stats = {name: RunningStats() for name in algorithms}
        for _ in range(trials):
            origin, batch = workload.sample_batch_with_origin(
                length, origin_at_start=False
            )
            for name in algorithms:
                schedule = get_scheduler(name).schedule(
                    model, origin, batch
                )
                stats[name].add(schedule.estimated_seconds)
        for name in algorithms:
            mean_total = stats[name].mean
            points[(profile.name, name)] = GenerationPoint(
                profile=profile.name,
                algorithm=name,
                per_locate_seconds=mean_total / length,
                per_hour=ios_per_hour(mean_total, length),
            )
    return DriveGenerationsResult(
        length=length,
        points=points,
        profiles=tuple(p.name for p in profiles),
        algorithms=algorithms,
    )


def report(result: DriveGenerationsResult) -> None:
    """Print the per-generation throughput table."""
    print_table(
        ["drive", *(f"{a} /h" for a in result.algorithms)],
        result.rows(),
        title=(
            f"Scheduling across drive generations "
            f"(batches of {result.length} random I/Os)"
        ),
    )


def main(
    config: ExperimentConfig | None = None,
) -> DriveGenerationsResult:
    """Run and report."""
    result = run(config)
    report(result)
    return result
