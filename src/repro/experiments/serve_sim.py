"""Serving-gateway experiment: tenant fairness and tail latency.

``python -m repro serve-sim`` drives the SLA gateway
(:class:`~repro.serve.Gateway`) over a multi-drive library at every
point of a drive-count grid, with a four-tenant million-user Zipf
workload (see :data:`DEFAULT_TENANTS`): weighted fair sharing, a
deadline-aware batch cut on the backend, and backpressure between the
two.  Per (drives, tenant) it reports the serving counters and the
p50/p99/p999 response-time percentiles the per-tenant SLOs are judged
against.

The headline checks — the CI gate — are **zero lost requests** (every
request completes, fails typed, or is shed typed; silence is a bug)
and **every tenant within its p999 SLO**.  Runs are deterministic:
same seed, same grid → byte-identical export.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.library.cartridge import Cartridge
from repro.library.system import MultiDriveSystem
from repro.online.batch_queue import DeadlineBatchPolicy
from repro.scheduling.base import get_scheduler
from repro.serve.config import ServeConfig, TenantConfig
from repro.serve.gateway import Gateway
from repro.serve.workload import TenantLoadSpec, zipf_serve_stream

#: Drive-count grid when the caller does not pass one.
DEFAULT_DRIVES = (1, 2, 4)

#: Cartridges on the shelf by default.
DEFAULT_CARTRIDGES = 8

#: The four-tier tenant population: a million simulated users, weighted
#: 8/4/2/1.  Premium tiers are smaller but hit harder per user and
#: carry finite SLO targets; the batch tier is best-effort.
DEFAULT_TENANTS = (
    TenantLoadSpec(
        name="gold", users=100_000, rate_per_hour=80.0, weight=8.0
    ),
    TenantLoadSpec(
        name="silver", users=200_000, rate_per_hour=120.0, weight=4.0
    ),
    TenantLoadSpec(
        name="bronze", users=300_000, rate_per_hour=180.0, weight=2.0
    ),
    TenantLoadSpec(
        name="batch", users=400_000, rate_per_hour=220.0, weight=1.0
    ),
)

#: Per-tenant p999 response-time targets (seconds); ``inf`` for the
#: best-effort tiers.  Generous against the default grid on purpose:
#: the CI gate should trip on regressions, not on noise.
DEFAULT_SLO_SECONDS = {
    "gold": 25_200.0,
    "silver": 36_000.0,
    "bronze": float("inf"),
    "batch": float("inf"),
}

#: Backend batch cut: grow for throughput, dispatch when the oldest
#: queued request is 30 simulated minutes from its one-hour deadline.
DEFAULT_DEADLINE_SECONDS = 3600.0
DEFAULT_CUT_SLACK_SECONDS = 1800.0

#: Backpressure: released-but-unfinished requests allowed in the
#: backend at once.
DEFAULT_BACKEND_DEPTH = 96

#: Simulated hours per scale (mirrors the other experiment drivers).
_HORIZON_HOURS = {"quick": 2.0, "full": 8.0, "paper": 24.0}

#: Smoke-scale tenant table: same shape, hundred-thousandth the users.
_SMOKE_TENANTS = tuple(
    TenantLoadSpec(
        name=spec.name,
        users=max(spec.users // 100, 1),
        rate_per_hour=spec.rate_per_hour,
        zipf_alpha=spec.zipf_alpha,
        weight=spec.weight,
    )
    for spec in DEFAULT_TENANTS
)


@dataclass(frozen=True)
class ServePoint:
    """One (drives, tenant) cell of the sweep."""

    drives: int
    cartridges: int
    tenant: str
    weight: float
    users: int
    submitted: int
    admitted: int
    released: int
    completed: int
    failed: int
    shed: int
    mean_response_seconds: float | None
    p50_response_seconds: float | None
    p99_response_seconds: float | None
    p999_response_seconds: float | None
    slo_seconds: float
    slo_violations: int
    slo_ok: bool
    run_lost: int
    run_degraded: bool


@dataclass(frozen=True)
class ServeSweepResult:
    """The sweep, in the tabular-result protocol."""

    label: str
    points: tuple[ServePoint, ...]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return [
            "drives", "cartridges", "tenant", "weight", "users",
            "submitted", "admitted", "released", "completed",
            "failed", "shed", "mean (s)", "p50 (s)", "p99 (s)",
            "p999 (s)", "slo (s)", "violations", "slo ok", "lost",
            "degraded",
        ]

    def rows(self) -> list[list]:
        """One row per (drives, tenant) cell."""
        return [
            [
                point.drives,
                point.cartridges,
                point.tenant,
                point.weight,
                point.users,
                point.submitted,
                point.admitted,
                point.released,
                point.completed,
                point.failed,
                point.shed,
                point.mean_response_seconds,
                point.p50_response_seconds,
                point.p99_response_seconds,
                point.p999_response_seconds,
                point.slo_seconds,
                point.slo_violations,
                point.slo_ok,
                point.run_lost,
                point.run_degraded,
            ]
            for point in self.points
        ]

    def to_dict(self) -> list[dict]:
        """Records for export (``inf`` SLOs become ``None`` for JSON)."""
        records = []
        for row in self.rows():
            record = dict(zip(self.headers(), row))
            if math.isinf(record["slo (s)"]):
                record["slo (s)"] = None
            records.append(record)
        return records

    @property
    def all_complete(self) -> bool:
        """Did every request get a typed outcome at every point?"""
        return all(point.run_lost == 0 for point in self.points)

    @property
    def slo_ok(self) -> bool:
        """Did every tenant make its p999 target at every point?"""
        return all(point.slo_ok for point in self.points)

    @property
    def total_users(self) -> int:
        """Simulated users behind one grid point's workload."""
        drives = self.points[0].drives if self.points else None
        return sum(
            point.users
            for point in self.points
            if point.drives == drives
        )


def _shelf(config: ExperimentConfig, cartridges: int) -> list[Cartridge]:
    """Deterministic cartridge shelf: tape-0, tape-1, ..."""
    from repro.geometry.generator import generate_tape

    return [
        Cartridge(
            f"tape-{index}",
            generate_tape(seed=config.tape_seed + index),
        )
        for index in range(cartridges)
    ]


def run_point(
    config: ExperimentConfig,
    drives: int,
    cartridges: int = DEFAULT_CARTRIDGES,
    tenants: tuple[TenantLoadSpec, ...] = DEFAULT_TENANTS,
    slo_seconds: dict[str, float] | None = None,
    horizon_hours: float | None = None,
    max_batch: int = 32,
    algorithm: str = "LOSS",
    deadline_seconds: float = DEFAULT_DEADLINE_SECONDS,
    cut_slack_seconds: float = DEFAULT_CUT_SLACK_SECONDS,
    backend_depth: int | None = DEFAULT_BACKEND_DEPTH,
    shelf: list[Cartridge] | None = None,
) -> list[ServePoint]:
    """Serve one multi-tenant stream at one drive count."""
    if horizon_hours is None:
        horizon_hours = _HORIZON_HOURS[config.scale]
    if slo_seconds is None:
        slo_seconds = DEFAULT_SLO_SECONDS
    if shelf is None:
        shelf = _shelf(config, cartridges)
    system = MultiDriveSystem(
        shelf,
        drives=drives,
        scheduler=get_scheduler(algorithm),
        policy=DeadlineBatchPolicy(
            max_batch=max_batch,
            deadline_seconds=deadline_seconds,
            cut_slack_seconds=cut_slack_seconds,
        ),
    )
    gateway = Gateway(
        ServeConfig(
            tenants=tuple(
                TenantConfig(
                    name=spec.name,
                    weight=spec.weight,
                    slo_seconds=slo_seconds.get(
                        spec.name, float("inf")
                    ),
                )
                for spec in tenants
            ),
            max_backend_depth=backend_depth,
        ),
        system=system,
    )
    stream = zipf_serve_stream(
        tenants,
        system.labels(),
        total_segments=shelf[0].geometry.total_segments,
        horizon_seconds=horizon_hours * 3600.0,
        seed=config.workload_seed,
    )
    report = gateway.run(stream)
    users = {spec.name: spec.users for spec in tenants}
    return [
        ServePoint(
            drives=drives,
            cartridges=len(shelf),
            tenant=stats.name,
            weight=stats.weight,
            users=users[stats.name],
            submitted=stats.submitted,
            admitted=stats.admitted,
            released=stats.released,
            completed=stats.completed,
            failed=stats.failed,
            shed=stats.shed,
            mean_response_seconds=stats.mean_seconds,
            p50_response_seconds=stats.p50_seconds,
            p99_response_seconds=stats.p99_seconds,
            p999_response_seconds=stats.p999_seconds,
            slo_seconds=stats.slo_seconds,
            slo_violations=stats.slo_violations,
            slo_ok=stats.slo_ok,
            run_lost=report.lost,
            run_degraded=report.degraded,
        )
        for stats in report.tenants
    ]


def run(
    config: ExperimentConfig | None = None,
    drives=None,
    cartridges: int = DEFAULT_CARTRIDGES,
    horizon_hours: float | None = None,
    max_batch: int = 32,
    algorithm: str = "LOSS",
    backend_depth: int | None = DEFAULT_BACKEND_DEPTH,
    smoke: bool = False,
) -> ServeSweepResult:
    """Sweep the drive grid under the four-tenant million-user load.

    ``smoke=True`` shrinks to the CI gate: 2 drives, a short horizon,
    and a 10k-user population — fast, still a real
    admit/release/complete cycle through every layer.
    """
    config = config or ExperimentConfig()
    tenants = DEFAULT_TENANTS
    if smoke:
        drives = (2,)
        tenants = _SMOKE_TENANTS
        if horizon_hours is None:
            horizon_hours = 0.5
    if drives is None:
        drives = DEFAULT_DRIVES
    shelf = _shelf(config, cartridges)
    points: list[ServePoint] = []
    for drive_count in drives:
        points.extend(
            run_point(
                config,
                drives=drive_count,
                cartridges=cartridges,
                tenants=tenants,
                horizon_hours=horizon_hours,
                max_batch=max_batch,
                algorithm=algorithm,
                backend_depth=backend_depth,
                shelf=shelf,
            )
        )
    return ServeSweepResult(label="serve-sim", points=tuple(points))


def report(result: ServeSweepResult) -> None:
    """Print the sweep table and the gate verdicts."""
    print_table(
        result.headers(),
        result.rows(),
        precision=3,
        title=(
            "SLA gateway sweep: tenant fairness and tail latency "
            f"({result.total_users:,} simulated users)"
        ),
    )
    if result.all_complete:
        print(
            "every request got a typed outcome at every grid point "
            "(zero lost requests)"
        )
    else:
        print("WARNING: requests were lost at some grid point")
    if result.slo_ok:
        print("every tenant within its p999 SLO at every grid point")
    else:
        print("WARNING: p999 SLO violated for some tenant")


def main(
    config: ExperimentConfig | None = None,
    drives=None,
    cartridges: int = DEFAULT_CARTRIDGES,
    horizon_hours: float | None = None,
    max_batch: int = 32,
    algorithm: str = "LOSS",
    backend_depth: int | None = DEFAULT_BACKEND_DEPTH,
    smoke: bool = False,
) -> ServeSweepResult:
    """Run and report."""
    result = run(
        config,
        drives=drives,
        cartridges=cartridges,
        horizon_hours=horizon_hours,
        max_batch=max_batch,
        algorithm=algorithm,
        backend_depth=backend_depth,
        smoke=smoke,
    )
    report(result)
    return result
