"""Optimality gaps of the heuristics (extension experiment).

The paper can compare heuristics against OPT only up to 12 requests.
Using the assignment-relaxation lower bound
(:mod:`repro.analysis.bounds`) we can bound every heuristic's distance
from optimal at any batch size: the gap to the bound is an upper bound
on the gap to OPT.

Caveat worth stating: the bound itself loosens as batches grow (it
ignores the path structure entirely), so large-N gaps overstate the
true distance from optimal; the *ordering* of algorithms at equal N is
the robust signal.  At small N, where OPT is available, the table
shows both (and the OPT row bounds how loose the bound is).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bounds import schedule_lower_bound
from repro.experiments.config import ExperimentConfig, OPT_MAX_LENGTH
from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.experiments.stats import RunningStats
from repro.geometry.generator import generate_tape
from repro.model.locate import LocateTimeModel
from repro.scheduling.base import get_scheduler
from repro.workload.random_uniform import UniformWorkload

#: Heuristics ranked in the table.
DEFAULT_ALGORITHMS: tuple[str, ...] = (
    "OPT", "LOSS", "LOSS+oropt", "SLTF", "SCAN", "WEAVE", "SORT", "FIFO",
)

#: Batch sizes: spanning OPT's range and far beyond it.
DEFAULT_LENGTHS: tuple[int, ...] = (8, 12, 48, 96, 192)


@dataclass(frozen=True)
class OptimalityResult(TabularResult):
    """Mean percent gap above the lower bound per (algorithm, N)."""

    algorithms: tuple[str, ...]
    lengths: tuple[int, ...]
    gaps: dict[tuple[str, int], RunningStats]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`: N, then one per algorithm."""
        return ["length", *self.algorithms]

    def rows(self) -> list[list]:
        """Rows: N, then mean gap % per algorithm ('-' if not run)."""
        rows = []
        for length in self.lengths:
            row: list = [length]
            for algorithm in self.algorithms:
                stats = self.gaps.get((algorithm, length))
                row.append(
                    None if stats is None or stats.count == 0
                    else stats.mean
                )
            rows.append(row)
        return rows


def run(
    config: ExperimentConfig | None = None,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    lengths: tuple[int, ...] = DEFAULT_LENGTHS,
    trials: int = 6,
) -> OptimalityResult:
    """Measure per-algorithm gaps above the lower bound."""
    config = config or ExperimentConfig()
    tape = generate_tape(seed=config.tape_seed)
    model = LocateTimeModel(tape)
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=config.workload_seed
    )
    schedulers = {name: get_scheduler(name) for name in algorithms}

    gaps: dict[tuple[str, int], RunningStats] = {}
    for length in lengths:
        for _ in range(trials):
            origin, batch = workload.sample_batch_with_origin(
                length, origin_at_start=False
            )
            bound = schedule_lower_bound(model, origin, batch)
            for name in algorithms:
                if name.startswith("OPT") and length > OPT_MAX_LENGTH:
                    continue
                schedule = schedulers[name].schedule(
                    model, origin, batch
                )
                gaps.setdefault((name, length), RunningStats()).add(
                    100.0 * (schedule.estimated_seconds / bound - 1.0)
                )
    return OptimalityResult(
        algorithms=algorithms, lengths=lengths, gaps=gaps
    )


def report(result: OptimalityResult) -> None:
    """Print the gap table."""
    print_table(
        ["N", *result.algorithms],
        result.rows(),
        precision=1,
        title=(
            "Optimality gaps: % above the assignment-relaxation lower "
            "bound (upper-bounds the distance from OPT)"
        ),
    )


def main(config: ExperimentConfig | None = None) -> OptimalityResult:
    """Run and report."""
    result = run(config)
    report(result)
    return result
