"""Optimality gaps of the heuristics (extension experiment).

The paper can compare heuristics against OPT only up to 12 requests.
This experiment bounds every heuristic's distance from optimal at any
batch size, two ways:

* **Lower-bound gaps** (the original table): the assignment-relaxation
  bound of :mod:`repro.analysis.bounds` upper-bounds the distance from
  OPT but loosens as batches grow, so large-N gaps overstate the true
  distance; the *ordering* of algorithms at equal N is the robust
  signal.
* **The LTSP frontier** (``--frontier``): the exact polynomial solver
  of :mod:`repro.scheduling.ltsp` is a true optimum for the linearized
  locate cost at *any* batch size, so past the Held–Karp ceiling
  (``OPT_MAX_LENGTH``) every heuristic's schedule is re-costed under
  the linear model and charted as a percent above the exact linear
  optimum — a gap that cannot be negative and does not loosen with N.
  The table also charts Bachmat's asymptotic space-time prediction
  (math/0601025, adapted to a bounded number of passes): total linear
  head travel approaches one sweep of the expected batch span plus the
  expected lead-in,
  ``rate * L * ((n - 1)/(n + 1) + 1/4)``.

The frontier gap is measured on *total linear head travel* (deadhead
plus read legs), the quantity the Cardonha/Cire-style ratio guarantees
bound and the one Bachmat's asymptote predicts; see
``docs/OPTIMALITY.md`` for how to read the chart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.bounds import schedule_lower_bound
from repro.constants import SCAN_SECONDS_PER_SECTION
from repro.experiments.config import ExperimentConfig, OPT_MAX_LENGTH
from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.experiments.stats import RunningStats
from repro.geometry.generator import generate_tape
from repro.geometry.tape import TAPE_PHYS_LENGTH
from repro.model.distance_matrix import out_positions
from repro.model.linearize import LinearizedModel
from repro.model.locate import LocateTimeModel
from repro.scheduling.base import get_scheduler
from repro.scheduling.estimator import locate_sequence_times
from repro.scheduling.request import request_lengths
from repro.workload.random_uniform import UniformWorkload

#: Heuristics ranked in the lower-bound table.
DEFAULT_ALGORITHMS: tuple[str, ...] = (
    "OPT", "LOSS", "LOSS+oropt", "SLTF", "SCAN", "WEAVE", "SORT", "FIFO",
)

#: Batch sizes: spanning OPT's range and far beyond it.
DEFAULT_LENGTHS: tuple[int, ...] = (8, 12, 48, 96, 192)

#: Strategies charted against the exact linear optimum.  ``LOSS+oropt``
#: is deliberately absent: its O(n^2)-per-round polish is too slow at
#: the frontier's large batch sizes.
DEFAULT_FRONTIER_ALGORITHMS: tuple[str, ...] = (
    "OPT", "LOSS", "SLTF", "SCAN",
    "LTSP-exact", "LTSP-repair", "LTSP-sweep", "LTSP-greedy",
)

#: Frontier batch sizes: through and far past the Held–Karp ceiling.
DEFAULT_FRONTIER_LENGTHS: tuple[int, ...] = (
    8, 12, 16, 48, 96, 192, 384, 768, 1536,
)


def bachmat_prediction_seconds(length: int) -> float:
    """Bachmat's asymptotic total-travel prediction for a batch of N.

    The space-time lower bound of math/0601025, adapted to a bounded
    number of passes: one sweep of the expected span of N uniform
    requests, ``(N - 1)/(N + 1)`` of the tape, plus the expected
    lead-in from a uniform head position to the nearer end of the
    span, ``1/4`` of the tape, all at scan speed.
    """
    span = (length - 1.0) / (length + 1.0)
    return SCAN_SECONDS_PER_SECTION * TAPE_PHYS_LENGTH * (span + 0.25)


@dataclass(frozen=True)
class FrontierResult(TabularResult):
    """Percent above the exact linear optimum per (algorithm, N).

    ``exact_seconds`` holds the optimum itself (mean total linear head
    travel of the exact LTSP order, seconds) and ``bachmat_seconds``
    the asymptotic prediction, so the table reads as: the frontier,
    where theory says it should converge, and how far above it each
    heuristic lands.
    """

    algorithms: tuple[str, ...]
    lengths: tuple[int, ...]
    gaps: dict[tuple[str, int], RunningStats]
    exact_seconds: dict[int, RunningStats]
    bachmat_seconds: dict[int, float]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return [
            "length", "exact_linear_seconds", "bachmat_seconds",
            *self.algorithms,
        ]

    def rows(self) -> list[list]:
        """One row per N: frontier, prediction, then gap % per algorithm."""
        rows = []
        for length in self.lengths:
            exact = self.exact_seconds.get(length)
            row: list = [
                length,
                None if exact is None or exact.count == 0 else exact.mean,
                self.bachmat_seconds.get(length),
            ]
            for algorithm in self.algorithms:
                stats = self.gaps.get((algorithm, length))
                row.append(
                    None if stats is None or stats.count == 0
                    else stats.mean
                )
            rows.append(row)
        return rows


@dataclass(frozen=True)
class OptimalityResult(TabularResult):
    """Mean percent gap above the lower bound per (algorithm, N)."""

    algorithms: tuple[str, ...]
    lengths: tuple[int, ...]
    gaps: dict[tuple[str, int], RunningStats]
    frontier: FrontierResult | None = field(default=None)

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`: N, then one per algorithm."""
        return ["length", *self.algorithms]

    def rows(self) -> list[list]:
        """Rows: N, then mean gap % per algorithm ('-' if not run)."""
        rows = []
        for length in self.lengths:
            row: list = [length]
            for algorithm in self.algorithms:
                stats = self.gaps.get((algorithm, length))
                row.append(
                    None if stats is None or stats.count == 0
                    else stats.mean
                )
            rows.append(row)
        return rows


def _linear_travel_seconds(linear: LinearizedModel, schedule) -> float:
    """Total linear head travel of a schedule: deadhead + read legs."""
    deadhead = float(locate_sequence_times(linear, schedule).sum())
    segments = schedule.segments()
    if segments.size == 0:
        return deadhead
    lengths = request_lengths(schedule.requests)
    geometry = linear.geometry
    exits = out_positions(segments, lengths, geometry.total_segments)
    read_legs = float(
        np.abs(
            geometry.phys_of(exits) - geometry.phys_of(segments)
        ).sum()
    ) * linear.seconds_per_section
    return deadhead + read_legs


def run_frontier(
    config: ExperimentConfig | None = None,
    algorithms: tuple[str, ...] = DEFAULT_FRONTIER_ALGORITHMS,
    lengths: tuple[int, ...] = DEFAULT_FRONTIER_LENGTHS,
    trials: int = 3,
) -> FrontierResult:
    """Chart every strategy against the exact linear optimum.

    Schedulers run against the *true* piecewise model (exactly as they
    would in production); the resulting orders are then re-costed under
    the linearized model and compared with the exact LTSP optimum for
    the same batch.  ``OPT`` is skipped past ``OPT_MAX_LENGTH``.
    """
    config = config or ExperimentConfig()
    tape = generate_tape(seed=config.tape_seed)
    model = LocateTimeModel(tape)
    linear = LinearizedModel(model)
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=config.workload_seed
    )
    exact = get_scheduler("LTSP-exact")
    schedulers = {name: get_scheduler(name) for name in algorithms}

    gaps: dict[tuple[str, int], RunningStats] = {}
    exact_seconds: dict[int, RunningStats] = {}
    for length in lengths:
        for _ in range(trials):
            origin, batch = workload.sample_batch_with_origin(
                length, origin_at_start=False
            )
            optimum = _linear_travel_seconds(
                linear, exact.schedule(linear, origin, batch)
            )
            exact_seconds.setdefault(length, RunningStats()).add(optimum)
            for name in algorithms:
                if name.startswith("OPT") and length > OPT_MAX_LENGTH:
                    continue
                schedule = schedulers[name].schedule(model, origin, batch)
                travel = _linear_travel_seconds(linear, schedule)
                gaps.setdefault((name, length), RunningStats()).add(
                    100.0 * (travel / optimum - 1.0)
                )
    return FrontierResult(
        algorithms=algorithms,
        lengths=lengths,
        gaps=gaps,
        exact_seconds=exact_seconds,
        bachmat_seconds={
            length: bachmat_prediction_seconds(length) for length in lengths
        },
    )


def run(
    config: ExperimentConfig | None = None,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    lengths: tuple[int, ...] = DEFAULT_LENGTHS,
    trials: int = 6,
    *,
    frontier: bool = False,
    frontier_algorithms: tuple[str, ...] = DEFAULT_FRONTIER_ALGORITHMS,
    frontier_lengths: tuple[int, ...] = DEFAULT_FRONTIER_LENGTHS,
    frontier_trials: int = 3,
) -> OptimalityResult:
    """Measure per-algorithm gaps above the lower bound.

    With ``frontier=True``, additionally run :func:`run_frontier` and
    attach its result.
    """
    config = config or ExperimentConfig()
    tape = generate_tape(seed=config.tape_seed)
    model = LocateTimeModel(tape)
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=config.workload_seed
    )
    schedulers = {name: get_scheduler(name) for name in algorithms}

    gaps: dict[tuple[str, int], RunningStats] = {}
    for length in lengths:
        for _ in range(trials):
            origin, batch = workload.sample_batch_with_origin(
                length, origin_at_start=False
            )
            bound = schedule_lower_bound(model, origin, batch)
            for name in algorithms:
                if name.startswith("OPT") and length > OPT_MAX_LENGTH:
                    continue
                schedule = schedulers[name].schedule(
                    model, origin, batch
                )
                gaps.setdefault((name, length), RunningStats()).add(
                    100.0 * (schedule.estimated_seconds / bound - 1.0)
                )
    frontier_result = (
        run_frontier(
            config,
            algorithms=frontier_algorithms,
            lengths=frontier_lengths,
            trials=frontier_trials,
        )
        if frontier
        else None
    )
    return OptimalityResult(
        algorithms=algorithms, lengths=lengths, gaps=gaps,
        frontier=frontier_result,
    )


def report(result: OptimalityResult) -> None:
    """Print the gap table (and the frontier table when present)."""
    print_table(
        ["N", *result.algorithms],
        result.rows(),
        precision=1,
        title=(
            "Optimality gaps: % above the assignment-relaxation lower "
            "bound (upper-bounds the distance from OPT)"
        ),
    )
    if result.frontier is not None:
        report_frontier(result.frontier)


def report_frontier(frontier: FrontierResult) -> None:
    """Print the LTSP frontier table."""
    print_table(
        ["N", "frontier s", "bachmat s", *frontier.algorithms],
        frontier.rows(),
        precision=1,
        title=(
            "LTSP frontier: exact linear optimum (s), Bachmat "
            "asymptote (s), and % of linear head travel above exact "
            "per algorithm"
        ),
    )


def main(
    config: ExperimentConfig | None = None, *, frontier: bool = False
) -> OptimalityResult:
    """Run and report."""
    result = run(config, frontier=frontier)
    report(result)
    return result
