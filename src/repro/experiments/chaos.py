"""Chaos experiment: sweep fault rates against the hardened system.

``python -m repro chaos`` services a Poisson stream on a
:class:`~repro.online.system.TertiaryStorageSystem` whose drive is
wrapped in a :class:`~repro.resilience.FaultInjector`, at each fault
rate of a sweep.  The headline number is the **eventual completion
ratio** — the fraction of requests that completed after in-place
retries and bounded requeues; the resilience layer's contract is that
it stays 1.0 at any plausible fault rate (a lost request is a bug, not
a statistic).  Response-time percentiles show what the retries cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.geometry.generator import generate_tape
from repro.obs.bus import EventBus
from repro.online.batch_queue import BatchPolicy
from repro.online.system import TertiaryStorageSystem
from repro.resilience.injection import FaultPlan
from repro.resilience.policy import ResilienceConfig, RetryPolicy
from repro.scheduling.base import get_scheduler
from repro.workload.arrivals import PoissonArrivals

#: Fault-rate grid when the caller does not pass one.
DEFAULT_FAULT_RATES = (0.0, 0.05, 0.1, 0.2)

#: Simulated hours per scale (mirrors the trace/cache-sim drivers).
_HORIZON_HOURS = {"quick": 2.0, "full": 8.0, "paper": 24.0}


@dataclass(frozen=True)
class ChaosPoint:
    """One fault rate's outcome."""

    fault_rate: float
    requests: int
    completed: int
    failed: int
    retries: int
    requeues: int
    faults_injected: int
    degraded: bool
    mean_response_seconds: float | None
    p50_response_seconds: float | None
    p90_response_seconds: float | None
    p99_response_seconds: float | None

    @property
    def completion_ratio(self) -> float:
        """Eventually-completed fraction (1.0 = nothing was lost)."""
        if self.requests == 0:
            return 1.0
        return self.completed / self.requests


@dataclass(frozen=True)
class ChaosResult:
    """The sweep, in the tabular-result protocol."""

    label: str
    points: tuple[ChaosPoint, ...]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return [
            "fault rate", "requests", "completed", "failed",
            "completion ratio", "retries", "requeues", "faults",
            "degraded", "mean (s)", "p50 (s)", "p90 (s)", "p99 (s)",
        ]

    def rows(self) -> list[list]:
        """One row per swept fault rate."""
        return [
            [
                point.fault_rate,
                point.requests,
                point.completed,
                point.failed,
                point.completion_ratio,
                point.retries,
                point.requeues,
                point.faults_injected,
                point.degraded,
                point.mean_response_seconds,
                point.p50_response_seconds,
                point.p90_response_seconds,
                point.p99_response_seconds,
            ]
            for point in self.points
        ]

    def to_dict(self) -> list[dict]:
        """Records for export."""
        return [dict(zip(self.headers(), row)) for row in self.rows()]

    @property
    def all_complete(self) -> bool:
        """Did every swept rate eventually complete every request?"""
        return all(
            point.completed == point.requests for point in self.points
        )


def run_point(
    config: ExperimentConfig,
    fault_rate: float,
    read_fault_probability: float = 0.0,
    reset_probability: float = 0.0,
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    max_attempts: int = 5,
    max_requeues: int = 2,
    max_batch: int = 32,
    algorithm: str = "LOSS",
) -> ChaosPoint:
    """Service one instrumented run at one fault rate."""
    if horizon_hours is None:
        horizon_hours = _HORIZON_HOURS[config.scale]
    tape = generate_tape(seed=config.tape_seed)
    bus = EventBus()
    retries = bus.collect("request.retry")
    faults = bus.collect("fault.injected")
    system = TertiaryStorageSystem(
        geometry=tape,
        scheduler=get_scheduler(algorithm),
        policy=BatchPolicy(max_batch=max_batch),
        bus=bus,
        resilience=ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=max_attempts, seed=config.workload_seed
            ),
            max_requeues=max_requeues,
        ),
        fault_plan=FaultPlan(
            locate_fault_probability=fault_rate,
            read_fault_probability=read_fault_probability,
            reset_probability=reset_probability,
            seed=config.workload_seed,
        ),
    )
    requests = PoissonArrivals(
        rate_per_hour=rate_per_hour,
        total_segments=tape.total_segments,
        seed=config.workload_seed,
    ).batch(horizon_hours * 3600.0)
    stats = system.run(requests)
    has_samples = stats.count > 0
    return ChaosPoint(
        fault_rate=fault_rate,
        requests=len(requests),
        completed=stats.count,
        failed=len(system.failed),
        retries=len(retries),
        requeues=system.requeues,
        faults_injected=len(faults),
        degraded=system.degraded,
        mean_response_seconds=(
            stats.mean_seconds if has_samples else None
        ),
        p50_response_seconds=(
            stats.percentile(50) if has_samples else None
        ),
        p90_response_seconds=(
            stats.percentile(90) if has_samples else None
        ),
        p99_response_seconds=(
            stats.percentile(99) if has_samples else None
        ),
    )


def run(
    config: ExperimentConfig | None = None,
    fault_rates=None,
    read_fault_probability: float = 0.0,
    reset_probability: float = 0.0,
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    max_attempts: int = 5,
    max_requeues: int = 2,
    max_batch: int = 32,
    algorithm: str = "LOSS",
) -> ChaosResult:
    """Sweep the fault-rate grid."""
    config = config or ExperimentConfig()
    if fault_rates is None:
        fault_rates = DEFAULT_FAULT_RATES
    points = tuple(
        run_point(
            config,
            fault_rate=rate,
            read_fault_probability=read_fault_probability,
            reset_probability=reset_probability,
            rate_per_hour=rate_per_hour,
            horizon_hours=horizon_hours,
            max_attempts=max_attempts,
            max_requeues=max_requeues,
            max_batch=max_batch,
            algorithm=algorithm,
        )
        for rate in fault_rates
    )
    return ChaosResult(label="chaos", points=points)


def report(result: ChaosResult) -> None:
    """Print the sweep table and the zero-loss verdict."""
    print_table(
        result.headers(),
        result.rows(),
        precision=3,
        title=(
            "Chaos sweep: eventual completion and response times "
            "under injected drive faults"
        ),
    )
    if result.all_complete:
        print(
            "all requests eventually completed at every fault rate "
            "(completion ratio 1.0)"
        )
    else:
        print("WARNING: requests were lost at some fault rate")


def main(
    config: ExperimentConfig | None = None,
    fault_rates=None,
    read_fault_probability: float = 0.0,
    reset_probability: float = 0.0,
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    max_attempts: int = 5,
    max_requeues: int = 2,
    max_batch: int = 32,
    algorithm: str = "LOSS",
) -> ChaosResult:
    """Run and report."""
    result = run(
        config,
        fault_rates=fault_rates,
        read_fault_probability=read_fault_probability,
        reset_probability=reset_probability,
        rate_per_hour=rate_per_hour,
        horizon_hours=horizon_hours,
        max_attempts=max_attempts,
        max_requeues=max_requeues,
        max_batch=max_batch,
        algorithm=algorithm,
    )
    report(result)
    return result
