"""Chaos experiments: fault sweeps against the hardened systems.

``python -m repro chaos`` services a Poisson stream on a
:class:`~repro.online.system.TertiaryStorageSystem` whose drive is
wrapped in a :class:`~repro.resilience.FaultInjector`, at each fault
rate of a sweep.  The headline number is the **eventual completion
ratio** — the fraction of requests that completed after in-place
retries and bounded requeues; the resilience layer's contract is that
it stays 1.0 at any plausible fault rate (a lost request is a bug, not
a statistic).  Response-time percentiles show what the retries cost.

``python -m repro chaos --library`` runs the durability variant on the
full multi-arm library: logical reads on a replicated
:class:`~repro.online.striping.StripedVolume` served by a
:class:`~repro.library.MultiDriveSystem` with media aging
(:class:`~repro.library.MediaAgingModel`), injected drive faults, and
deliberately *tight* retry budgets — so sub-requests really do fail on
individual cartridges and redundancy has to earn its keep.  The sweep
charts durability (completed logical reads), degraded reads, repair
traffic, and tail latency against the replica count.  Two gates:

* **zero silent loss** — every logical read ends as completed or
  surfaced-failed at every redundancy level (``lost == 0``);
* **redundancy protects** — no durability losses at ``replicas >= 2``
  (one surviving rotated copy is enough by construction; losing data
  through redundancy is a coordinator bug).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import print_table
from repro.geometry.generator import generate_tape
from repro.library.aging import MediaAgingModel
from repro.library.cartridge import Cartridge
from repro.library.system import MultiDriveSystem
from repro.obs.bus import EventBus
from repro.online.batch_queue import BatchPolicy
from repro.online.striping import StripedReadCoordinator, striped_volume
from repro.online.system import TertiaryStorageSystem
from repro.resilience.injection import FaultPlan
from repro.resilience.policy import ResilienceConfig, RetryPolicy
from repro.scheduling.base import get_scheduler
from repro.workload.arrivals import PoissonArrivals

#: Fault-rate grid when the caller does not pass one.
DEFAULT_FAULT_RATES = (0.0, 0.05, 0.1, 0.2)

#: Replica-count grid of the library durability sweep.
DEFAULT_REPLICAS = (1, 2, 3)

#: Simulated hours per scale (mirrors the trace/cache-sim drivers).
_HORIZON_HOURS = {"quick": 2.0, "full": 8.0, "paper": 24.0}


@dataclass(frozen=True)
class ChaosPoint:
    """One fault rate's outcome."""

    fault_rate: float
    requests: int
    completed: int
    failed: int
    retries: int
    requeues: int
    faults_injected: int
    degraded: bool
    mean_response_seconds: float | None
    p50_response_seconds: float | None
    p90_response_seconds: float | None
    p99_response_seconds: float | None

    @property
    def completion_ratio(self) -> float:
        """Eventually-completed fraction (1.0 = nothing was lost)."""
        if self.requests == 0:
            return 1.0
        return self.completed / self.requests


@dataclass(frozen=True)
class ChaosResult:
    """The sweep, in the tabular-result protocol."""

    label: str
    points: tuple[ChaosPoint, ...]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return [
            "fault rate", "requests", "completed", "failed",
            "completion ratio", "retries", "requeues", "faults",
            "degraded", "mean (s)", "p50 (s)", "p90 (s)", "p99 (s)",
        ]

    def rows(self) -> list[list]:
        """One row per swept fault rate."""
        return [
            [
                point.fault_rate,
                point.requests,
                point.completed,
                point.failed,
                point.completion_ratio,
                point.retries,
                point.requeues,
                point.faults_injected,
                point.degraded,
                point.mean_response_seconds,
                point.p50_response_seconds,
                point.p90_response_seconds,
                point.p99_response_seconds,
            ]
            for point in self.points
        ]

    def to_dict(self) -> list[dict]:
        """Records for export."""
        return [dict(zip(self.headers(), row)) for row in self.rows()]

    @property
    def all_complete(self) -> bool:
        """Did every swept rate eventually complete every request?"""
        return all(
            point.completed == point.requests for point in self.points
        )


def run_point(
    config: ExperimentConfig,
    fault_rate: float,
    read_fault_probability: float = 0.0,
    reset_probability: float = 0.0,
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    max_attempts: int = 5,
    max_requeues: int = 2,
    max_batch: int = 32,
    algorithm: str = "LOSS",
) -> ChaosPoint:
    """Service one instrumented run at one fault rate."""
    if horizon_hours is None:
        horizon_hours = _HORIZON_HOURS[config.scale]
    tape = generate_tape(seed=config.tape_seed)
    bus = EventBus()
    retries = bus.collect("request.retry")
    faults = bus.collect("fault.injected")
    system = TertiaryStorageSystem(
        geometry=tape,
        scheduler=get_scheduler(algorithm),
        policy=BatchPolicy(max_batch=max_batch),
        bus=bus,
        resilience=ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=max_attempts, seed=config.workload_seed
            ),
            max_requeues=max_requeues,
        ),
        fault_plan=FaultPlan(
            locate_fault_probability=fault_rate,
            read_fault_probability=read_fault_probability,
            reset_probability=reset_probability,
            seed=config.workload_seed,
        ),
    )
    requests = PoissonArrivals(
        rate_per_hour=rate_per_hour,
        total_segments=tape.total_segments,
        seed=config.workload_seed,
    ).batch(horizon_hours * 3600.0)
    stats = system.run(requests)
    has_samples = stats.count > 0
    return ChaosPoint(
        fault_rate=fault_rate,
        requests=len(requests),
        completed=stats.count,
        failed=len(system.failed),
        retries=len(retries),
        requeues=system.requeues,
        faults_injected=len(faults),
        degraded=system.degraded,
        mean_response_seconds=(
            stats.mean_seconds if has_samples else None
        ),
        p50_response_seconds=(
            stats.percentile(50) if has_samples else None
        ),
        p90_response_seconds=(
            stats.percentile(90) if has_samples else None
        ),
        p99_response_seconds=(
            stats.percentile(99) if has_samples else None
        ),
    )


def run(
    config: ExperimentConfig | None = None,
    fault_rates=None,
    read_fault_probability: float = 0.0,
    reset_probability: float = 0.0,
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    max_attempts: int = 5,
    max_requeues: int = 2,
    max_batch: int = 32,
    algorithm: str = "LOSS",
) -> ChaosResult:
    """Sweep the fault-rate grid."""
    config = config or ExperimentConfig()
    if fault_rates is None:
        fault_rates = DEFAULT_FAULT_RATES
    points = tuple(
        run_point(
            config,
            fault_rate=rate,
            read_fault_probability=read_fault_probability,
            reset_probability=reset_probability,
            rate_per_hour=rate_per_hour,
            horizon_hours=horizon_hours,
            max_attempts=max_attempts,
            max_requeues=max_requeues,
            max_batch=max_batch,
            algorithm=algorithm,
        )
        for rate in fault_rates
    )
    return ChaosResult(label="chaos", points=points)


def report(result: ChaosResult) -> None:
    """Print the sweep table and the zero-loss verdict."""
    print_table(
        result.headers(),
        result.rows(),
        precision=3,
        title=(
            "Chaos sweep: eventual completion and response times "
            "under injected drive faults"
        ),
    )
    if result.all_complete:
        print(
            "all requests eventually completed at every fault rate "
            "(completion ratio 1.0)"
        )
    else:
        print("WARNING: requests were lost at some fault rate")


def main(
    config: ExperimentConfig | None = None,
    fault_rates=None,
    read_fault_probability: float = 0.0,
    reset_probability: float = 0.0,
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    max_attempts: int = 5,
    max_requeues: int = 2,
    max_batch: int = 32,
    algorithm: str = "LOSS",
) -> ChaosResult:
    """Run and report."""
    result = run(
        config,
        fault_rates=fault_rates,
        read_fault_probability=read_fault_probability,
        reset_probability=reset_probability,
        rate_per_hour=rate_per_hour,
        horizon_hours=horizon_hours,
        max_attempts=max_attempts,
        max_requeues=max_requeues,
        max_batch=max_batch,
        algorithm=algorithm,
    )
    report(result)
    return result


# -- the library durability sweep --------------------------------------------


@dataclass(frozen=True)
class LibraryChaosPoint:
    """One redundancy level's outcome."""

    replicas: int
    drives: int
    arms: int
    cartridges: int
    reads: int
    completed: int
    failed_reads: int
    lost: int
    degraded_reads: int
    repairs_started: int
    repairs_completed: int
    repairs_failed: int
    sub_failures: int
    requeues: int
    faults_injected: int
    mean_response_seconds: float | None
    p50_response_seconds: float | None
    p99_response_seconds: float | None
    max_arm_occupancy: float
    makespan_seconds: float

    @property
    def durability(self) -> float:
        """Fraction of logical reads that returned data."""
        if self.reads == 0:
            return 1.0
        return self.completed / self.reads


@dataclass(frozen=True)
class LibraryChaosResult:
    """The durability sweep, in the tabular-result protocol."""

    label: str
    points: tuple[LibraryChaosPoint, ...]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return [
            "replicas", "drives", "arms", "reads", "completed",
            "failed", "lost", "durability", "degraded", "repairs",
            "repaired", "repair fail", "sub fail", "requeues",
            "faults", "mean (s)", "p50 (s)", "p99 (s)", "arm occ",
        ]

    def rows(self) -> list[list]:
        """One row per redundancy level."""
        return [
            [
                point.replicas,
                point.drives,
                point.arms,
                point.reads,
                point.completed,
                point.failed_reads,
                point.lost,
                point.durability,
                point.degraded_reads,
                point.repairs_started,
                point.repairs_completed,
                point.repairs_failed,
                point.sub_failures,
                point.requeues,
                point.faults_injected,
                point.mean_response_seconds,
                point.p50_response_seconds,
                point.p99_response_seconds,
                point.max_arm_occupancy,
            ]
            for point in self.points
        ]

    def to_dict(self) -> list[dict]:
        """Records for export."""
        return [dict(zip(self.headers(), row)) for row in self.rows()]

    @property
    def zero_lost(self) -> bool:
        """Was every logical read accounted for at every level?"""
        return all(point.lost == 0 for point in self.points)

    @property
    def redundancy_protects(self) -> bool:
        """Did every replicated level (>= 2 copies) lose nothing?"""
        return all(
            point.failed_reads == 0
            for point in self.points
            if point.replicas >= 2
        )

    @property
    def ok(self) -> bool:
        """The CI gate: both durability invariants hold."""
        return self.zero_lost and self.redundancy_protects


def run_library_point(
    config: ExperimentConfig,
    replicas: int,
    drives: int = 4,
    arms: int = 2,
    cartridges: int = 6,
    stripe_unit: int = 4,
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    locate_fault_probability: float = 0.05,
    read_fault_probability: float = 0.05,
    max_attempts: int = 2,
    max_requeues: int = 0,
    max_batch: int = 16,
    algorithm: str = "LOSS",
) -> LibraryChaosPoint:
    """Service one logical-read stream at one redundancy level.

    The retry budgets default *tight* (two attempts, no requeues) so a
    faulted cartridge genuinely fails sub-requests and the replica
    fallback is exercised — the sweep measures what redundancy buys,
    not what retries hide.
    """
    if horizon_hours is None:
        horizon_hours = _HORIZON_HOURS[config.scale]
    shelf = [
        Cartridge(
            f"tape-{index}",
            generate_tape(seed=config.tape_seed + index),
        )
        for index in range(cartridges)
    ]
    bus = EventBus()
    faults = bus.collect("fault.injected")
    system = MultiDriveSystem(
        shelf,
        drives=drives,
        arms=arms,
        scheduler=get_scheduler(algorithm),
        policy=BatchPolicy(max_batch=max_batch),
        bus=bus,
        resilience=ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=max_attempts, seed=config.workload_seed
            ),
            max_requeues=max_requeues,
        ),
        fault_plan=FaultPlan(
            locate_fault_probability=locate_fault_probability,
            read_fault_probability=read_fault_probability,
            seed=config.workload_seed,
        ),
        aging=MediaAgingModel(seed=config.tape_seed),
    )
    volume = striped_volume(
        shelf, stripe_unit=stripe_unit, replicas=replicas
    )
    coordinator = StripedReadCoordinator(system, volume)
    rng = np.random.default_rng(config.workload_seed)
    rate_per_second = rate_per_hour / 3600.0
    horizon_seconds = horizon_hours * 3600.0
    system.begin()
    clock = 0.0
    while True:
        clock += float(rng.exponential(1.0 / rate_per_second))
        if clock >= horizon_seconds:
            break
        length = int(rng.integers(1, stripe_unit + 1))
        segment = int(
            rng.integers(0, volume.logical_total - length + 1)
        )
        coordinator.submit(clock, segment, length=length)
    system.finish()
    stats = coordinator.stats
    has_samples = stats.count > 0
    makespan = system.clock_seconds
    occupancies = system.robot.occupancies(makespan)
    return LibraryChaosPoint(
        replicas=replicas,
        drives=drives,
        arms=arms,
        cartridges=cartridges,
        reads=coordinator.reads,
        completed=coordinator.completed,
        failed_reads=len(coordinator.failed_reads),
        lost=coordinator.lost,
        degraded_reads=coordinator.degraded_reads,
        repairs_started=coordinator.repairs_started,
        repairs_completed=coordinator.repairs_completed,
        repairs_failed=coordinator.repairs_failed,
        sub_failures=len(system.failed),
        requeues=system.requeues,
        faults_injected=len(faults),
        mean_response_seconds=(
            stats.mean_seconds if has_samples else None
        ),
        p50_response_seconds=(
            stats.percentile(50) if has_samples else None
        ),
        p99_response_seconds=(
            stats.percentile(99) if has_samples else None
        ),
        max_arm_occupancy=(
            max(occupancies) if occupancies else 0.0
        ),
        makespan_seconds=makespan,
    )


def run_library(
    config: ExperimentConfig | None = None,
    replicas=None,
    drives: int = 4,
    arms: int = 2,
    cartridges: int = 6,
    stripe_unit: int = 4,
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    smoke: bool = False,
) -> LibraryChaosResult:
    """Sweep durability and tail latency against the replica count.

    ``smoke=True`` shrinks the run to the CI gate: a short horizon at
    redundancy levels 1 and 2 — fast, and still exercising degraded
    reads, repair traffic, and both durability invariants.
    """
    config = config or ExperimentConfig()
    if smoke:
        if replicas is None:
            replicas = (1, 2)
        if horizon_hours is None:
            horizon_hours = 1.0
    if replicas is None:
        replicas = DEFAULT_REPLICAS
    points = tuple(
        run_library_point(
            config,
            replicas=count,
            drives=drives,
            arms=arms,
            cartridges=cartridges,
            stripe_unit=stripe_unit,
            rate_per_hour=rate_per_hour,
            horizon_hours=horizon_hours,
        )
        for count in replicas
    )
    return LibraryChaosResult(label="chaos-library", points=points)


def report_library(result: LibraryChaosResult) -> None:
    """Print the durability table and both gate verdicts."""
    print_table(
        result.headers(),
        result.rows(),
        precision=3,
        title=(
            "Library chaos sweep: durability and tail latency vs "
            "redundancy under aging, faults, and repair traffic"
        ),
    )
    if result.zero_lost:
        print(
            "every logical read was accounted for at every "
            "redundancy level (zero silent loss)"
        )
    else:
        print("WARNING: logical reads were silently lost")
    if result.redundancy_protects:
        print("no durability losses at any replicated level (>= 2 copies)")
    else:
        print("WARNING: data was lost despite redundancy")


def main_library(
    config: ExperimentConfig | None = None,
    replicas=None,
    drives: int = 4,
    arms: int = 2,
    cartridges: int = 6,
    stripe_unit: int = 4,
    rate_per_hour: float = 120.0,
    horizon_hours: float | None = None,
    smoke: bool = False,
) -> LibraryChaosResult:
    """Run and report the library durability sweep."""
    result = run_library(
        config,
        replicas=replicas,
        drives=drives,
        arms=arms,
        cartridges=cartridges,
        stripe_unit=stripe_unit,
        rate_per_hour=rate_per_hour,
        horizon_hours=horizon_hours,
        smoke=smoke,
    )
    report_library(result)
    return result
