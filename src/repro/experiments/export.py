"""Exporting experiment results to CSV and JSON.

The drivers print paper-style tables; for plotting or regression
tracking, the same results can be written to files.  Export dispatches
on the tabular result protocol of
:mod:`repro.experiments.result` — any object with ``to_dict()``
(returning records), or with ``rows()``/``headers()``, exports — so
new experiments and the telemetry layer's
:class:`~repro.obs.trace.TraceSummary` need no exporter registration.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.runner import PerLocateResult
from repro.experiments.validation import ValidationResult


def per_locate_to_rows(result: PerLocateResult) -> list[dict]:
    """Flatten a Figure 4/5 result into records.

    Kept as a thin wrapper over the result's own
    :meth:`~repro.experiments.runner.PerLocateResult.to_dict`.
    """
    return result.to_dict()


def validation_to_rows(result: ValidationResult) -> list[dict]:
    """Flatten a Figure 8/9 result into records (wrapper, see above)."""
    return result.to_dict()


def result_to_rows(result) -> list[dict]:
    """Flatten any tabular result into records.

    Dispatches on the protocol, not on concrete types: ``to_dict()``
    wins if present; otherwise ``rows()`` is zipped with ``headers()``
    (or positional ``colN`` names when headers are missing too).
    """
    to_dict = getattr(result, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    rows_method = getattr(result, "rows", None)
    if callable(rows_method):
        rows = rows_method()
        headers_method = getattr(result, "headers", None)
        if callable(headers_method):
            names = headers_method()
        else:
            names = [f"col{i}" for i in range(len(rows[0]))] if rows else []
        return [dict(zip(names, row)) for row in rows]
    raise TypeError(
        f"don't know how to export {type(result).__name__}: it has "
        "neither to_dict() nor rows()"
    )


def write_csv(result, path: str | Path) -> Path:
    """Write a result as CSV; returns the path written."""
    path = Path(path)
    records = result_to_rows(result)
    if not records:
        raise ValueError("nothing to export")
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(records[0]))
        writer.writeheader()
        writer.writerows(records)
    return path


def write_json(result, path: str | Path) -> Path:
    """Write a result as JSON records; returns the path written."""
    path = Path(path)
    records = result_to_rows(result)
    path.write_text(json.dumps(records, indent=1))
    return path


def write_result(result, path: str | Path) -> Path:
    """Dispatch on the file extension (.csv or .json)."""
    path = Path(path)
    if path.suffix == ".csv":
        return write_csv(result, path)
    if path.suffix == ".json":
        return write_json(result, path)
    raise ValueError(
        f"unsupported export extension {path.suffix!r} "
        "(use .csv or .json)"
    )
