"""Exporting experiment results to CSV and JSON.

The drivers print paper-style tables; for plotting or regression
tracking, the same results can be written to files.  Every exporter
takes the result object the corresponding ``run()`` returned, so the
CLI's ``--out`` flag (and any script) can persist whatever it just
computed.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.runner import PerLocateResult
from repro.experiments.validation import ValidationResult


def per_locate_to_rows(result: PerLocateResult) -> list[dict]:
    """Flatten a Figure 4/5 result into records."""
    records = []
    for (algorithm, length), point in sorted(result.points.items()):
        if point.total.count == 0:
            continue
        records.append(
            {
                "algorithm": algorithm,
                "length": length,
                "trials": point.total.count,
                "mean_total_seconds": point.total.mean,
                "std_total_seconds": point.total.std,
                "seconds_per_locate": point.per_locate_mean,
                "cpu_seconds": (
                    point.cpu.mean if point.cpu.count else None
                ),
            }
        )
    return records


def validation_to_rows(result: ValidationResult) -> list[dict]:
    """Flatten a Figure 8/9 result into records."""
    return [
        {
            "label": result.label,
            "length": point.length,
            "trials": point.percent_error.count,
            "mean_percent_error": point.mean,
            "std_percent_error": point.percent_error.std,
        }
        for point in result.points
    ]


def result_to_rows(result) -> list[dict]:
    """Flatten any known result type into records."""
    if isinstance(result, PerLocateResult):
        return per_locate_to_rows(result)
    if isinstance(result, ValidationResult):
        return validation_to_rows(result)
    if hasattr(result, "rows"):
        rows = result.rows()
        if hasattr(result, "headers"):
            names = result.headers()
        else:
            names = [f"col{i}" for i in range(len(rows[0]))] if rows else []
        return [dict(zip(names, row)) for row in rows]
    raise TypeError(
        f"don't know how to export {type(result).__name__}"
    )


def write_csv(result, path: str | Path) -> Path:
    """Write a result as CSV; returns the path written."""
    path = Path(path)
    records = result_to_rows(result)
    if not records:
        raise ValueError("nothing to export")
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(records[0]))
        writer.writeheader()
        writer.writerows(records)
    return path


def write_json(result, path: str | Path) -> Path:
    """Write a result as JSON records; returns the path written."""
    path = Path(path)
    records = result_to_rows(result)
    path.write_text(json.dumps(records, indent=1))
    return path


def write_result(result, path: str | Path) -> Path:
    """Dispatch on the file extension (.csv or .json)."""
    path = Path(path)
    if path.suffix == ".csv":
        return write_csv(result, path)
    if path.suffix == ".json":
        return write_json(result, path)
    raise ValueError(
        f"unsupported export extension {path.suffix!r} "
        "(use .csv or .json)"
    )
