"""The model-driven simulation loop of Figure 3.

For each schedule length ``N`` on the grid, the runner draws ``1 + N``
distinct uniform segments with ``lrand48`` (the first being the initial
head position, or 0 for the beginning-of-tape scenario), schedules the
batch with every algorithm under test, estimates each schedule's
execution time with the locate-time model, and accumulates mean and
standard deviation of the total time and the time per locate — exactly
the paper's experiment, with configurable trial counts.

Two execution paths produce the sweep:

* ``config.seed_mode == "per-trial"`` (default) — every trial draws
  from its own derived seed stream, which lets
  :mod:`repro.experiments.parallel` fan trials out over ``workers``
  processes with bit-identical statistics for every worker count;
* ``config.seed_mode == "legacy"`` — the seed repo's single sequential
  ``lrand48`` stream, kept for bit-compatibility with pre-parallel
  results; serial only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.constants import SEGMENT_TRANSFER_SECONDS
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig, OPT_MAX_LENGTH
from repro.experiments.result import TabularResult
from repro.experiments.stats import RunningStats
from repro.geometry.generator import generate_tape
from repro.model.locate import LocateTimeModel
from repro.scheduling.base import get_scheduler
from repro.workload.random_uniform import UniformWorkload

#: Algorithms plotted in Figures 4 and 5.
DEFAULT_ALGORITHMS: tuple[str, ...] = (
    "FIFO", "SORT", "SLTF", "SCAN", "WEAVE", "LOSS", "OPT", "READ",
)


@dataclass
class SeriesPoint:
    """Accumulated results for one (algorithm, schedule length) cell."""

    algorithm: str
    length: int
    total: RunningStats = field(default_factory=RunningStats)
    cpu: RunningStats = field(default_factory=RunningStats)

    @property
    def per_locate_mean(self) -> float:
        """Mean execution seconds per request — the Figures 4/5 metric."""
        return self.total.mean / self.length

    @property
    def per_locate_std(self) -> float:
        """Standard deviation of the *per-request mean* of a trial.

        This is ``std(total) / length`` — the spread of the
        batch-averaged time across trials — **not** the standard
        deviation of individual locate times within a batch.  Because a
        trial's per-request mean averages ``length`` (correlated)
        locates, this shrinks as schedules grow even when single-locate
        variability does not.  With fewer than two trials it is 0.0
        (see :attr:`RunningStats.variance`).
        """
        return self.total.std / self.length

    @property
    def locate_only_mean(self) -> float:
        """Mean positioning-only seconds (transfers removed).

        Computed as ``mean(total) - length * SEGMENT_TRANSFER_SECONDS``
        and clamped at 0.0: with no accumulated trials (``mean == 0``)
        or at scales where the fixed transfer estimate exceeds the
        simulated total, the subtraction would go negative, which has
        no physical meaning — the clamp makes the degenerate cells read
        as "no positioning cost" instead.
        """
        return max(
            0.0, self.total.mean - self.length * SEGMENT_TRANSFER_SECONDS
        )


@dataclass
class PerLocateResult(TabularResult):
    """Output of :func:`run_per_locate`: the Figure 4/5 data."""

    origin_at_start: bool
    algorithms: tuple[str, ...]
    lengths: tuple[int, ...]
    points: dict[tuple[str, int], SeriesPoint]

    def point(self, algorithm: str, length: int) -> SeriesPoint:
        """One cell of the figure."""
        return self.points[(algorithm, length)]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`: length, then one per algorithm."""
        return ["length", *self.algorithms]

    def to_dict(self) -> list[dict]:
        """One record per populated cell, with the full statistics
        (richer than the printed table, which keeps only the means)."""
        records = []
        for (algorithm, length), point in sorted(self.points.items()):
            if point.total.count == 0:
                continue
            records.append(
                {
                    "algorithm": algorithm,
                    "length": length,
                    "trials": point.total.count,
                    "mean_total_seconds": point.total.mean,
                    "std_total_seconds": point.total.std,
                    "seconds_per_locate": point.per_locate_mean,
                    "cpu_seconds": (
                        point.cpu.mean if point.cpu.count else None
                    ),
                }
            )
        return records

    def rows(self) -> list[list]:
        """Figure-style rows: length column then one column per
        algorithm (mean seconds per locate; '-' where not run)."""
        rows = []
        for length in self.lengths:
            row: list = [length]
            for algorithm in self.algorithms:
                cell = self.points.get((algorithm, length))
                row.append(
                    None if cell is None or cell.total.count == 0
                    else cell.per_locate_mean
                )
            rows.append(row)
        return rows


def run_per_locate(
    config: ExperimentConfig,
    origin_at_start: bool,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    measure_cpu: bool = False,
    workers: int | None = 1,
    bus=None,
) -> PerLocateResult:
    """Run the Figure 4 (random start) / Figure 5 (BOT start) sweep.

    Parameters
    ----------
    config:
        Grid, seeds, trial scale, and seed mode.
    origin_at_start:
        False for Figure 4 (random initial position), True for
        Figure 5 (head at beginning of tape, the fresh-mount scenario).
    algorithms:
        Registered scheduler names.  OPT is automatically restricted to
        the paper's range (N <= 12).
    measure_cpu:
        Also record scheduling CPU time per call (the Figure 6 data).
    workers:
        Process count for the parallel engine (``None``/``0`` = all
        CPUs).  Any value yields bit-identical statistics under the
        default ``per-trial`` seed mode; the ``legacy`` seed mode
        requires ``workers=1``.
    bus:
        Optional :class:`~repro.obs.bus.EventBus` receiving
        ``experiment.*`` progress events.
    """
    if config.seed_mode == "legacy":
        if workers not in (None, 0, 1):
            raise ExperimentError(
                "seed_mode='legacy' replays one sequential lrand48 "
                "stream and cannot run on multiple workers; use the "
                "default per-trial seed mode for workers > 1"
            )
        return _run_per_locate_legacy(
            config, origin_at_start, algorithms, measure_cpu
        )
    from repro.experiments.parallel import run_per_locate_sweep

    return run_per_locate_sweep(
        config,
        origin_at_start,
        algorithms=algorithms,
        measure_cpu=measure_cpu,
        workers=workers,
        bus=bus,
    )


def _run_per_locate_legacy(
    config: ExperimentConfig,
    origin_at_start: bool,
    algorithms: tuple[str, ...],
    measure_cpu: bool,
) -> PerLocateResult:
    """The seed repo's serial loop: one shared ``lrand48`` stream."""
    tape = generate_tape(seed=config.tape_seed)
    model = LocateTimeModel(tape)
    schedulers = {name: get_scheduler(name) for name in algorithms}
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=config.workload_seed
    )

    points: dict[tuple[str, int], SeriesPoint] = {}
    for length in config.effective_lengths:
        trials = config.trials(length)
        opt_budget = min(trials, config.opt_trials(length))
        for name in algorithms:
            points[(name, length)] = SeriesPoint(name, length)
        for trial in range(trials):
            origin, batch = workload.sample_batch_with_origin(
                length, origin_at_start
            )
            for name in algorithms:
                if name.startswith("OPT") and (
                    length > OPT_MAX_LENGTH or trial >= opt_budget
                ):
                    continue
                started = time.perf_counter() if measure_cpu else 0.0
                schedule = schedulers[name].schedule(model, origin, batch)
                if measure_cpu:
                    points[(name, length)].cpu.add(
                        time.perf_counter() - started
                    )
                points[(name, length)].total.add(
                    schedule.estimated_seconds
                )
    return PerLocateResult(
        origin_at_start=origin_at_start,
        algorithms=tuple(algorithms),
        lengths=config.effective_lengths,
        points=points,
    )
