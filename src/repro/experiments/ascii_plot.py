"""ASCII line plots for experiment figures.

The experiment drivers print tables; this module renders the same
series as terminal line charts so a run's *shape* — who wins, where
curves cross — can be eyeballed against the paper's figures without a
plotting stack.  Log-scale axes are supported because Figures 4–6 are
log-log plots.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log-scale axes need positive values")
        return math.log10(value)
    return value


def render_series(
    x_values: Sequence[float],
    series: dict[str, Sequence[float | None]],
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    title: str | None = None,
) -> str:
    """Render named series over shared x values as an ASCII chart.

    Parameters
    ----------
    x_values:
        Shared x coordinates.
    series:
        Mapping of series name to y values (``None`` marks a missing
        point, e.g. OPT beyond its size limit).
    width, height:
        Character-grid dimensions of the plotting area.
    log_x, log_y:
        Use log10 axes (the paper's figures are log-log).
    title:
        Optional heading line.
    """
    if not series:
        raise ValueError("need at least one series")
    points = []
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for "
                f"{len(x_values)} x values"
            )
        for x, y in zip(x_values, ys):
            if y is not None:
                points.append((float(x), float(y)))
    if not points:
        raise ValueError("all series are empty")

    xs = [_transform(x, log_x) for x, _ in points]
    ys = [_transform(y, log_y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for x, y in zip(x_values, values):
            if y is None:
                continue
            col = round(
                (_transform(float(x), log_x) - x_lo) / x_span * (width - 1)
            )
            row = round(
                (_transform(float(y), log_y) - y_lo) / y_span * (height - 1)
            )
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    y_top = 10 ** y_hi if log_y else y_hi
    y_bottom = 10 ** y_lo if log_y else y_lo
    lines.append(f"{y_top:10.1f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_bottom:10.1f} +" + "-" * width + "+")
    x_left = 10 ** x_lo if log_x else x_lo
    x_right = 10 ** x_hi if log_x else x_hi
    lines.append(
        " " * 12
        + f"{x_left:g}".ljust(width // 2)
        + f"{x_right:g}".rjust(width - width // 2)
    )
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def render_per_locate_result(result, width: int = 72,
                             height: int = 20) -> str:
    """Chart a Figure 4/5 result (log-log, like the paper)."""
    series: dict[str, list[float | None]] = {}
    for algorithm in result.algorithms:
        values: list[float | None] = []
        for length in result.lengths:
            point = result.points.get((algorithm, length))
            if point is None or point.total.count == 0:
                values.append(None)
            else:
                values.append(point.per_locate_mean)
        series[algorithm] = values
    return render_series(
        list(result.lengths),
        series,
        width=width,
        height=height,
        log_x=True,
        log_y=True,
        title=(
            "seconds per locate vs schedule length "
            f"({'BOT' if result.origin_at_start else 'random'} start)"
        ),
    )
