"""Figure 10 — sensitivity of LOSS to locate-model errors.

The Section 7 error model: given an error amount ``E``, the perturbed
model returns ``locate_time(S, D) + E`` for even destinations and
``- E`` for odd ones.  LOSS schedules are generated with the perturbed
model; the *increase* in true execution time over the unperturbed
schedule measures how badly the error misleads the greedy algorithm.

Published findings this reproduces:

* E <= 2 s has little effect; E = 10 s degrades schedules by 1–2 %;
* the effect is small below ~4 locates (requests far apart) and above
  ~700 (schedules become section-to-section sequential);
* OPT is completely immune: the even/odd error adds the same constant
  to every complete schedule, so the optimal order never changes
  (exactly zero increase, which this driver also checks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig, OPT_MAX_LENGTH
from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.experiments.stats import RunningStats
from repro.geometry.generator import generate_tape
from repro.model.locate import LocateTimeModel
from repro.model.perturb import EvenOddPerturbation
from repro.scheduling.estimator import estimate_schedule_seconds
from repro.scheduling.loss import LossScheduler
from repro.scheduling.opt import OptScheduler
from repro.workload.random_uniform import UniformWorkload

#: The paper's error amounts (seconds).
ERROR_AMOUNTS: tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 10.0)


@dataclass
class Figure10Result(TabularResult):
    """Mean % execution-time increase per (E, schedule length)."""

    lengths: tuple[int, ...]
    errors: tuple[float, ...]
    increase: dict[tuple[float, int], RunningStats]
    opt_increase: dict[tuple[float, int], RunningStats]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`: N, then one per error amount."""
        return ["length", *(f"loss_E{e:g}_percent" for e in self.errors)]

    def rows(self) -> list[list]:
        """LOSS table rows: N then one column per E."""
        rows = []
        for length in self.lengths:
            row: list = [length]
            for error in self.errors:
                stats = self.increase.get((error, length))
                row.append(None if stats is None else stats.mean)
            rows.append(row)
        return rows

    def opt_rows(self) -> list[list]:
        """OPT table rows (should be all zeros)."""
        rows = []
        for length in self.lengths:
            if length > OPT_MAX_LENGTH:
                continue
            row: list = [length]
            for error in self.errors:
                stats = self.opt_increase.get((error, length))
                row.append(None if stats is None else stats.mean)
            rows.append(row)
        return rows


def run(config: ExperimentConfig | None = None) -> Figure10Result:
    """Sweep the error amounts over the schedule-length grid."""
    config = config or ExperimentConfig()
    tape = generate_tape(seed=config.tape_seed)
    model = LocateTimeModel(tape)
    loss = LossScheduler()
    opt = OptScheduler()
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=config.workload_seed
    )

    lengths = config.effective_lengths
    increase: dict[tuple[float, int], RunningStats] = {}
    opt_increase: dict[tuple[float, int], RunningStats] = {}
    perturbed = {
        error: EvenOddPerturbation(model, error) for error in ERROR_AMOUNTS
    }
    for length in lengths:
        trials = max(2, config.trials(length) // 2)
        for _ in range(trials):
            # Starting position at the beginning of tape, per the paper.
            _, batch = workload.sample_batch_with_origin(
                length, origin_at_start=True
            )
            clean_schedule = loss.schedule(model, 0, batch)
            clean_seconds = clean_schedule.estimated_seconds
            if length <= OPT_MAX_LENGTH:
                opt_clean = opt.schedule(model, 0, batch).estimated_seconds
            for error in ERROR_AMOUNTS:
                noisy_schedule = loss.schedule(perturbed[error], 0, batch)
                true_seconds = estimate_schedule_seconds(
                    model, noisy_schedule
                )
                increase.setdefault(
                    (error, length), RunningStats()
                ).add(100.0 * (true_seconds - clean_seconds) / clean_seconds)
                if length <= OPT_MAX_LENGTH:
                    opt_noisy = opt.schedule(perturbed[error], 0, batch)
                    opt_true = estimate_schedule_seconds(model, opt_noisy)
                    opt_increase.setdefault(
                        (error, length), RunningStats()
                    ).add(100.0 * (opt_true - opt_clean) / opt_clean)
    return Figure10Result(
        lengths=lengths,
        errors=ERROR_AMOUNTS,
        increase=increase,
        opt_increase=opt_increase,
    )


def report(result: Figure10Result) -> None:
    """Print the LOSS degradation table and the OPT immunity check."""
    headers = ["N"] + [f"LOSS-{e:g}" for e in result.errors]
    print_table(
        headers,
        result.rows(),
        precision=3,
        title=(
            "Figure 10: % execution-time increase, LOSS with perturbed "
            "locate model (paper: E<=2 negligible, E=10 ~1-2%)"
        ),
    )
    opt_headers = ["N"] + [f"OPT-{e:g}" for e in result.errors]
    print_table(
        opt_headers,
        result.opt_rows(),
        precision=3,
        title="Section 7 check: OPT under the same perturbation (all ~0)",
    )


def main(config: ExperimentConfig | None = None) -> Figure10Result:
    """Run and report."""
    result = run(config)
    report(result)
    return result
