"""Figure 10 — sensitivity of LOSS to locate-model errors.

The Section 7 error model: given an error amount ``E``, the perturbed
model returns ``locate_time(S, D) + E`` for even destinations and
``- E`` for odd ones.  LOSS schedules are generated with the perturbed
model; the *increase* in true execution time over the unperturbed
schedule measures how badly the error misleads the greedy algorithm.

Published findings this reproduces:

* E <= 2 s has little effect; E = 10 s degrades schedules by 1–2 %;
* the effect is small below ~4 locates (requests far apart) and above
  ~700 (schedules become section-to-section sequential);
* OPT is completely immune: the even/odd error adds the same constant
  to every complete schedule, so the optimal order never changes
  (exactly zero increase, which this driver also checks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig, OPT_MAX_LENGTH
from repro.experiments.report import print_table
from repro.experiments.result import TabularResult
from repro.experiments.stats import RunningStats
from repro.geometry.generator import generate_tape
from repro.model.locate import LocateTimeModel
from repro.model.perturb import EvenOddPerturbation
from repro.scheduling.estimator import estimate_schedule_seconds
from repro.scheduling.loss import LossScheduler
from repro.scheduling.opt import OptScheduler
from repro.workload.random_uniform import UniformWorkload
from repro.workload.seed_stream import trial_workload

#: The paper's error amounts (seconds).
ERROR_AMOUNTS: tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 10.0)


@dataclass
class Figure10Result(TabularResult):
    """Mean % execution-time increase per (E, schedule length)."""

    lengths: tuple[int, ...]
    errors: tuple[float, ...]
    increase: dict[tuple[float, int], RunningStats]
    opt_increase: dict[tuple[float, int], RunningStats]

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`: N, then one per error amount."""
        return ["length", *(f"loss_E{e:g}_percent" for e in self.errors)]

    def rows(self) -> list[list]:
        """LOSS table rows: N then one column per E."""
        rows = []
        for length in self.lengths:
            row: list = [length]
            for error in self.errors:
                stats = self.increase.get((error, length))
                row.append(None if stats is None else stats.mean)
            rows.append(row)
        return rows

    def opt_rows(self) -> list[list]:
        """OPT table rows (should be all zeros)."""
        rows = []
        for length in self.lengths:
            if length > OPT_MAX_LENGTH:
                continue
            row: list = [length]
            for error in self.errors:
                stats = self.opt_increase.get((error, length))
                row.append(None if stats is None else stats.mean)
            rows.append(row)
        return rows


@dataclass(frozen=True)
class _PerturbSpec:
    """Worker-rebuildable substrate description for the sweep."""

    tape_seed: int
    workload_seed: int
    errors: tuple[float, ...]


#: Per-process substrate cache, keyed by the spec.
_SUBSTRATE_CACHE: dict = {}


def _substrate(spec: _PerturbSpec):
    """Build (or fetch) tape model, schedulers, perturbed models."""
    hit = _SUBSTRATE_CACHE.get(spec)
    if hit is None:
        tape = generate_tape(seed=spec.tape_seed)
        model = LocateTimeModel(tape)
        hit = (
            tape.total_segments,
            model,
            LossScheduler(),
            OptScheduler(),
            {error: EvenOddPerturbation(model, error)
             for error in spec.errors},
        )
        _SUBSTRATE_CACHE.clear()
        _SUBSTRATE_CACHE[spec] = hit
    return hit


def _run_chunk(
    spec: _PerturbSpec, task
) -> dict[float, tuple[RunningStats, RunningStats]]:
    """One chunk of perturbation trials; per-error (LOSS, OPT) partials."""
    total_segments, model, loss, opt, perturbed = _substrate(spec)
    partial = {
        error: (RunningStats(), RunningStats()) for error in spec.errors
    }
    for trial in range(task.trial_start, task.trial_stop):
        workload = trial_workload(
            total_segments,
            spec.workload_seed,
            task.length,
            trial,
            namespace="figure10",
        )
        # Starting position at the beginning of tape, per the paper.
        _, batch = workload.sample_batch_with_origin(
            task.length, origin_at_start=True
        )
        clean_seconds = loss.schedule(model, 0, batch).estimated_seconds
        if task.length <= OPT_MAX_LENGTH:
            opt_clean = opt.schedule(model, 0, batch).estimated_seconds
        for error in spec.errors:
            loss_stats, opt_stats = partial[error]
            noisy_schedule = loss.schedule(perturbed[error], 0, batch)
            true_seconds = estimate_schedule_seconds(
                model, noisy_schedule
            )
            loss_stats.add(
                100.0 * (true_seconds - clean_seconds) / clean_seconds
            )
            if task.length <= OPT_MAX_LENGTH:
                opt_noisy = opt.schedule(perturbed[error], 0, batch)
                opt_true = estimate_schedule_seconds(model, opt_noisy)
                opt_stats.add(
                    100.0 * (opt_true - opt_clean) / opt_clean
                )
    return partial


def run(
    config: ExperimentConfig | None = None,
    workers: int | None = 1,
    bus=None,
) -> Figure10Result:
    """Sweep the error amounts over the schedule-length grid.

    Under the default per-trial seed mode the trials are chunked and
    distributed by :mod:`repro.experiments.parallel`, bit-identical for
    every ``workers`` value; ``seed_mode="legacy"`` replays the seed
    repo's sequential stream (serial only).
    """
    config = config or ExperimentConfig()
    if config.seed_mode == "legacy":
        if workers not in (None, 0, 1):
            raise ExperimentError(
                "seed_mode='legacy' cannot run on multiple workers"
            )
        return _run_legacy(config)
    from repro.experiments.parallel import ChunkTask, execute_plan

    spec = _PerturbSpec(
        tape_seed=config.tape_seed,
        workload_seed=config.workload_seed,
        errors=ERROR_AMOUNTS,
    )
    lengths = config.effective_lengths
    tasks = []
    for length in lengths:
        trials = max(2, config.trials(length) // 2)
        for chunk_index, start in enumerate(range(0, trials, 25)):
            tasks.append(
                ChunkTask(
                    length=length,
                    chunk_index=chunk_index,
                    trial_start=start,
                    trial_stop=min(start + 25, trials),
                    opt_budget=trials,
                )
            )
    partials = execute_plan(
        spec,
        tasks,
        chunk_fn=_run_chunk,
        warm_fn=_substrate,
        workers=workers,
        bus=bus,
        label="figure10",
    )
    increase: dict[tuple[float, int], RunningStats] = {}
    opt_increase: dict[tuple[float, int], RunningStats] = {}
    for task, partial in zip(tasks, partials):
        for error in ERROR_AMOUNTS:
            loss_stats, opt_stats = partial[error]
            increase.setdefault(
                (error, task.length), RunningStats()
            ).merge(loss_stats)
            if task.length <= OPT_MAX_LENGTH:
                opt_increase.setdefault(
                    (error, task.length), RunningStats()
                ).merge(opt_stats)
    return Figure10Result(
        lengths=lengths,
        errors=ERROR_AMOUNTS,
        increase=increase,
        opt_increase=opt_increase,
    )


def _run_legacy(config: ExperimentConfig) -> Figure10Result:
    """The seed repo's serial loop: one shared ``lrand48`` stream."""
    tape = generate_tape(seed=config.tape_seed)
    model = LocateTimeModel(tape)
    loss = LossScheduler()
    opt = OptScheduler()
    workload = UniformWorkload(
        total_segments=tape.total_segments, seed=config.workload_seed
    )

    lengths = config.effective_lengths
    increase: dict[tuple[float, int], RunningStats] = {}
    opt_increase: dict[tuple[float, int], RunningStats] = {}
    perturbed = {
        error: EvenOddPerturbation(model, error) for error in ERROR_AMOUNTS
    }
    for length in lengths:
        trials = max(2, config.trials(length) // 2)
        for _ in range(trials):
            # Starting position at the beginning of tape, per the paper.
            _, batch = workload.sample_batch_with_origin(
                length, origin_at_start=True
            )
            clean_schedule = loss.schedule(model, 0, batch)
            clean_seconds = clean_schedule.estimated_seconds
            if length <= OPT_MAX_LENGTH:
                opt_clean = opt.schedule(model, 0, batch).estimated_seconds
            for error in ERROR_AMOUNTS:
                noisy_schedule = loss.schedule(perturbed[error], 0, batch)
                true_seconds = estimate_schedule_seconds(
                    model, noisy_schedule
                )
                increase.setdefault(
                    (error, length), RunningStats()
                ).add(100.0 * (true_seconds - clean_seconds) / clean_seconds)
                if length <= OPT_MAX_LENGTH:
                    opt_noisy = opt.schedule(perturbed[error], 0, batch)
                    opt_true = estimate_schedule_seconds(model, opt_noisy)
                    opt_increase.setdefault(
                        (error, length), RunningStats()
                    ).add(100.0 * (opt_true - opt_clean) / opt_clean)
    return Figure10Result(
        lengths=lengths,
        errors=ERROR_AMOUNTS,
        increase=increase,
        opt_increase=opt_increase,
    )


def report(result: Figure10Result) -> None:
    """Print the LOSS degradation table and the OPT immunity check."""
    headers = ["N"] + [f"LOSS-{e:g}" for e in result.errors]
    print_table(
        headers,
        result.rows(),
        precision=3,
        title=(
            "Figure 10: % execution-time increase, LOSS with perturbed "
            "locate model (paper: E<=2 negligible, E=10 ~1-2%)"
        ),
    )
    opt_headers = ["N"] + [f"OPT-{e:g}" for e in result.errors]
    print_table(
        opt_headers,
        result.opt_rows(),
        precision=3,
        title="Section 7 check: OPT under the same perturbation (all ~0)",
    )


def main(
    config: ExperimentConfig | None = None,
    workers: int | None = 1,
) -> Figure10Result:
    """Run and report."""
    result = run(config, workers=workers)
    report(result)
    return result
