"""repro.resilience — the failure-hardened serving path.

The paper's validation exists because real DLT mechanisms miss
positions and retry; production tape systems likewise treat a schedule
as a *plan* that execution may deviate from.  This package supplies the
pieces that make the serving path survive those deviations:

* a typed **fault taxonomy** (:class:`~repro.exceptions.DriveFault`
  and its ``locate`` / ``read`` / ``reset`` subclasses) raised with
  segment/position context;
* a deterministic **fault injector** (:class:`FaultInjector` +
  :class:`FaultPlan`) that wraps any drive and raises those faults at
  configured rates, charging realistic mechanism time;
* a **retry policy** (:class:`RetryPolicy`: bounded attempts,
  exponential backoff with deterministic jitter, per-request timeout)
  consumed by the hardened
  :func:`~repro.scheduling.executor.execute_schedule`;
* a **degradation config** (:class:`ResilienceConfig`) for the online
  system: bounded requeue of failed requests and a scheduler fallback
  (LOSS -> SORT) when scheduling or execution blows a time budget.

See ``docs/RESILIENCE.md`` for the full story and the ``repro chaos``
CLI experiment.
"""

from repro.exceptions import (
    DriveFault,
    DriveReset,
    LocateFault,
    ReadFault,
)
from repro.resilience.injection import FaultInjector, FaultPlan
from repro.resilience.policy import ResilienceConfig, RetryPolicy

__all__ = [
    "DriveFault",
    "DriveReset",
    "FaultInjector",
    "FaultPlan",
    "LocateFault",
    "ReadFault",
    "ResilienceConfig",
    "RetryPolicy",
]
