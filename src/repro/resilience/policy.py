"""Retry and degradation policies for the failure-hardened path.

A :class:`RetryPolicy` bounds how hard the executor fights for one
request: a maximum number of in-place attempts, exponential backoff
between them (with *deterministic* jitter, so a simulated run is
reproducible bit for bit), and a per-request timeout measured on the
simulation clock.

A :class:`ResilienceConfig` extends that to the online system: failed
requests are requeued into the next batch up to ``max_requeues``
times before being surfaced as failed, and the system drops from its
configured scheduler to a cheap fallback (SORT by default) when
computing a schedule or executing a batch exceeds a time budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def _unit_hash(seed: int, attempt: int, segment: int) -> float:
    """Deterministic value in [0, 1) from (seed, attempt, segment).

    SplitMix64-style mixing, matching the per-pair hashes used by the
    perturbation wrappers: the jitter of a given retry is a fixed
    property of the run, like everything else in the simulation.
    """
    mix = (
        (seed & 0xFFFFFFFFFFFFFFFF) * 0x9E3779B97F4A7C15
        ^ (attempt & 0xFFFFFFFFFFFFFFFF) * 0xBF58476D1CE4E5B9
        ^ (segment & 0xFFFFFFFFFFFFFFFF) * 0x94D049BB133111EB
    ) & 0xFFFFFFFFFFFFFFFF
    mix ^= mix >> 33
    mix = (mix * 0xC2B2AE3D27D4EB4F) & 0xFFFFFFFFFFFFFFFF
    mix ^= mix >> 29
    return mix / float(2**64)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded in-place retry with deterministic exponential backoff.

    Attributes
    ----------
    max_attempts:
        Total attempts per request (1 = no retry).
    backoff_base_seconds:
        Delay before the second attempt.
    backoff_multiplier:
        Growth factor per further attempt.
    backoff_cap_seconds:
        Upper bound on any single delay.
    jitter_fraction:
        Each delay is shrunk by up to this fraction, deterministically
        per (seed, attempt, segment) — de-synchronizing retries without
        sacrificing reproducibility.
    request_timeout_seconds:
        Give up on a request once it has consumed this much simulated
        time across attempts (``inf`` disables the timeout).
    seed:
        Jitter hash seed.
    """

    max_attempts: int = 5
    backoff_base_seconds: float = 1.0
    backoff_multiplier: float = 2.0
    backoff_cap_seconds: float = 60.0
    jitter_fraction: float = 0.1
    request_timeout_seconds: float = math.inf
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_multiplier < 1:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.backoff_cap_seconds < 0:
            raise ValueError("backoff_cap_seconds must be >= 0")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if math.isnan(self.request_timeout_seconds):
            raise ValueError(
                "request_timeout_seconds must not be NaN; use "
                "float('inf') to disable the timeout"
            )
        if self.request_timeout_seconds <= 0:
            raise ValueError(
                "request_timeout_seconds must be positive "
                "(float('inf') disables the timeout)"
            )

    def backoff_seconds(self, attempt: int, segment: int = 0) -> float:
        """Delay before the attempt after ``attempt`` (1-based) failed."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        raw = min(
            self.backoff_base_seconds
            * self.backoff_multiplier ** (attempt - 1),
            self.backoff_cap_seconds,
        )
        if self.jitter_fraction == 0.0 or raw == 0.0:
            return raw
        unit = _unit_hash(self.seed, attempt, segment)
        return raw * (1.0 - self.jitter_fraction * unit)


@dataclass(frozen=True)
class ResilienceConfig:
    """How the online system degrades instead of breaking.

    Attributes
    ----------
    retry:
        In-place retry policy handed to the executor.
    max_requeues:
        How many times a request that exhausted its in-place retries is
        put back into the batch queue before being surfaced as failed
        (0 = never requeue).
    schedule_wall_budget_seconds:
        Wall-clock budget for *computing* one schedule; exceeding it
        trips degraded mode for subsequent batches.
    execution_budget_seconds:
        Simulated-seconds budget for *executing* one batch; exceeding
        it likewise trips degraded mode.
    fallback_algorithm:
        Scheduler used once degraded (SORT: cheap to compute, one pass
        per visited track to execute).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_requeues: int = 2
    schedule_wall_budget_seconds: float = math.inf
    execution_budget_seconds: float = math.inf
    fallback_algorithm: str = "SORT"

    def __post_init__(self) -> None:
        if self.max_requeues < 0:
            raise ValueError("max_requeues must be >= 0")
        for name in (
            "schedule_wall_budget_seconds",
            "execution_budget_seconds",
        ):
            value = getattr(self, name)
            if math.isnan(value):
                raise ValueError(
                    f"{name} must not be NaN; use float('inf') to "
                    "disable the budget"
                )
            if value < 0:
                raise ValueError(f"{name} must be >= 0")
