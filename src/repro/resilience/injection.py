"""Deterministic fault injection at the drive boundary.

:class:`FaultyModel` (``repro.drive.faults``) models the *soft* retries
a real mechanism absorbs silently — they cost time, never correctness.
This module models the failures the mechanism cannot absorb: a locate
that hard-fails, a read whose data is bad, a firmware reset that loses
the head position.  A :class:`FaultInjector` wraps any drive and raises
them as typed :class:`~repro.exceptions.DriveFault` exceptions at the
rates of a :class:`FaultPlan`, charging realistic mechanism time for
each failed attempt.

Faults are *transient and deterministic*: each primitive operation
consumes one draw from a counted hash stream, so the same run replays
identically, while a retried operation sees a fresh draw and eventually
succeeds — exactly the behavior the retry layer above is built for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DriveReset, LocateFault, ReadFault
from repro.obs.events import FaultInjected

#: Mechanism time a hard locate failure wastes before reporting: the
#: backed-up re-approach of ``repro.drive.faults`` (0.5 sections at
#: scan + read speed) — the attempt that *still* missed.
DEFAULT_LOCATE_PENALTY_SECONDS = 12.75

#: Firmware reset time before the mechanism accepts commands again
#: (the rewind back to BOT is charged separately, at rewind speed).
DEFAULT_RESET_PENALTY_SECONDS = 30.0


@dataclass(frozen=True)
class FaultPlan:
    """Per-operation fault rates and their time penalties.

    Attributes
    ----------
    locate_fault_probability:
        Chance a locate hard-fails (head stays put, penalty charged).
    read_fault_probability:
        Chance a read returns bad data (head stays at the segment, the
        wasted transfer time is charged).
    reset_probability:
        Chance any locate triggers a drive reset (penalty plus a real
        rewind; the head ends at segment 0).
    locate_penalty_seconds, reset_penalty_seconds:
        Mechanism time charged per fault of that kind.
    read_penalty_seconds:
        Time a failed read wastes; ``None`` charges the transfer time
        of the attempted read itself.
    seed:
        Seed of the deterministic draw stream.
    """

    locate_fault_probability: float = 0.0
    read_fault_probability: float = 0.0
    reset_probability: float = 0.0
    locate_penalty_seconds: float = DEFAULT_LOCATE_PENALTY_SECONDS
    read_penalty_seconds: float | None = None
    reset_penalty_seconds: float = DEFAULT_RESET_PENALTY_SECONDS
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "locate_fault_probability",
            "read_fault_probability",
            "reset_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.locate_fault_probability + self.reset_probability > 1.0:
            raise ValueError(
                "locate_fault_probability + reset_probability must "
                "not exceed 1"
            )
        for name in ("locate_penalty_seconds", "reset_penalty_seconds"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if (
            self.read_penalty_seconds is not None
            and self.read_penalty_seconds < 0
        ):
            raise ValueError("read_penalty_seconds must be >= 0")

    @property
    def any_faults(self) -> bool:
        """Does this plan ever inject anything?"""
        return (
            self.locate_fault_probability > 0.0
            or self.read_fault_probability > 0.0
            or self.reset_probability > 0.0
        )


def _unit_draw(seed: int, counter: int) -> float:
    """Deterministic value in [0, 1) from (seed, draw counter)."""
    mix = (
        (seed & 0xFFFFFFFFFFFFFFFF) * 0x9E3779B97F4A7C15
        ^ (counter & 0xFFFFFFFFFFFFFFFF) * 0xD6E8FEB86659FD93
    ) & 0xFFFFFFFFFFFFFFFF
    mix ^= mix >> 33
    mix = (mix * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    mix ^= mix >> 33
    return mix / float(2**64)


class FaultInjector:
    """Drive wrapper that deterministically raises hard faults.

    Exposes the same operational surface as
    :class:`~repro.drive.simulated.SimulatedDrive` (``locate`` /
    ``read`` / ``rewind`` / ``position`` / ``clock_seconds`` / ...), so
    the executor and online system accept it interchangeably.  Penalty
    and backoff time accumulate in the injector's own clock on top of
    the wrapped drive's, so ``clock_seconds`` stays the single source
    of elapsed mechanism time.

    Parameters
    ----------
    drive:
        The drive to wrap (typically a
        :class:`~repro.drive.simulated.SimulatedDrive`).
    plan:
        Fault rates and penalties.
    bus:
        Optional :class:`~repro.obs.bus.EventBus`; every injected fault
        publishes a :class:`~repro.obs.events.FaultInjected` event.
    """

    def __init__(self, drive, plan: FaultPlan, bus=None) -> None:
        self.inner = drive
        self.plan = plan
        self.bus = bus
        self._extra_seconds = 0.0
        self._draws = 0
        #: Injected fault counts by taxonomy tag.
        self.fault_counts: dict[str, int] = {
            "locate": 0, "read": 0, "reset": 0,
        }

    # -- state ---------------------------------------------------------------

    @property
    def position(self) -> int:
        """Head position of the wrapped drive."""
        return self.inner.position

    @property
    def clock_seconds(self) -> float:
        """Wrapped drive clock plus injected penalty/backoff time."""
        return self.inner.clock_seconds + self._extra_seconds

    @property
    def geometry(self):
        """Geometry of the wrapped drive."""
        return self.inner.geometry

    @property
    def model(self):
        """Locate-time model of the wrapped drive."""
        return self.inner.model

    @property
    def faults_injected(self) -> int:
        """Total faults raised so far."""
        return sum(self.fault_counts.values())

    def wait(self, seconds: float) -> None:
        """Let simulated time pass (retry backoff) without moving."""
        if seconds < 0:
            raise ValueError("wait must be >= 0 seconds")
        self._extra_seconds += seconds

    # -- fault machinery -----------------------------------------------------

    def _draw(self) -> float:
        unit = _unit_draw(self.plan.seed, self._draws)
        self._draws += 1
        return unit

    def _inject(self, kind: str, segment: int, penalty: float) -> None:
        self.fault_counts[kind] += 1
        self._extra_seconds += penalty
        if self.bus is not None:
            self.bus.publish(
                FaultInjected(
                    seconds=self.clock_seconds,
                    kind=kind,
                    segment=segment,
                    position=self.inner.position,
                    penalty_seconds=penalty,
                )
            )

    # -- operations ----------------------------------------------------------

    def locate(self, segment: int) -> float:
        """Position the head, or raise a locate fault / drive reset."""
        self.geometry.check_segment(segment)
        unit = self._draw()
        if unit < self.plan.reset_probability:
            position = self.inner.position
            self._inject("reset", segment, self.plan.reset_penalty_seconds)
            self.inner.rewind()
            raise DriveReset(
                "drive reset during locate",
                segment=segment,
                position=position,
                penalty_seconds=self.plan.reset_penalty_seconds,
            )
        if unit < (
            self.plan.reset_probability
            + self.plan.locate_fault_probability
        ):
            penalty = self.plan.locate_penalty_seconds
            self._inject("locate", segment, penalty)
            raise LocateFault(
                "locate hard failure",
                segment=segment,
                position=self.inner.position,
                penalty_seconds=penalty,
            )
        return self.inner.locate(segment)

    def read(self, count: int = 1) -> float:
        """Transfer segments, or raise a read fault (head stays put)."""
        if self._draw() < self.plan.read_fault_probability:
            penalty = self.plan.read_penalty_seconds
            if penalty is None:
                transfer = getattr(
                    self.model, "segment_transfer_seconds", None
                )
                penalty = count * transfer if transfer is not None else 0.0
            segment = self.inner.position
            self._inject("read", segment, penalty)
            raise ReadFault(
                "read error",
                segment=segment,
                position=segment,
                penalty_seconds=penalty,
            )
        return self.inner.read(count)

    def rewind(self) -> float:
        """Rewind to BOT (never faulted: it is the recovery primitive)."""
        return self.inner.rewind()

    def read_entire_tape(self) -> float:
        """Full-tape scan (not fault-injected; see docs/RESILIENCE.md)."""
        return self.inner.read_entire_tape()

    def service(self, segment: int, length: int = 1) -> float:
        """Locate then read, through the injected primitives."""
        return self.locate(segment) + self.read(length)

    def locate_times_from_here(self, segments):
        """Vectorized what-if of the wrapped drive."""
        return self.inner.locate_times_from_here(segments)

    @property
    def events(self):
        """Event log of the wrapped drive."""
        return self.inner.events
