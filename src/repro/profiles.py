"""Drive profiles: the tape generations of the paper's Section 2.

The paper grounds its discussion in 1995/96 hardware: the DLT4000 it
characterizes, the faster DLT7000, and the IBM 3590 (all serpentine),
versus helical-scan drives it rules out on wear grounds.  A
:class:`DriveProfile` bundles the parameters that distinguish the
generations — capacity, transfer rate, transport speeds, rated head
passes — and builds matching geometries and locate-time models, so the
scheduling experiments can be replayed on a different drive generation
(`repro.experiments.drive_generations`).

The DLT4000 profile is exact (it *is* the package's calibrated default).
The others keep the paper's published capacity/rate/price-class numbers
and the DLT4000's serpentine structure (64 track groups × 14 sections);
their transport-speed constants are derived from the published
sequential rates, with the scan:read speed ratio and the overheads
carried over.  They are stand-ins for studying how the scheduling
results scale with drive speed — not characterizations of the physical
products (which would each need their own [HS96]-style measurement
campaign).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    DEFAULT_TOTAL_SEGMENTS,
    READ_SECONDS_PER_SECTION,
    REPOSITION_SECONDS,
    REVERSAL_SECONDS,
    SCAN_SECONDS_PER_SECTION,
    SECTIONS_PER_TRACK,
    SEGMENT_BYTES,
    TRACKS,
)
from repro.drive.wear import DLT_RATED_PASSES
from repro.geometry.generator import generate_tape
from repro.geometry.tape import TapeGeometry
from repro.model.locate import LocateTimeModel


@dataclass(frozen=True)
class DriveProfile:
    """Parameters of one tape-drive generation.

    Attributes
    ----------
    name:
        Marketing name ("DLT4000", ...).
    capacity_bytes:
        Native cartridge capacity.
    transfer_rate_bytes_per_second:
        Sustained sequential rate.
    read_seconds_per_section, scan_seconds_per_section:
        Transport speeds in the model's section units.
    reposition_seconds, reversal_seconds:
        Locate overheads.
    rated_passes:
        Media life in full-length head passes.
    tracks:
        Serpentine track groups.
    """

    name: str
    capacity_bytes: float
    transfer_rate_bytes_per_second: float
    read_seconds_per_section: float
    scan_seconds_per_section: float
    reposition_seconds: float = REPOSITION_SECONDS
    reversal_seconds: float = REVERSAL_SECONDS
    rated_passes: int = DLT_RATED_PASSES
    tracks: int = TRACKS

    @property
    def total_segments(self) -> int:
        """32 KB segments the cartridge holds."""
        return int(self.capacity_bytes // SEGMENT_BYTES)

    @property
    def segment_transfer_seconds(self) -> float:
        """Transfer time of one segment."""
        return SEGMENT_BYTES / self.transfer_rate_bytes_per_second

    @property
    def full_read_seconds_estimate(self) -> float:
        """Back-of-envelope whole-tape read time."""
        return self.capacity_bytes / self.transfer_rate_bytes_per_second

    def build_tape(self, seed: int = 1) -> TapeGeometry:
        """A synthetic cartridge of this generation."""
        return generate_tape(
            seed=seed,
            total_segments=self.total_segments,
            tracks=self.tracks,
            label=f"{self.name}-{seed}",
        )

    def build_model(self, geometry: TapeGeometry) -> LocateTimeModel:
        """A locate-time model with this generation's speeds."""
        return LocateTimeModel(
            geometry,
            reposition_seconds=self.reposition_seconds,
            reversal_seconds=self.reversal_seconds,
            read_seconds_per_section=self.read_seconds_per_section,
            scan_seconds_per_section=self.scan_seconds_per_section,
            segment_transfer_seconds=self.segment_transfer_seconds,
        )

    def build_system(
        self, seed: int = 1
    ) -> tuple[TapeGeometry, LocateTimeModel]:
        """Cartridge plus matching model in one call."""
        tape = self.build_tape(seed=seed)
        return tape, self.build_model(tape)


def _section_seconds(
    capacity_bytes: float, rate: float, tracks: int
) -> float:
    """Read-transport time per section implied by capacity and rate."""
    sections = tracks * SECTIONS_PER_TRACK
    return capacity_bytes / rate / sections


#: The characterized drive — exactly the package defaults.
DLT4000 = DriveProfile(
    name="DLT4000",
    capacity_bytes=DEFAULT_TOTAL_SEGMENTS * SEGMENT_BYTES,
    transfer_rate_bytes_per_second=1.5e6,
    read_seconds_per_section=READ_SECONDS_PER_SECTION,
    scan_seconds_per_section=SCAN_SECONDS_PER_SECTION,
)

#: Paper Section 2: "The DLT7000 is 5.2 MB/s and 35 GB."
_DLT7000_CAPACITY = 35e9
DLT7000 = DriveProfile(
    name="DLT7000",
    capacity_bytes=_DLT7000_CAPACITY,
    transfer_rate_bytes_per_second=5.2e6,
    read_seconds_per_section=_section_seconds(
        _DLT7000_CAPACITY, 5.2e6, TRACKS
    ),
    scan_seconds_per_section=_section_seconds(
        _DLT7000_CAPACITY, 5.2e6, TRACKS
    )
    * (SCAN_SECONDS_PER_SECTION / READ_SECONDS_PER_SECTION),
)

#: Paper Section 2: "The IBM 3590 is 9 MB/s and 10 GB."
_IBM3590_CAPACITY = 10e9
IBM3590 = DriveProfile(
    name="IBM3590",
    capacity_bytes=_IBM3590_CAPACITY,
    transfer_rate_bytes_per_second=9e6,
    read_seconds_per_section=_section_seconds(
        _IBM3590_CAPACITY, 9e6, TRACKS
    ),
    scan_seconds_per_section=_section_seconds(
        _IBM3590_CAPACITY, 9e6, TRACKS
    )
    * (SCAN_SECONDS_PER_SECTION / READ_SECONDS_PER_SECTION),
)

#: All profiles, keyed by name.
PROFILES: dict[str, DriveProfile] = {
    profile.name: profile for profile in (DLT4000, DLT7000, IBM3590)
}


def get_profile(name: str) -> DriveProfile:
    """Look up a profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown profile {name!r}; known: {known}")
