"""Physical constants of the Quantum DLT4000 as used throughout the paper.

All timing constants live here so the locate-time model, the drive
simulator, and the analytical formulas in :mod:`repro.analysis` agree by
construction.  The values are taken from (or calibrated against) the
numbers published in Hillyer & Silberschatz, SIGMOD 1996:

* read speed 15.5 seconds per section, scan speed 10 seconds per section
  (Section 3, "intuitive description of the model");
* 64 tracks of 14 sections, 13 dips per track (Section 3);
* sections of approximately 704 segments of 32 KB, with section 13
  significantly shorter, first segment of a reverse track at
  ``(t', 13, k)`` with ``k`` typically around 600 (Section 3);
* sustained transfer rate 1.5 MB/s, 20 GB capacity (Section 2);
* full-tape read plus rewind around 14,000 seconds (Section 4, READ);
* simulated workloads draw segments from ``0 .. 622057`` (Section 5).

The three small overhead constants (:data:`REPOSITION_SECONDS`,
:data:`REVERSAL_SECONDS`, :data:`REWIND_OVERHEAD_SECONDS`) are not given
in the paper; they are calibrated so the model reproduces the published
aggregate anchors — maximum locate ≈ 180 s, expected locate from
beginning-of-tape ≈ 96.5 s, expected locate between two random segments
≈ 72.4 s.  The calibration is asserted by ``tests/model/test_anchors.py``.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Geometry
# --------------------------------------------------------------------------

#: Number of serpentine tracks (track groups) on a DLT4000 tape.
TRACKS = 64

#: Number of sections per track; section 0 is physically closest to the
#: beginning of the tape.
SECTIONS_PER_TRACK = 14

#: Number of dips (interior key points) per track.
DIPS_PER_TRACK = SECTIONS_PER_TRACK - 1

#: Total number of sections on a tape (the paper's ``k < 896`` bound).
TOTAL_SECTIONS = TRACKS * SECTIONS_PER_TRACK

#: Nominal number of 32 KB segments in sections 0..12.
NOMINAL_SECTION_SEGMENTS = 704

#: Nominal number of segments in the short last section (section 13).
NOMINAL_LAST_SECTION_SEGMENTS = 600

#: Segment (logical block) size used for all measurements in the paper.
SEGMENT_BYTES = 32 * 1024

#: Default number of segments on a synthetic tape.  The paper's simulation
#: draws segment numbers from 0..622057, i.e. 622,058 segments (the
#: physical tape used to build the model held 622,102).
DEFAULT_TOTAL_SEGMENTS = 622_058

# --------------------------------------------------------------------------
# Transport speeds
# --------------------------------------------------------------------------

#: Seconds to traverse one section at read (I/O transfer) speed.
READ_SECONDS_PER_SECTION = 15.5

#: Seconds to traverse one section at scan (high) speed, used for rewind
#: and long-distance positioning.
SCAN_SECONDS_PER_SECTION = 10.0

#: Sustained sequential transfer rate of the DLT4000.
TRANSFER_RATE_BYTES_PER_SECOND = 1.5e6

#: Time to transfer a single 32 KB segment at the sustained rate.
SEGMENT_TRANSFER_SECONDS = SEGMENT_BYTES / TRANSFER_RATE_BYTES_PER_SECOND

# --------------------------------------------------------------------------
# Calibrated overheads (see module docstring)
# --------------------------------------------------------------------------

#: Fixed cost of any locate that leaves the read-ahead window: head-group
#: repositioning, speed change, command processing.
REPOSITION_SECONDS = 2.0

#: Additional cost when the scan direction differs from the subsequent
#: read direction (one physical direction reversal).
REVERSAL_SECONDS = 2.0

#: Fixed component of a rewind operation.
REWIND_OVERHEAD_SECONDS = 2.0

# --------------------------------------------------------------------------
# Published aggregate anchors (used by calibration tests and docs)
# --------------------------------------------------------------------------

#: Paper Section 3: maximum measured locate time, seconds.
PAPER_MAX_LOCATE_SECONDS = 180.0

#: Paper Section 3: expected locate from beginning of tape to a random
#: segment, seconds.
PAPER_MEAN_LOCATE_FROM_BOT_SECONDS = 96.5

#: Paper Section 3: expected locate between two random segments, seconds.
PAPER_MEAN_LOCATE_RANDOM_SECONDS = 72.4

#: Paper Section 4: typical time to read an entire tape and rewind.
PAPER_FULL_READ_SECONDS = 14_000.0

#: Paper Section 7: typical adjacent-section locate-time discontinuity.
PAPER_FORWARD_DIP_SECONDS = 5.0
PAPER_REVERSE_DIP_SECONDS = 25.0

#: Paper Section 4 (SLTF): recommended coalescing distance threshold, in
#: segments (the size of two sections).
DEFAULT_COALESCE_THRESHOLD = 1410

#: Paper Section 5/8 policy limits: OPT is recommended up to 10 requests,
#: LOSS up to 1536; beyond that, read the entire tape.
OPT_POLICY_LIMIT = 10
LOSS_POLICY_LIMIT = 1536
