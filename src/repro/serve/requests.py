"""Tenant-tagged requests — the currency of the serving gateway.

A :class:`ServeRequest` is a :class:`~repro.library.LibraryRequest`
plus the tenant that issued it.  The gateway pushes the request object
itself through the backend (the multi-drive system preserves identity
across retries and requeues), so when the completion listener fires the
tenant rides along and per-tenant accounting needs no side tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.library.requests import LibraryRequest


@dataclass(frozen=True)
class ServeRequest(LibraryRequest):
    """One tenant's request with its arrival time and target."""

    tenant: str = "default"
