"""repro.serve — the SLA-aware serving gateway.

The admission-and-fairness layer in front of the multi-drive library:
per-tenant weighted fair queues, deadline-aware batch cuts (via
:class:`~repro.online.batch_queue.DeadlineBatchPolicy` on the
backend), backpressure, and typed load shedding — plus the
deterministic multi-tenant Zipf load generator that drives it.  See
``docs/SERVING.md``.
"""

from repro.serve.config import ServeConfig, TenantConfig
from repro.serve.fair import WeightedFairQueues
from repro.serve.gateway import (
    Gateway,
    ServeReport,
    ShedRecord,
    TenantStats,
)
from repro.serve.requests import ServeRequest
from repro.serve.workload import (
    TenantLoadSpec,
    load_serve_trace,
    save_serve_trace,
    zipf_serve_stream,
)

__all__ = [
    "Gateway",
    "ServeConfig",
    "ServeReport",
    "ServeRequest",
    "ShedRecord",
    "TenantConfig",
    "TenantLoadSpec",
    "TenantStats",
    "WeightedFairQueues",
    "load_serve_trace",
    "save_serve_trace",
    "zipf_serve_stream",
]
