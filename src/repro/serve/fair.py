"""Weighted fair queuing over tenant queues.

The gateway's fairness core: one FIFO queue per tenant, released in
start-time-fair order.  The implementation is the classic virtual-time
approximation (SFQ): each tenant carries a *finish tag* advanced by
``1 / weight`` per release, the queue set tracks the virtual time (the
tag of the last release), and a tenant whose queue goes from empty to
non-empty rejoins at ``max(own tag, virtual time)`` so idle periods
are forgiven rather than banked.

Two invariants the property tests pin:

* **Proportional share** — over any interval where a set of tenants
  stays backlogged, tenant ``t`` receives releases in proportion to
  ``weight(t)`` (within one release per tenant).
* **No starvation** — a backlogged tenant's next release is at most
  ``ceil(W / w)`` pops away, where ``w`` is its weight and ``W`` the
  total backlogged weight: tags advance by ``1/w`` per release, so
  the rest of the field can overtake a waiting tenant only finitely.

Everything is deterministic: ties on the finish tag break by the
tenant order given at construction (the :class:`ServeConfig` tenant
order), never by dict iteration or hashing.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping
from typing import Generic, TypeVar

from repro.exceptions import ServeError

T = TypeVar("T")


class WeightedFairQueues(Generic[T]):
    """Per-tenant FIFO queues drained in weighted start-fair order."""

    def __init__(self, weights: Mapping[str, float]) -> None:
        if not weights:
            raise ServeError("at least one tenant is required")
        for name, weight in weights.items():
            if not weight > 0:
                raise ServeError(
                    f"tenant {name!r}: weight must be positive"
                )
        #: Construction order is the deterministic tie-break.
        self._order: dict[str, int] = {
            name: index for index, name in enumerate(weights)
        }
        self._weights: dict[str, float] = dict(weights)
        self._queues: dict[str, deque[T]] = {
            name: deque() for name in weights
        }
        self._tags: dict[str, float] = dict.fromkeys(weights, 0.0)
        self._virtual = 0.0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def depth(self, tenant: str) -> int:
        """Queued items for one tenant."""
        try:
            return len(self._queues[tenant])
        except KeyError:
            raise ServeError(f"no tenant named {tenant!r}") from None

    def push(self, tenant: str, item: T) -> None:
        """Enqueue one item for a tenant."""
        try:
            queue = self._queues[tenant]
        except KeyError:
            raise ServeError(f"no tenant named {tenant!r}") from None
        if not queue:
            # Rejoin at the current virtual time: an idle tenant does
            # not bank credit, and its stale tag must not let it
            # monopolize the next releases.
            self._tags[tenant] = max(self._tags[tenant], self._virtual)
        queue.append(item)
        self._size += 1

    def pop(self) -> tuple[str, T]:
        """Release the next item, start-time-fair across tenants."""
        if self._size == 0:
            raise ServeError("pop from empty fair queues")
        chosen: str | None = None
        best: tuple[float, int] | None = None
        for name, queue in self._queues.items():
            if not queue:
                continue
            key = (self._tags[name], self._order[name])
            if best is None or key < best:
                best = key
                chosen = name
        assert chosen is not None and best is not None
        self._virtual = best[0]
        item = self._queues[chosen].popleft()
        self._tags[chosen] = best[0] + 1.0 / self._weights[chosen]
        self._size -= 1
        return chosen, item
