"""Kernel events of the serving gateway.

Like :mod:`repro.library.events`, these are *simulation* events — the
gateway's internal currency on the shared
:class:`~repro.library.kernel.EventKernel` — not observability events
(those are the ``serve.*`` classes in :mod:`repro.obs.events`).

:class:`GatewayArrival` ranks *before* every library event at the same
instant (priority −10 vs. the backend's 0 for
:class:`~repro.library.events.RequestArrived`): all gateway admissions
and releases at time t happen before the backend admits anything at t,
so a pass-through gateway (one tenant, no caps) re-creates the exact
backend event order of a bare :class:`~repro.library.MultiDriveSystem`
run — the bit-identity the test suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.library.events import SimEvent


@dataclass(frozen=True, slots=True)
class GatewayArrival(SimEvent):
    """A request reached the gateway's admission layer."""

    priority: ClassVar[int] = -10

    request_index: int
