"""Deterministic multi-tenant load generation for the gateway.

Each :class:`TenantLoadSpec` describes one tenant's population: how
many simulated users it has, their aggregate Poisson request rate, and
how skewed their popularity is.  :func:`zipf_serve_stream` turns a set
of specs into one merged, tenant-tagged request stream:

* every user owns one object — a ``(cartridge, segment)`` pair placed
  uniformly at random over the shelf — so the number of *simulated
  users* is real state, not a label (a million-user tenant draws from
  a million distinct placements);
* per request, the issuing user is drawn Zipf(``zipf_alpha``) over the
  tenant's user ranks (rank 1 hottest), the natural skew of real
  serving populations;
* arrivals are Poisson at ``rate_per_hour``, truncated to the horizon.

Determinism: each tenant's generator is seeded through
:func:`repro.workload.seed_stream.trial_state` under a
``serve.<tenant>`` namespace, so streams are independent per tenant,
reproducible per seed, and insensitive to the order other tenants are
generated in.  The merged stream is sorted by
``(arrival, tenant name)`` — a total order, so equal-time arrivals tie
-break identically everywhere.

The stream round-trips through JSONL (:func:`save_serve_trace` /
:func:`load_serve_trace`) so captured or hand-written traces can drive
the gateway in place of the synthetic load.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.constants import DEFAULT_TOTAL_SEGMENTS
from repro.exceptions import ServeError, TraceError
from repro.serve.requests import ServeRequest
from repro.workload.seed_stream import trial_state

#: Exponential-gap draw chunk (vectorized arrival generation).
_GAP_CHUNK = 4096


@dataclass(frozen=True)
class TenantLoadSpec:
    """One tenant's offered load.

    Attributes
    ----------
    name:
        Tenant name (matches a
        :class:`~repro.serve.config.TenantConfig`).
    users:
        Simulated user population; each user owns one placed object.
    rate_per_hour:
        Aggregate Poisson arrival rate of the tenant.
    zipf_alpha:
        Skew of user activity (rank ``r`` issues requests with
        probability proportional to ``r**-alpha``).
    weight:
        Fair-share weight carried alongside for convenience, so a
        sweep can derive its
        :class:`~repro.serve.config.TenantConfig` from the same table.
    """

    name: str
    users: int
    rate_per_hour: float
    zipf_alpha: float = 1.1
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeError("tenant name must be non-empty")
        if self.users < 1:
            raise ServeError(
                f"tenant {self.name!r}: users must be >= 1"
            )
        if not self.rate_per_hour > 0:
            raise ServeError(
                f"tenant {self.name!r}: rate_per_hour must be positive"
            )
        if not self.zipf_alpha > 0:
            raise ServeError(
                f"tenant {self.name!r}: zipf_alpha must be positive"
            )
        if not self.weight > 0:
            raise ServeError(
                f"tenant {self.name!r}: weight must be positive"
            )


def _arrival_times(
    rng: np.random.Generator, rate_per_hour: float, horizon_seconds: float
) -> np.ndarray:
    """Poisson arrival instants on [0, horizon), chunk-vectorized."""
    scale = 3600.0 / rate_per_hour
    times: list[np.ndarray] = []
    last = 0.0
    while last < horizon_seconds:
        gaps = rng.exponential(scale, size=_GAP_CHUNK)
        chunk = last + np.cumsum(gaps)
        times.append(chunk)
        last = float(chunk[-1])
    merged = np.concatenate(times)
    return merged[merged < horizon_seconds]


def zipf_serve_stream(
    specs: Sequence[TenantLoadSpec],
    labels: Sequence[str],
    *,
    total_segments: int = DEFAULT_TOTAL_SEGMENTS,
    horizon_seconds: float = 3600.0,
    seed: int = 0,
) -> list[ServeRequest]:
    """One merged tenant-tagged request stream (see module docstring)."""
    if not specs:
        raise ServeError("at least one tenant spec is required")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ServeError("tenant spec names must be unique")
    if not labels:
        raise ServeError("labels must be non-empty")
    if total_segments < 1:
        raise ServeError("total_segments must be >= 1")
    if not horizon_seconds > 0:
        raise ServeError("horizon_seconds must be positive")
    requests: list[ServeRequest] = []
    for spec in specs:
        # Keyed by the tenant's name (via the namespace) and size
        # only, never its position, so streams are per-tenant
        # independent and insensitive to spec order.
        state = trial_state(
            seed, spec.users, 0, namespace=f"serve.{spec.name}"
        )
        rng = np.random.default_rng(state)
        # Each user's one object, placed uniformly over the shelf.
        user_labels = rng.integers(0, len(labels), size=spec.users)
        user_segments = rng.integers(0, total_segments, size=spec.users)
        # Zipf-over-ranks activity: rank 1 is the hottest user.
        weights = np.arange(1, spec.users + 1, dtype=np.float64) ** (
            -spec.zipf_alpha
        )
        cdf = np.cumsum(weights / weights.sum())
        arrivals = _arrival_times(
            rng, spec.rate_per_hour, horizon_seconds
        )
        users = np.searchsorted(
            cdf, rng.random(arrivals.size), side="right"
        )
        for arrival, user in zip(arrivals, users):
            requests.append(
                ServeRequest(
                    arrival_seconds=float(arrival),
                    label=labels[int(user_labels[user])],
                    segment=int(user_segments[user]),
                    length=1,
                    tenant=spec.name,
                )
            )
    requests.sort(key=lambda r: (r.arrival_seconds, r.tenant))
    return requests


def save_serve_trace(
    path: str | Path, requests: Sequence[ServeRequest]
) -> None:
    """Write a tenant-tagged stream as JSONL (one request per line)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for request in requests:
            handle.write(
                json.dumps(
                    {
                        "t": request.arrival_seconds,
                        "tenant": request.tenant,
                        "label": request.label,
                        "segment": request.segment,
                        "length": request.length,
                    }
                )
                + "\n"
            )


def load_serve_trace(path: str | Path) -> list[ServeRequest]:
    """Read a JSONL tenant-tagged stream back (validated)."""
    path = Path(path)
    requests: list[ServeRequest] = []
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"{path}:{number}: not valid JSON: {error}"
                ) from error
            try:
                request = ServeRequest(
                    arrival_seconds=float(record["t"]),
                    label=str(record["label"]),
                    segment=int(record["segment"]),
                    length=int(record.get("length", 1)),
                    tenant=str(record["tenant"]),
                )
            except (KeyError, TypeError, ValueError) as error:
                raise TraceError(
                    f"{path}:{number}: bad serve-trace record: {error}"
                ) from error
            if (
                math.isnan(request.arrival_seconds)
                or request.arrival_seconds < 0
            ):
                raise TraceError(
                    f"{path}:{number}: arrival time must be >= 0"
                )
            requests.append(request)
    return requests
