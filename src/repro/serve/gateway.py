"""The SLA-aware serving gateway.

:class:`Gateway` is the admission-and-fairness layer in front of a
:class:`~repro.library.MultiDriveSystem` (or anything exposing its
``begin``/``submit``/``finish`` + listener surface, such as the cache
tier's :class:`~repro.cache.library_tier.CachedLibrarySystem`).  Per
request, in simulated time:

1. **Admission** — the request enters at its arrival instant
   (:class:`~repro.serve.events.GatewayArrival` on the shared kernel).
   A tenant at its ``max_outstanding`` cap is shed immediately with a
   typed :class:`~repro.exceptions.TenantOverloaded`.
2. **Fair queuing** — admitted requests wait in their tenant's queue
   of a :class:`~repro.serve.fair.WeightedFairQueues`; releases are
   weighted start-time fair.
3. **Backpressure** — at most ``max_backend_depth`` released requests
   may be in the backend at once; completions (and terminal failures)
   free slots and trigger further releases.
4. **Load shedding** — a queued request whose deadline passed by
   release time is shed with a typed
   :class:`~repro.exceptions.DeadlineExpired` (when ``shed_expired``).

Nothing is ever dropped silently: every submitted request ends as a
completion, a (backend-typed) failure, or a shed with an
:class:`~repro.exceptions.AdmissionRejected` instance on the
:attr:`Gateway.shed` ledger — :attr:`ServeReport.lost` is zero by
construction and the test suite pins it.

Per-tenant response-time distributions live in a
:class:`~repro.obs.metrics.MetricsRegistry` histogram each (p50 / p99
/ p999 in :class:`TenantStats`), and with a bus attached the gateway
publishes the ``serve.*`` observability events.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

from repro.exceptions import (
    AdmissionRejected,
    DeadlineExpired,
    ServeError,
    TenantOverloaded,
    UnknownTenant,
)
from repro.library.system import MultiDriveSystem
from repro.obs.bus import EventBus
from repro.obs.events import (
    ServeAdmitted,
    ServeCompleted,
    ServeReleased,
    ServeShed,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.config import ServeConfig, TenantConfig
from repro.serve.events import GatewayArrival
from repro.serve.fair import WeightedFairQueues
from repro.serve.requests import ServeRequest


@dataclass(frozen=True)
class ShedRecord:
    """One shed request and its typed rejection."""

    request: ServeRequest
    rejection: AdmissionRejected
    seconds: float


@dataclass(frozen=True)
class TenantStats:
    """One tenant's serving outcome.

    ``submitted = completed + failed + shed`` after a finished run;
    percentiles come from the gateway's per-tenant response-time
    histogram and are ``None`` when the tenant completed nothing.
    """

    name: str
    weight: float
    submitted: int
    admitted: int
    released: int
    completed: int
    failed: int
    shed: int
    mean_seconds: float | None
    p50_seconds: float | None
    p99_seconds: float | None
    p999_seconds: float | None
    slo_seconds: float
    slo_violations: int

    @property
    def slo_ok(self) -> bool:
        """Is the tenant's p999 within its SLO target?

        Vacuously true with no target (``inf``) or no completions.
        """
        if math.isinf(self.slo_seconds) or self.p999_seconds is None:
            return True
        return self.p999_seconds <= self.slo_seconds


@dataclass(frozen=True)
class ServeReport:
    """The gateway's run outcome, tenant by tenant."""

    tenants: tuple[TenantStats, ...]
    submitted: int
    completed: int
    failed: int
    shed: int
    degraded: bool

    @property
    def lost(self) -> int:
        """Requests with no recorded outcome (zero by construction)."""
        return self.submitted - self.completed - self.failed - self.shed

    @property
    def all_accounted(self) -> bool:
        """Did every request end in a typed outcome?"""
        return self.lost == 0

    @property
    def slo_ok(self) -> bool:
        """Did every tenant make its p999 target?"""
        return all(tenant.slo_ok for tenant in self.tenants)

    def headers(self) -> list[str]:
        """Columns of :meth:`rows`."""
        return [
            "tenant", "weight", "submitted", "admitted", "released",
            "completed", "failed", "shed", "mean (s)", "p50 (s)",
            "p99 (s)", "p999 (s)", "slo (s)", "violations", "slo ok",
        ]

    def rows(self) -> list[list]:
        """One row per tenant."""
        return [
            [
                tenant.name,
                tenant.weight,
                tenant.submitted,
                tenant.admitted,
                tenant.released,
                tenant.completed,
                tenant.failed,
                tenant.shed,
                tenant.mean_seconds,
                tenant.p50_seconds,
                tenant.p99_seconds,
                tenant.p999_seconds,
                tenant.slo_seconds,
                tenant.slo_violations,
                tenant.slo_ok,
            ]
            for tenant in self.tenants
        ]

    def to_dict(self) -> list[dict]:
        """Records for export."""
        return [dict(zip(self.headers(), row)) for row in self.rows()]


class Gateway:
    """Admit, order, and release tenant requests into a backend.

    Parameters
    ----------
    config:
        The :class:`~repro.serve.config.ServeConfig` — tenants,
        backpressure, shedding.
    system:
        The backend: a fresh (un-run) :class:`MultiDriveSystem` or a
        compatible tier.  The gateway drives it through
        ``begin``/``submit``/``finish`` and observes outcomes through
        its listener hooks; build it with the same ``bus`` to get one
        unified event stream.
    bus:
        Optional :class:`~repro.obs.bus.EventBus` for the ``serve.*``
        events; defaults to the backend's bus.
    """

    def __init__(
        self,
        config: ServeConfig,
        *,
        system: MultiDriveSystem,
        bus: EventBus | None = None,
    ) -> None:
        self.config = config
        self.system = system
        self.kernel = system.kernel
        self.bus = bus if bus is not None else system.bus
        self.metrics = MetricsRegistry()
        self._tenants: dict[str, TenantConfig] = {
            tenant.name: tenant for tenant in config.tenants
        }
        self._fair: WeightedFairQueues[ServeRequest] = WeightedFairQueues(
            {tenant.name: tenant.weight for tenant in config.tenants}
        )
        self._outstanding = dict.fromkeys(self._tenants, 0)
        self._submitted = dict.fromkeys(self._tenants, 0)
        self._admitted = dict.fromkeys(self._tenants, 0)
        self._released = dict.fromkeys(self._tenants, 0)
        self._completed = dict.fromkeys(self._tenants, 0)
        self._failed = dict.fromkeys(self._tenants, 0)
        self._shed_counts = dict.fromkeys(self._tenants, 0)
        self._violations = dict.fromkeys(self._tenants, 0)
        self._backend_depth = 0
        self._requests: list[ServeRequest] = []
        #: Every shed request with its typed rejection, in shed order.
        self.shed: list[ShedRecord] = []
        self._ran = False

        self.kernel.on(GatewayArrival, self._on_arrival)
        system.completion_listeners.append(self._on_backend_complete)
        system.failure_listeners.append(self._on_backend_failure)

    # -- the run -----------------------------------------------------------

    def run(self, requests: Iterable[ServeRequest]) -> ServeReport:
        """Serve a tenant-tagged request stream to completion.

        Accepts any iterable (materialized once); order does not
        matter.  A gateway instance runs once, like its backend.
        """
        if self._ran:
            raise ServeError(
                "this gateway already ran; build a fresh instance"
            )
        self._ran = True
        items = sorted(requests, key=lambda r: r.arrival_seconds)
        labels = set(self.system.labels())
        for request in items:
            if request.tenant not in self._tenants:
                raise UnknownTenant(
                    f"no tenant named {request.tenant!r}"
                )
            if request.label not in labels:
                raise ServeError(
                    f"request addresses unknown cartridge "
                    f"{request.label!r}"
                )
        self._requests = items
        self.system.begin()
        for index, request in enumerate(items):
            self.kernel.schedule(
                request.arrival_seconds,
                GatewayArrival(request_index=index),
            )
        self.system.finish()
        if len(self._fair):
            raise ServeError(
                "gateway queues still hold requests after the "
                "backend drained — backpressure accounting bug"
            )
        return self.report()

    # -- admission ---------------------------------------------------------

    def _on_arrival(self, event: GatewayArrival) -> None:
        now = self.kernel.now_seconds
        request = self._requests[event.request_index]
        tenant = self._tenants[request.tenant]
        self._submitted[tenant.name] += 1
        if (
            tenant.max_outstanding is not None
            and self._outstanding[tenant.name] >= tenant.max_outstanding
        ):
            self._shed(
                request,
                TenantOverloaded(
                    f"tenant at its cap of {tenant.max_outstanding} "
                    "outstanding requests",
                    tenant=tenant.name,
                    segment=request.segment,
                    arrival_seconds=request.arrival_seconds,
                ),
                now,
            )
            return
        self._outstanding[tenant.name] += 1
        self._admitted[tenant.name] += 1
        self._fair.push(tenant.name, request)
        if self.bus is not None:
            self.bus.publish(
                ServeAdmitted(
                    seconds=now,
                    tenant=tenant.name,
                    segment=request.segment,
                    queue_depth=self._fair.depth(tenant.name),
                )
            )
        self._drain(now)

    # -- release -----------------------------------------------------------

    def _drain(self, now: float) -> None:
        """Release fair-queued requests while the backend has room."""
        limit = self.config.max_backend_depth
        while len(self._fair) and (
            limit is None or self._backend_depth < limit
        ):
            name, request = self._fair.pop()
            tenant = self._tenants[name]
            if (
                self.config.shed_expired
                and now - request.arrival_seconds > tenant.deadline_seconds
            ):
                self._outstanding[name] -= 1
                self._shed(
                    request,
                    DeadlineExpired(
                        f"queued {now - request.arrival_seconds:.1f} s, "
                        f"past the {tenant.deadline_seconds:.1f} s "
                        "deadline",
                        tenant=name,
                        segment=request.segment,
                        arrival_seconds=request.arrival_seconds,
                    ),
                    now,
                )
                continue
            self._backend_depth += 1
            self._released[name] += 1
            self.system.submit(request)
            if self.bus is not None:
                self.bus.publish(
                    ServeReleased(
                        seconds=now,
                        tenant=name,
                        segment=request.segment,
                        held_seconds=now - request.arrival_seconds,
                        backend_depth=self._backend_depth,
                    )
                )

    # -- outcomes ----------------------------------------------------------

    def _shed(
        self,
        request: ServeRequest,
        rejection: AdmissionRejected,
        now: float,
    ) -> None:
        """Record a typed rejection — the only way out but completion."""
        self._shed_counts[rejection.tenant] += 1
        self.shed.append(
            ShedRecord(request=request, rejection=rejection, seconds=now)
        )
        if self.bus is not None:
            self.bus.publish(
                ServeShed(
                    seconds=now,
                    tenant=rejection.tenant,
                    reason=rejection.kind,
                    segment=rejection.segment,
                    arrival_seconds=rejection.arrival_seconds,
                )
            )

    def _on_backend_complete(
        self, item, completion_seconds: float, drive_index: int
    ) -> None:
        name = getattr(item, "tenant", None)
        if name is None or name not in self._tenants:
            return
        tenant = self._tenants[name]
        self._outstanding[name] -= 1
        self._backend_depth -= 1
        self._completed[name] += 1
        response = completion_seconds - item.arrival_seconds
        self.metrics.histogram(
            f"serve.tenant.{name}.response_seconds"
        ).observe(response)
        if response > tenant.slo_seconds:
            self._violations[name] += 1
        if self.bus is not None:
            self.bus.publish(
                ServeCompleted(
                    seconds=completion_seconds,
                    tenant=name,
                    segment=item.segment,
                    response_seconds=response,
                )
            )
        self._drain(self.kernel.now_seconds)

    def _on_backend_failure(self, item) -> None:
        name = getattr(item, "tenant", None)
        if name is None or name not in self._tenants:
            return
        self._outstanding[name] -= 1
        self._backend_depth -= 1
        self._failed[name] += 1
        self._drain(self.kernel.now_seconds)

    # -- reporting ---------------------------------------------------------

    def report(self) -> ServeReport:
        """The per-tenant statistics of the (finished) run."""
        tenants = []
        for tenant in self.config.tenants:
            name = tenant.name
            histogram = self.metrics.histogram(
                f"serve.tenant.{name}.response_seconds"
            )
            if histogram.count:
                mean = histogram.mean
                p50 = histogram.percentile(50)
                p99 = histogram.percentile(99)
                p999 = histogram.percentile(99.9)
            else:
                mean = p50 = p99 = p999 = None
            tenants.append(
                TenantStats(
                    name=name,
                    weight=tenant.weight,
                    submitted=self._submitted[name],
                    admitted=self._admitted[name],
                    released=self._released[name],
                    completed=self._completed[name],
                    failed=self._failed[name],
                    shed=self._shed_counts[name],
                    mean_seconds=mean,
                    p50_seconds=p50,
                    p99_seconds=p99,
                    p999_seconds=p999,
                    slo_seconds=tenant.slo_seconds,
                    slo_violations=self._violations[name],
                )
            )
        return ServeReport(
            tenants=tuple(tenants),
            submitted=sum(self._submitted.values()),
            completed=sum(self._completed.values()),
            failed=sum(self._failed.values()),
            shed=sum(self._shed_counts.values()),
            degraded=getattr(self.system, "degraded", False),
        )
