"""Typed configuration of the serving gateway.

One :class:`TenantConfig` per tenant (fair-share weight, admission
cap, deadline, SLO target) and one :class:`ServeConfig` tying the
tenant set to the gateway-wide backpressure knobs.  Validation happens
here, at construction, so the gateway's serving loop never has to
re-check shapes mid-simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ServeError


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's service contract.

    Attributes
    ----------
    name:
        Tenant identifier (must be unique within a
        :class:`ServeConfig`).
    weight:
        Weighted-fair-share weight: over any backlogged interval the
        tenant receives releases in proportion to
        ``weight / sum(weights of backlogged tenants)``.
    max_outstanding:
        Admission cap — the most requests the tenant may have in
        flight (queued at the gateway or executing in the backend).
        Arrivals beyond the cap are shed with a typed
        :class:`~repro.exceptions.TenantOverloaded`.  ``None``
        disables the cap.
    deadline_seconds:
        Per-request usefulness horizon: a queued request that can no
        longer be released within its deadline is shed with a typed
        :class:`~repro.exceptions.DeadlineExpired` (when the gateway's
        ``shed_expired`` is on).  ``inf`` disables expiry.
    slo_seconds:
        The response-time target the tenant's p999 is judged against
        in :class:`~repro.serve.gateway.TenantStats`.  ``inf`` means
        no target (never violated).
    """

    name: str
    weight: float = 1.0
    max_outstanding: int | None = None
    deadline_seconds: float = float("inf")
    slo_seconds: float = float("inf")

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeError("tenant name must be non-empty")
        if math.isnan(self.weight) or self.weight <= 0:
            raise ServeError(
                f"tenant {self.name!r}: weight must be positive"
            )
        if self.max_outstanding is not None and self.max_outstanding < 1:
            raise ServeError(
                f"tenant {self.name!r}: max_outstanding must be >= 1 "
                "(None disables the cap)"
            )
        if math.isnan(self.deadline_seconds) or self.deadline_seconds <= 0:
            raise ServeError(
                f"tenant {self.name!r}: deadline_seconds must be "
                "positive (inf disables expiry)"
            )
        if math.isnan(self.slo_seconds) or self.slo_seconds <= 0:
            raise ServeError(
                f"tenant {self.name!r}: slo_seconds must be positive "
                "(inf disables the target)"
            )


@dataclass(frozen=True)
class ServeConfig:
    """The gateway's whole contract: tenants plus backpressure.

    Attributes
    ----------
    tenants:
        The tenant set (order fixes fair-queue tie-breaks, so two
        configs listing the same tenants in the same order serve
        identically).
    max_backend_depth:
        The most gateway-released requests allowed in the backend at
        once (queued per tape or executing).  This is the
        backpressure valve: when the backend is full, admitted
        requests wait in their tenant's fair queue.  ``None`` releases
        immediately on admission.
    shed_expired:
        Shed queued requests whose deadline has passed at release
        time (typed :class:`~repro.exceptions.DeadlineExpired`); off,
        expired requests are released anyway and simply miss their
        SLO.
    """

    tenants: tuple[TenantConfig, ...]
    max_backend_depth: int | None = None
    shed_expired: bool = True

    def __post_init__(self) -> None:
        tenants = tuple(self.tenants)
        object.__setattr__(self, "tenants", tenants)
        if not tenants:
            raise ServeError("at least one tenant is required")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ServeError("tenant names must be unique")
        if self.max_backend_depth is not None and self.max_backend_depth < 1:
            raise ServeError(
                "max_backend_depth must be >= 1 (None disables "
                "backpressure)"
            )

    def tenant(self, name: str) -> TenantConfig:
        """Look up one tenant's config by name."""
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise ServeError(f"no tenant named {name!r}")
