"""Response-time and throughput accounting for the online system."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ResponseStats:
    """Accumulates per-request response times.

    Response time = completion time − arrival time; the batching policy
    trades it against throughput (bigger batches schedule better but
    wait longer).
    """

    _samples: list[float] = field(default_factory=list)

    def record(self, arrival_seconds: float, completion_seconds: float):
        """Record one serviced request."""
        if completion_seconds < arrival_seconds:
            raise ValueError("completion precedes arrival")
        self._samples.append(completion_seconds - arrival_seconds)

    @property
    def count(self) -> int:
        """Requests recorded."""
        return len(self._samples)

    @property
    def mean_seconds(self) -> float:
        """Mean response time."""
        return float(np.mean(self._samples)) if self._samples else 0.0

    @property
    def max_seconds(self) -> float:
        """Worst response time."""
        return float(np.max(self._samples)) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """Response-time percentile, ``q`` in [0, 100]."""
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, q))

    def throughput_per_hour(self, horizon_seconds: float) -> float:
        """Serviced requests per hour over a horizon."""
        if horizon_seconds <= 0:
            raise ValueError("horizon must be positive")
        return 3600.0 * self.count / horizon_seconds
