"""Response-time, throughput, and cache accounting for the online system."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import SEGMENT_BYTES
from repro.exceptions import NoSamplesError


@dataclass
class ResponseStats:
    """Accumulates per-request response times.

    Response time = completion time − arrival time; the batching policy
    trades it against throughput (bigger batches schedule better but
    wait longer).

    The aggregate properties (:attr:`mean_seconds`, :attr:`max_seconds`,
    :meth:`percentile`) raise :class:`~repro.exceptions.NoSamplesError`
    when no request has been recorded — an empty simulation has no mean
    response time, and silently reporting 0.0 (or a numpy NaN warning)
    has hidden misconfigured experiments before.
    """

    _samples: list[float] = field(default_factory=list)

    def record(self, arrival_seconds: float, completion_seconds: float):
        """Record one serviced request."""
        if completion_seconds < arrival_seconds:
            raise ValueError("completion precedes arrival")
        self._samples.append(completion_seconds - arrival_seconds)

    def _require_samples(self) -> None:
        if not self._samples:
            raise NoSamplesError(
                "no requests recorded; aggregate response-time "
                "statistics are undefined"
            )

    @property
    def count(self) -> int:
        """Requests recorded."""
        return len(self._samples)

    @property
    def samples(self) -> tuple[float, ...]:
        """The recorded response times, in recording order."""
        return tuple(self._samples)

    @property
    def mean_seconds(self) -> float:
        """Mean response time."""
        self._require_samples()
        return float(np.mean(self._samples))

    @property
    def max_seconds(self) -> float:
        """Worst response time."""
        self._require_samples()
        return float(np.max(self._samples))

    def percentile(self, q: float) -> float:
        """Response-time percentile, ``q`` in [0, 100]."""
        self._require_samples()
        return float(np.percentile(self._samples, q))

    def throughput_per_hour(self, horizon_seconds: float) -> float:
        """Serviced requests per hour over a horizon."""
        if horizon_seconds <= 0:
            raise ValueError("horizon must be positive")
        return 3600.0 * self.count / horizon_seconds


@dataclass
class CacheStats:
    """Hit/miss/byte accounting for the disk staging cache tier.

    Request-level counters (``hits``/``misses``) drive the headline hit
    rate; segment-level counters weight multi-segment requests by their
    size and convert to bytes via the paper's fixed 32 KB segment.
    Insertion-side counters split demand fills from opportunistic
    prefetch and record how often admission control or eviction acted.
    """

    hits: int = 0
    misses: int = 0
    hit_segments: int = 0
    miss_segments: int = 0
    insertions: int = 0
    prefetch_insertions: int = 0
    rejections: int = 0
    evictions: int = 0

    def record_hit(self, segments: int = 1) -> None:
        """One request fully served from the cache."""
        self.hits += 1
        self.hit_segments += segments

    def record_miss(self, segments: int = 1) -> None:
        """One request that had to go to tape."""
        self.misses += 1
        self.miss_segments += segments

    @property
    def lookups(self) -> int:
        """Total requests that consulted the cache."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache."""
        if self.lookups == 0:
            raise NoSamplesError(
                "no cache lookups recorded; hit rate is undefined"
            )
        return self.hits / self.lookups

    @property
    def hit_bytes(self) -> int:
        """Bytes served from the cache tier."""
        return self.hit_segments * SEGMENT_BYTES

    @property
    def miss_bytes(self) -> int:
        """Bytes that had to come off tape."""
        return self.miss_segments * SEGMENT_BYTES

    @property
    def byte_hit_rate(self) -> float:
        """Fraction of requested bytes served from cache."""
        total = self.hit_segments + self.miss_segments
        if total == 0:
            raise NoSamplesError(
                "no cache lookups recorded; byte hit rate is undefined"
            )
        return self.hit_segments / total
