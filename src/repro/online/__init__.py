"""Online tertiary storage: batching queue, robotic library, system."""

from repro.online.batch_queue import (
    BatchPolicy,
    BatchQueue,
    DeadlineBatchPolicy,
)

# Canonical home since the repro.library subsystem; re-exported here for
# compatibility (importing the submodule directly stays warning-free,
# unlike the repro.online.library shim).
from repro.library.cartridge import (
    Cartridge,
    DEFAULT_EXCHANGE_SECONDS,
    TapeLibrary,
)
from repro.online.metrics import CacheStats, ResponseStats
from repro.online.striping import (
    LogicalRead,
    StripeMapping,
    StripedBatchResult,
    StripedReadCoordinator,
    StripedTapeArray,
    StripedVolume,
    striped_volume,
)
from repro.online.system import BatchRecord, TertiaryStorageSystem

__all__ = [
    "BatchPolicy",
    "BatchQueue",
    "BatchRecord",
    "CacheStats",
    "Cartridge",
    "DEFAULT_EXCHANGE_SECONDS",
    "DeadlineBatchPolicy",
    "ResponseStats",
    "LogicalRead",
    "StripeMapping",
    "StripedBatchResult",
    "StripedReadCoordinator",
    "StripedTapeArray",
    "StripedVolume",
    "striped_volume",
    "TapeLibrary",
    "TertiaryStorageSystem",
]
