"""Online tertiary storage: batching queue, robotic library, system."""

from repro.online.batch_queue import BatchPolicy, BatchQueue
from repro.online.library import (
    Cartridge,
    DEFAULT_EXCHANGE_SECONDS,
    TapeLibrary,
)
from repro.online.metrics import CacheStats, ResponseStats
from repro.online.striping import (
    StripeMapping,
    StripedBatchResult,
    StripedTapeArray,
)
from repro.online.system import BatchRecord, TertiaryStorageSystem

__all__ = [
    "BatchPolicy",
    "BatchQueue",
    "BatchRecord",
    "CacheStats",
    "Cartridge",
    "DEFAULT_EXCHANGE_SECONDS",
    "ResponseStats",
    "StripeMapping",
    "StripedBatchResult",
    "StripedTapeArray",
    "TapeLibrary",
    "TertiaryStorageSystem",
]
