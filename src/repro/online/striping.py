"""Striped tape arrays — the [DK93]/[GMW95] related-work extension.

The paper cites striped tape organizations (Drapeau & Katz; Golubchik,
Muntz & Watson) as the complementary lever on tape performance:
scheduling attacks positioning *latency*, striping attacks *bandwidth
and parallelism* by spreading a logical volume across several drives.
This module combines the two: a logical address space is striped
round-robin over K cartridges, a random batch is split into its
per-drive sub-batches, each sub-batch is scheduled independently (LOSS
by default), and all drives run in parallel — the batch completes at
the slowest drive's makespan.

Because each drive sees ~1/K of the requests, the per-request
positioning cost *rises* (smaller batches schedule worse — Figure 4),
so the speedup from K drives is sublative: K drives buy less than K×.
The ablation benchmark quantifies that interaction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.drive.simulated import SimulatedDrive
from repro.exceptions import LibraryError, SegmentOutOfRange
from repro.library.cartridge import Cartridge
from repro.scheduling.base import Scheduler
from repro.scheduling.executor import execute_schedule
from repro.scheduling.loss import LossScheduler
from repro.scheduling.request import Request


@dataclass(frozen=True)
class StripeMapping:
    """Round-robin mapping of a logical space onto K cartridges.

    Logical segments are grouped into *stripe units* of
    ``stripe_unit`` segments; unit ``u`` lives on cartridge
    ``u mod K`` at physical unit ``u // K``.
    """

    drives: int
    stripe_unit: int
    units_per_drive: int

    @property
    def logical_total(self) -> int:
        """Number of logical segments the volume exposes."""
        return self.drives * self.units_per_drive * self.stripe_unit

    def locate(self, logical_segment: int) -> tuple[int, int]:
        """Map a logical segment to ``(drive index, physical segment)``."""
        if not 0 <= logical_segment < self.logical_total:
            raise SegmentOutOfRange(logical_segment, self.logical_total)
        unit, offset = divmod(logical_segment, self.stripe_unit)
        drive = unit % self.drives
        physical_unit = unit // self.drives
        return drive, physical_unit * self.stripe_unit + offset

    def logical_of(self, drive: int, physical_segment: int) -> int:
        """Inverse of :meth:`locate`."""
        physical_unit, offset = divmod(physical_segment, self.stripe_unit)
        unit = physical_unit * self.drives + drive
        return unit * self.stripe_unit + offset


@dataclass(frozen=True)
class StripedBatchResult:
    """Outcome of servicing one batch on the array."""

    makespan_seconds: float
    drive_seconds: tuple[float, ...]
    drive_requests: tuple[int, ...]

    @property
    def parallel_efficiency(self) -> float:
        """Total drive-busy time divided by (drives x makespan)."""
        busy = sum(self.drive_seconds)
        return busy / (len(self.drive_seconds) * self.makespan_seconds)


class StripedTapeArray:
    """K cartridges in K drives, serving one striped logical volume."""

    def __init__(
        self,
        cartridges: list[Cartridge],
        stripe_unit: int = 1,
        scheduler: Scheduler | None = None,
    ) -> None:
        if not cartridges:
            raise LibraryError("a striped array needs cartridges")
        if stripe_unit < 1:
            raise LibraryError("stripe_unit must be >= 1")
        self.cartridges = list(cartridges)
        self.scheduler = scheduler or LossScheduler()
        smallest = min(c.geometry.total_segments for c in self.cartridges)
        self.mapping = StripeMapping(
            drives=len(self.cartridges),
            stripe_unit=stripe_unit,
            units_per_drive=smallest // stripe_unit,
        )
        self._drives = [
            SimulatedDrive(cartridge.model)
            for cartridge in self.cartridges
        ]

    @property
    def logical_total(self) -> int:
        """Logical segments exposed by the volume."""
        return self.mapping.logical_total

    def split_batch(
        self, logical_segments
    ) -> list[list[int]]:
        """Per-drive physical sub-batches for a logical batch."""
        split: list[list[int]] = [[] for _ in self.cartridges]
        for logical in np.asarray(logical_segments, dtype=np.int64):
            drive, physical = self.mapping.locate(int(logical))
            split[drive].append(physical)
        return split

    def service_batch(self, logical_segments) -> StripedBatchResult:
        """Schedule and execute one batch across all drives in parallel.

        Each drive's head stays where its previous sub-batch left it
        (the paper's repeated-batches scenario, per drive).
        """
        split = self.split_batch(logical_segments)
        drive_seconds = []
        for index, physicals in enumerate(split):
            if not physicals:
                drive_seconds.append(0.0)
                continue
            drive = self._drives[index]
            schedule = self.scheduler.schedule(
                self.cartridges[index].model,
                drive.position,
                [Request(p) for p in physicals],
            )
            result = execute_schedule(drive, schedule)
            drive_seconds.append(result.total_seconds)
        return StripedBatchResult(
            makespan_seconds=max(drive_seconds),
            drive_seconds=tuple(drive_seconds),
            drive_requests=tuple(len(p) for p in split),
        )
