"""Striped tape arrays — the [DK93]/[GMW95] related-work extension.

The paper cites striped tape organizations (Drapeau & Katz; Golubchik,
Muntz & Watson) as the complementary lever on tape performance:
scheduling attacks positioning *latency*, striping attacks *bandwidth
and parallelism* by spreading a logical volume across several drives.
This module combines the two: a logical address space is striped
round-robin over K cartridges, a random batch is split into its
per-drive sub-batches, each sub-batch is scheduled independently (LOSS
by default), and all drives run in parallel — the batch completes at
the slowest drive's makespan.

Because each drive sees ~1/K of the requests, the per-request
positioning cost *rises* (smaller batches schedule worse — Figure 4),
so the speedup from K drives is sublative: K drives buy less than K×.
The ablation benchmark quantifies that interaction.

Two layers connect striping to the multi-drive library of
:mod:`repro.library`:

* :class:`StripedVolume` — a *replicated* stripe mapping over named
  cartridges: replica ``r`` of stripe unit ``u`` lives on cartridge
  ``(u + r) mod K`` in that cartridge's replica-``r`` region (rotated
  placement, so losing any one cartridge loses exactly one copy of
  each affected unit).
* :class:`StripedReadCoordinator` — fans a logical read out into
  per-unit sub-requests through a
  :class:`~repro.library.system.MultiDriveSystem`'s opened serving
  surface, falls back to surviving replicas when a sub-request
  exhausts the resilience layer's budgets (a *degraded read*), and
  enqueues background repair traffic that re-reads the surviving copy
  — competing with user traffic for drives, arms, and cartridges.
  The coordinator's own accounting closes the durability loop: every
  logical read ends as completed or failed, never silently lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.drive.simulated import SimulatedDrive
from repro.exceptions import LibraryError, SegmentOutOfRange
from repro.library.cartridge import Cartridge
from repro.library.requests import LibraryRequest
from repro.obs.events import DegradedRead, RepairCompleted, RepairStarted
from repro.online.metrics import ResponseStats
from repro.scheduling.base import Scheduler
from repro.scheduling.executor import execute_schedule
from repro.scheduling.loss import LossScheduler
from repro.scheduling.request import Request


@dataclass(frozen=True)
class StripeMapping:
    """Round-robin mapping of a logical space onto K cartridges.

    Logical segments are grouped into *stripe units* of
    ``stripe_unit`` segments; unit ``u`` lives on cartridge
    ``u mod K`` at physical unit ``u // K``.
    """

    drives: int
    stripe_unit: int
    units_per_drive: int

    def __post_init__(self) -> None:
        # Typed errors, not a ZeroDivisionError out of locate(): the
        # mapping is arithmetic, so a zero or negative shape would
        # otherwise surface far from the construction site.
        for name in ("drives", "stripe_unit", "units_per_drive"):
            value = getattr(self, name)
            if value < 1:
                raise LibraryError(
                    f"StripeMapping {name} must be >= 1, got {value}"
                )

    @property
    def logical_total(self) -> int:
        """Number of logical segments the volume exposes."""
        return self.drives * self.units_per_drive * self.stripe_unit

    def locate(self, logical_segment: int) -> tuple[int, int]:
        """Map a logical segment to ``(drive index, physical segment)``."""
        if not 0 <= logical_segment < self.logical_total:
            raise SegmentOutOfRange(logical_segment, self.logical_total)
        unit, offset = divmod(logical_segment, self.stripe_unit)
        drive = unit % self.drives
        physical_unit = unit // self.drives
        return drive, physical_unit * self.stripe_unit + offset

    def logical_of(self, drive: int, physical_segment: int) -> int:
        """Inverse of :meth:`locate`."""
        physical_unit, offset = divmod(physical_segment, self.stripe_unit)
        unit = physical_unit * self.drives + drive
        return unit * self.stripe_unit + offset


@dataclass(frozen=True)
class StripedBatchResult:
    """Outcome of servicing one batch on the array."""

    makespan_seconds: float
    drive_seconds: tuple[float, ...]
    drive_requests: tuple[int, ...]

    @property
    def parallel_efficiency(self) -> float:
        """Total drive-busy time divided by (drives x makespan)."""
        busy = sum(self.drive_seconds)
        return busy / (len(self.drive_seconds) * self.makespan_seconds)


class StripedTapeArray:
    """K cartridges in K drives, serving one striped logical volume."""

    def __init__(
        self,
        cartridges: list[Cartridge],
        stripe_unit: int = 1,
        scheduler: Scheduler | None = None,
    ) -> None:
        if not cartridges:
            raise LibraryError("a striped array needs cartridges")
        if stripe_unit < 1:
            raise LibraryError("stripe_unit must be >= 1")
        self.cartridges = list(cartridges)
        self.scheduler = scheduler or LossScheduler()
        smallest = min(c.geometry.total_segments for c in self.cartridges)
        self.mapping = StripeMapping(
            drives=len(self.cartridges),
            stripe_unit=stripe_unit,
            units_per_drive=smallest // stripe_unit,
        )
        self._drives = [
            SimulatedDrive(cartridge.model)
            for cartridge in self.cartridges
        ]

    @property
    def logical_total(self) -> int:
        """Logical segments exposed by the volume."""
        return self.mapping.logical_total

    def split_batch(
        self, logical_segments
    ) -> list[list[int]]:
        """Per-drive physical sub-batches for a logical batch."""
        split: list[list[int]] = [[] for _ in self.cartridges]
        for logical in np.asarray(logical_segments, dtype=np.int64):
            drive, physical = self.mapping.locate(int(logical))
            split[drive].append(physical)
        return split

    def service_batch(self, logical_segments) -> StripedBatchResult:
        """Schedule and execute one batch across all drives in parallel.

        Each drive's head stays where its previous sub-batch left it
        (the paper's repeated-batches scenario, per drive).
        """
        split = self.split_batch(logical_segments)
        drive_seconds = []
        for index, physicals in enumerate(split):
            if not physicals:
                drive_seconds.append(0.0)
                continue
            drive = self._drives[index]
            schedule = self.scheduler.schedule(
                self.cartridges[index].model,
                drive.position,
                [Request(p) for p in physicals],
            )
            result = execute_schedule(drive, schedule)
            drive_seconds.append(result.total_seconds)
        return StripedBatchResult(
            makespan_seconds=max(drive_seconds),
            drive_seconds=tuple(drive_seconds),
            drive_requests=tuple(len(p) for p in split),
        )


# -- replicated volumes on the multi-drive library ---------------------------


@dataclass(frozen=True)
class StripedVolume:
    """A replicated stripe mapping over named cartridges.

    The logical space of ``mapping`` is striped round-robin over the K
    ``labels``; each stripe unit additionally exists as ``replicas``
    copies with *rotated* placement — replica ``r`` of unit ``u`` lives
    on cartridge ``(u + r) mod K``, inside that cartridge's
    replica-``r`` region (physical units
    ``[r * units_per_drive, (r + 1) * units_per_drive)``).  Rotation
    means losing one cartridge costs exactly one copy of each unit it
    held, never two, so any single-cartridge failure leaves
    ``replicas - 1`` readable copies of everything.

    Each cartridge therefore needs
    ``replicas * units_per_drive * stripe_unit`` physical segments
    (checked by :func:`striped_volume`, which sizes a volume to fit a
    shelf).
    """

    labels: tuple[str, ...]
    mapping: StripeMapping
    replicas: int = 1

    def __post_init__(self) -> None:
        if len(self.labels) != self.mapping.drives:
            raise LibraryError(
                f"volume has {len(self.labels)} labels but the "
                f"mapping stripes over {self.mapping.drives}"
            )
        if len(set(self.labels)) != len(self.labels):
            raise LibraryError("volume labels must be unique")
        if not 1 <= self.replicas <= len(self.labels):
            raise LibraryError(
                f"replicas must be in [1, {len(self.labels)}], "
                f"got {self.replicas}"
            )

    @property
    def logical_total(self) -> int:
        """Logical segments exposed by the volume."""
        return self.mapping.logical_total

    @property
    def total_units(self) -> int:
        """Stripe units in the logical space."""
        return self.mapping.drives * self.mapping.units_per_drive

    def unit_of(self, logical_segment: int) -> tuple[int, int]:
        """The ``(stripe unit, offset within it)`` of a logical segment."""
        if not 0 <= logical_segment < self.logical_total:
            raise SegmentOutOfRange(logical_segment, self.logical_total)
        return divmod(logical_segment, self.mapping.stripe_unit)

    def unit_location(self, unit: int, replica: int) -> tuple[str, int]:
        """Cartridge label and physical segment of a unit copy's start."""
        if not 0 <= unit < self.total_units:
            raise SegmentOutOfRange(unit, self.total_units)
        if not 0 <= replica < self.replicas:
            raise LibraryError(
                f"replica must be in [0, {self.replicas}), got {replica}"
            )
        k = len(self.labels)
        label = self.labels[(unit + replica) % k]
        physical_unit = (
            replica * self.mapping.units_per_drive + unit // k
        )
        return label, physical_unit * self.mapping.stripe_unit

    def locate(
        self, logical_segment: int, replica: int = 0
    ) -> tuple[str, int]:
        """Cartridge label and physical segment of one logical segment."""
        unit, offset = self.unit_of(logical_segment)
        label, start = self.unit_location(unit, replica)
        return label, start + offset

    def unit_runs(
        self, logical_segment: int, length: int
    ) -> list[tuple[int, int, int]]:
        """Split a logical range into per-unit contiguous runs.

        Returns ``(unit, offset within unit, run length)`` triples; each
        run stays inside one stripe unit, hence lands contiguously on
        one cartridge (for every replica) — the fan-out granule of the
        read coordinator.
        """
        if length < 1:
            raise LibraryError(f"length must be >= 1, got {length}")
        if logical_segment + length > self.logical_total:
            raise SegmentOutOfRange(
                logical_segment + length - 1, self.logical_total
            )
        runs: list[tuple[int, int, int]] = []
        remaining = length
        position = logical_segment
        while remaining > 0:
            unit, offset = self.unit_of(position)
            take = min(remaining, self.mapping.stripe_unit - offset)
            runs.append((unit, offset, take))
            position += take
            remaining -= take
        return runs


def striped_volume(
    cartridges: list[Cartridge],
    stripe_unit: int = 1,
    replicas: int = 1,
) -> StripedVolume:
    """Size a :class:`StripedVolume` to fit a shelf of cartridges.

    The logical capacity is what the *smallest* cartridge can hold
    after reserving room for every replica region.
    """
    if not cartridges:
        raise LibraryError("a striped volume needs cartridges")
    if stripe_unit < 1:
        raise LibraryError("stripe_unit must be >= 1")
    smallest = min(c.geometry.total_segments for c in cartridges)
    units = smallest // (stripe_unit * max(1, replicas))
    if units < 1:
        raise LibraryError(
            f"cartridges of {smallest} segments cannot hold "
            f"{replicas} replicas of stripe unit {stripe_unit}"
        )
    return StripedVolume(
        labels=tuple(c.label for c in cartridges),
        mapping=StripeMapping(
            drives=len(cartridges),
            stripe_unit=stripe_unit,
            units_per_drive=units,
        ),
        replicas=replicas,
    )


@dataclass
class LogicalRead:
    """One user-visible read of the striped volume."""

    arrival_seconds: float
    logical_segment: int
    length: int
    #: Sub-requests still in flight (by object id).
    pending: set[int] = field(default_factory=set)
    completion_seconds: float = 0.0
    #: Sub-requests that fell back to a surviving replica.
    degraded: int = 0
    failed: bool = False


@dataclass
class _SubRead:
    read: LogicalRead
    unit: int
    offset: int
    length: int
    replica: int


@dataclass
class _Repair:
    unit: int
    replica: int
    enqueued_seconds: float


class StripedReadCoordinator:
    """Replica-aware logical reads on a multi-drive library.

    Sits on the opened serving surface of a
    :class:`~repro.library.system.MultiDriveSystem` (``begin`` /
    ``submit`` / ``finish`` plus the completion and failure listeners):

    * :meth:`submit` fans a logical read out into per-stripe-unit
      sub-requests against the primary replica — different units live
      on different cartridges, so the read parallelizes across drive
      bays;
    * a sub-request the system reports *failed* (retries and requeues
      exhausted on that cartridge) is re-issued against the next
      surviving replica — a **degraded read**
      (:class:`~repro.obs.events.DegradedRead`), preserving the
      original arrival time so the response-time statistics keep
      charging the full wait;
    * each degraded unit gets one background **repair** read of the
      whole surviving copy
      (:class:`~repro.obs.events.RepairStarted` /
      :class:`~repro.obs.events.RepairCompleted`) — re-replication
      traffic competing with user requests for drives, arms, and
      cartridges;
    * a sub-request that fails on the *last* replica marks the whole
      logical read failed — a durability loss, surfaced in
      :attr:`failed_reads`, never silently dropped: after
      :meth:`~repro.library.system.MultiDriveSystem.finish`,
      :attr:`lost` is zero by construction and the chaos sweep gates
      on it.

    The system's own ``failed`` list still counts per-cartridge
    sub-request failures; durability lives here, where redundancy is
    visible.
    """

    def __init__(self, system, volume: StripedVolume) -> None:
        for label in volume.labels:
            system.cartridge(label)  # raises UnknownTape early
        self.system = system
        self.volume = volume
        self.stats = ResponseStats()
        #: Logical reads submitted / completed.
        self.reads = 0
        self.completed = 0
        #: Logical reads that exhausted every replica.
        self.failed_reads: list[LogicalRead] = []
        #: Sub-requests served from a non-primary replica.
        self.degraded_reads = 0
        self.repairs_started = 0
        self.repairs_completed = 0
        #: Repairs whose every source replica failed.
        self.repairs_failed = 0
        self._subs: dict[int, _SubRead] = {}
        self._repairs: dict[int, _Repair] = {}
        self._units_under_repair: set[int] = set()
        system.completion_listeners.append(self._on_complete)
        system.failure_listeners.append(self._on_failure)

    @property
    def lost(self) -> int:
        """Logical reads neither completed nor surfaced as failed.

        Zero after a finished run — anything else is a coordinator
        bug, not a statistic (the chaos sweep gates on this).
        """
        return self.reads - self.completed - len(self.failed_reads)

    def submit(
        self,
        arrival_seconds: float,
        logical_segment: int,
        length: int = 1,
    ) -> LogicalRead:
        """Fan one logical read out across the primary replicas."""
        read = LogicalRead(
            arrival_seconds=arrival_seconds,
            logical_segment=logical_segment,
            length=length,
        )
        self.reads += 1
        for unit, offset, run in self.volume.unit_runs(
            logical_segment, length
        ):
            self._issue(read, unit, offset, run, replica=0)
        return read

    def _issue(
        self,
        read: LogicalRead,
        unit: int,
        offset: int,
        length: int,
        replica: int,
    ) -> None:
        label, start = self.volume.unit_location(unit, replica)
        request = LibraryRequest(
            arrival_seconds=read.arrival_seconds,
            label=label,
            segment=start + offset,
            length=length,
        )
        self._subs[id(request)] = _SubRead(
            read=read,
            unit=unit,
            offset=offset,
            length=length,
            replica=replica,
        )
        read.pending.add(id(request))
        self.system.submit(request)

    def _on_complete(
        self, request, completion_seconds: float, drive: int
    ) -> None:
        repair = self._repairs.pop(id(request), None)
        if repair is not None:
            self._finish_repair(repair, completion_seconds)
            return
        sub = self._subs.pop(id(request), None)
        if sub is None:
            return
        read = sub.read
        read.pending.discard(id(request))
        read.completion_seconds = max(
            read.completion_seconds, completion_seconds
        )
        if not read.pending and not read.failed:
            self.completed += 1
            self.stats.record(
                read.arrival_seconds, read.completion_seconds
            )

    def _on_failure(self, request) -> None:
        repair = self._repairs.pop(id(request), None)
        if repair is not None:
            self._retry_repair(repair)
            return
        sub = self._subs.pop(id(request), None)
        if sub is None:
            return
        read = sub.read
        read.pending.discard(id(request))
        next_replica = sub.replica + 1
        if next_replica < self.volume.replicas:
            # Degraded read: the unit survives on the next rotated
            # copy.  The re-issued sub keeps the original arrival, so
            # the eventual completion is charged the full wait.
            self.degraded_reads += 1
            read.degraded += 1
            label, start = self.volume.unit_location(
                sub.unit, next_replica
            )
            if self.system.bus is not None:
                self.system.bus.publish(
                    DegradedRead(
                        seconds=self.system.clock_seconds,
                        label=label,
                        segment=start + sub.offset,
                        replica=next_replica,
                        logical_segment=(
                            sub.unit * self.volume.mapping.stripe_unit
                            + sub.offset
                        ),
                    )
                )
            self._issue(
                read, sub.unit, sub.offset, sub.length, next_replica
            )
            self._start_repair(sub.unit, next_replica)
            return
        # Every replica exhausted: a durability loss, surfaced (the
        # read is failed, not lost).
        if not read.failed:
            read.failed = True
            self.failed_reads.append(read)

    # -- background repair ---------------------------------------------------

    def _start_repair(self, unit: int, source_replica: int) -> None:
        if unit in self._units_under_repair:
            return
        self._units_under_repair.add(unit)
        self.repairs_started += 1
        now = self.system.clock_seconds
        repair = _Repair(
            unit=unit,
            replica=source_replica,
            enqueued_seconds=now,
        )
        label, start = self.volume.unit_location(unit, source_replica)
        if self.system.bus is not None:
            self.system.bus.publish(
                RepairStarted(
                    seconds=now,
                    label=label,
                    segment=start,
                    length=self.volume.mapping.stripe_unit,
                    replica=source_replica,
                )
            )
        self._submit_repair(repair)

    def _submit_repair(self, repair: _Repair) -> None:
        label, start = self.volume.unit_location(
            repair.unit, repair.replica
        )
        request = LibraryRequest(
            arrival_seconds=self.system.clock_seconds,
            label=label,
            segment=start,
            length=self.volume.mapping.stripe_unit,
        )
        self._repairs[id(request)] = repair
        self.system.submit(request)

    def _retry_repair(self, repair: _Repair) -> None:
        next_replica = repair.replica + 1
        if next_replica < self.volume.replicas:
            repair.replica = next_replica
            self._submit_repair(repair)
            return
        self.repairs_failed += 1
        self._units_under_repair.discard(repair.unit)

    def _finish_repair(
        self, repair: _Repair, completion_seconds: float
    ) -> None:
        self.repairs_completed += 1
        self._units_under_repair.discard(repair.unit)
        label, start = self.volume.unit_location(
            repair.unit, repair.replica
        )
        if self.system.bus is not None:
            self.system.bus.publish(
                RepairCompleted(
                    seconds=completion_seconds,
                    label=label,
                    segment=start,
                    length=self.volume.mapping.stripe_unit,
                    replica=repair.replica,
                    wait_seconds=(
                        completion_seconds - repair.enqueued_seconds
                    ),
                )
            )
