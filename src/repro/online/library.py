"""Deprecated shim — the robotic library moved to :mod:`repro.library`.

The event-driven multi-drive library subsystem (``repro.library``)
absorbed the single-drive :class:`~repro.library.cartridge.TapeLibrary`
and :class:`~repro.library.cartridge.Cartridge`, which now live in
``repro.library.cartridge``.  Importing them from here still works but
warns once; new code should import from ``repro.library`` (or the
``repro.api`` facade).
"""

from __future__ import annotations

import warnings

from repro.library import cartridge as _cartridge

_MOVED = ("Cartridge", "DEFAULT_EXCHANGE_SECONDS", "TapeLibrary")

#: Names whose deprecation has already been announced.  The guard
#: makes the warning fire exactly once per name per process, however
#: the caller's warning filters are configured — repeated accesses on
#: a hot path must not spam (or, under ``-W error``, crash) the run.
_warned: set[str] = set()


def __getattr__(name: str):
    if name in _MOVED:
        if name not in _warned:
            _warned.add(name)
            warnings.warn(
                f"repro.online.library.{name} moved to "
                "repro.library.cartridge; this import path is "
                "deprecated and will be removed in a future release",
                DeprecationWarning,
                stacklevel=2,
            )
        return getattr(_cartridge, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__() -> list[str]:
    return sorted(_MOVED)
