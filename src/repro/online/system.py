"""The online tertiary storage system the paper motivates.

Glues the pieces together into the service loop of an online store:
requests arrive over time, accumulate in a batch queue, and whenever
the drive is free the queued batch is handed to a scheduling algorithm
and executed.  The simulation is event-stepped at batch granularity
(the drive is busy for the whole batch, as a real DLT would be), which
is exactly the paper's "a tape is scheduled repeatedly, executing
retrievals in batches" scenario — the head starts each batch wherever
the previous batch finished.

Passing ``bus=`` instruments the whole pipeline: the queue publishes
admit/dispatch events, the scheduler's estimate is published with each
computed schedule, the executor publishes per-request locate/read
events carrying *estimated vs actual* locate seconds, and the system
publishes per-request completions (at each request's read, not at
batch end) plus per-batch spans whose phase durations — queue wait,
locate, read, rewind — partition the measured execution exactly.  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import KW_ONLY, dataclass, field

from repro.drive.simulated import SimulatedDrive
from repro.geometry.tape import TapeGeometry
from repro.model.locate import LocateTimeModel
from repro.obs.bus import EventBus
from repro.obs.events import (
    BatchCompleted,
    BatchStarted,
    DegradedMode,
    RequestCompleted,
    RequestFailed,
    ScheduleComputed,
)
from repro.online.batch_queue import BatchPolicy, BatchQueue
from repro.online.metrics import ResponseStats
from repro.resilience.injection import FaultInjector, FaultPlan
from repro.resilience.policy import ResilienceConfig
from repro.scheduling.base import Scheduler, get_scheduler
from repro.scheduling.estimator import locate_sequence_times
from repro.scheduling.executor import ExecutionResult, execute_schedule
from repro.scheduling.loss import LossScheduler
from repro.scheduling.request import Request
from repro.scheduling.schedule import Schedule
from repro.workload.arrivals import TimedRequest


@dataclass(frozen=True)
class BatchRecord:
    """One executed batch, for reporting.

    The original fields (start, size, algorithm, total execution) are
    joined by the per-phase decomposition the telemetry layer carries:
    ``locate_seconds + transfer_seconds + rewind_seconds ==
    execution_seconds`` (to float round-off), ``queue_wait_seconds`` is
    the summed pre-execution wait of the batch's requests, and
    ``estimated_seconds`` the scheduler's model estimate.
    """

    start_seconds: float
    size: int
    algorithm: str
    execution_seconds: float
    queue_wait_seconds: float = 0.0
    locate_seconds: float = 0.0
    transfer_seconds: float = 0.0
    rewind_seconds: float = 0.0
    estimated_seconds: float | None = None
    fault_seconds: float = 0.0
    failed: int = 0

    @property
    def phase_seconds(self) -> float:
        """Sum of the execution phases (equals ``execution_seconds``)."""
        return (
            self.locate_seconds
            + self.transfer_seconds
            + self.rewind_seconds
            + self.fault_seconds
        )


@dataclass
class TertiaryStorageSystem:
    """Single-cartridge online request service.

    Parameters
    ----------
    geometry:
        The mounted cartridge.
    scheduler:
        Batch scheduling algorithm (default: the paper's LOSS).
    policy:
        Batching policy.
    bus:
        Optional :class:`~repro.obs.bus.EventBus`; wires the queue,
        drive, executor, and this system's own batch/request events
        onto one stream.  ``None`` (the default) adds no overhead.
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig`.  Turns on
        the failure-hardened path: the executor retries faults in
        place, requests that still fail are requeued into the next
        batch up to ``max_requeues`` times (then surfaced on
        :attr:`failed`), and blowing a schedule/execution time budget
        drops the scheduler to the configured fallback.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan`; wraps the drive
        in a :class:`~repro.resilience.FaultInjector` (chaos testing).
        Implies a default ``resilience`` config if none was given —
        injected faults without a retry layer would crash the run.
    """

    geometry: TapeGeometry
    # Everything below is configuration, not data: keyword-only, per
    # the package-wide constructor convention (see docs/API.md).
    _: KW_ONLY
    scheduler: Scheduler = field(default_factory=LossScheduler)
    policy: BatchPolicy = field(default_factory=BatchPolicy)
    bus: EventBus | None = None
    resilience: ResilienceConfig | None = None
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        self.model = LocateTimeModel(self.geometry)
        self.drive = SimulatedDrive(self.model, bus=self.bus)
        if self.fault_plan is not None and self.fault_plan.any_faults:
            self.drive = FaultInjector(
                self.drive, self.fault_plan, bus=self.bus
            )
            if self.resilience is None:
                self.resilience = ResilienceConfig()
        self.queue = BatchQueue(policy=self.policy, bus=self.bus)
        self.stats = ResponseStats()
        self.batches: list[BatchRecord] = []
        self._drive_free_at = 0.0
        #: Requests that exhausted their requeue budget, in failure
        #: order (empty without a resilience config, where execution
        #: either completes every request or raises).
        self.failed: list[TimedRequest] = []
        #: Times a failed request re-entered the queue.
        self.requeues: int = 0
        self._requeue_counts: dict[int, int] = {}
        self._degraded = False
        self._fallback_scheduler: Scheduler | None = None

    @property
    def degraded(self) -> bool:
        """Has the system dropped to its fallback scheduler?"""
        return self._degraded

    def _active_scheduler(self) -> Scheduler:
        """The scheduler for the next batch (fallback once degraded)."""
        if self._degraded:
            if self._fallback_scheduler is None:
                self._fallback_scheduler = get_scheduler(
                    self.resilience.fallback_algorithm
                )
            return self._fallback_scheduler
        return self.scheduler

    def _enter_degraded(self, reason: str, now: float) -> None:
        """Trip degraded mode (sticky for the rest of the run)."""
        if self._degraded:
            return
        self._degraded = True
        if self.bus is not None:
            self.bus.publish(
                DegradedMode(
                    seconds=now,
                    batch_index=len(self.batches) - 1,
                    reason=reason,
                    from_algorithm=self.scheduler.name,
                    to_algorithm=self.resilience.fallback_algorithm,
                )
            )

    def run(self, requests: Iterable[TimedRequest]) -> ResponseStats:
        """Service a timed request stream to completion.

        Accepts any iterable of requests (materialized once); order
        does not matter.  Returns the response-time statistics (also
        kept on ``self.stats``).
        """
        pending = sorted(requests, key=lambda r: r.arrival_seconds)
        index = 0
        now = 0.0
        while index < len(pending) or len(self.queue):
            if self.bus is not None:
                self.bus.set_time(now)
            # Admit everything that has arrived by `now`.
            while (
                index < len(pending)
                and pending[index].arrival_seconds <= now
            ):
                self._admit(pending[index], now)
                index += 1

            drive_idle = now >= self._drive_free_at
            if self.queue.ready(now, drive_idle) and drive_idle:
                self._run_batch(now)
                now = self._drive_free_at
                continue

            # Advance time to the next interesting instant.
            horizons = []
            if index < len(pending):
                horizons.append(pending[index].arrival_seconds)
            if not drive_idle:
                horizons.append(self._drive_free_at)
            oldest = self.queue.oldest_arrival
            if oldest is not None:
                horizons.append(
                    self.policy.next_deadline_seconds(oldest)
                )
            if not horizons:
                break
            now = max(now, min(horizons))
        return self.stats

    def _admit(self, item: TimedRequest, now: float) -> None:
        """Route one arrived request (hook: a cache tier front-ends this)."""
        self.queue.push(item)

    def _complete(
        self,
        item: TimedRequest,
        completion_seconds: float,
        position: int,
    ) -> None:
        """Record one request's completion (and publish it)."""
        self.stats.record(item.arrival_seconds, completion_seconds)
        if self.bus is not None:
            self.bus.publish(
                RequestCompleted(
                    seconds=completion_seconds,
                    position=position,
                    segment=item.segment,
                    length=item.length,
                    arrival_seconds=item.arrival_seconds,
                    completion_seconds=completion_seconds,
                )
            )

    def _run_batch(
        self, now: float
    ) -> tuple[list[TimedRequest], Schedule, ExecutionResult]:
        batch = self.queue.flush()
        requests = [Request(item.segment, item.length) for item in batch]
        schedule_started = time.perf_counter()
        schedule = self._active_scheduler().schedule(
            self.model, self.drive.position, requests
        )
        schedule_wall = time.perf_counter() - schedule_started
        batch_index = len(self.batches)
        estimated_locates = None
        if self.bus is not None:
            self.bus.publish(
                ScheduleComputed(
                    seconds=now,
                    algorithm=schedule.algorithm,
                    batch_size=len(schedule),
                    origin=schedule.origin,
                    estimated_seconds=schedule.estimated_seconds,
                )
            )
            self.bus.publish(
                BatchStarted(
                    seconds=now,
                    batch_index=batch_index,
                    batch_size=len(batch),
                    origin=schedule.origin,
                )
            )
            if not schedule.whole_tape:
                # The scheduler's own per-hop estimates, so locate
                # events carry estimated-vs-actual seconds.
                estimated_locates = locate_sequence_times(
                    self.model, schedule
                )
        result = execute_schedule(
            self.drive,
            schedule,
            bus=self.bus,
            estimated_locate_seconds=estimated_locates,
            base_seconds=now,
            policy=(
                None if self.resilience is None else self.resilience.retry
            ),
        )
        queue_wait = sum(now - item.arrival_seconds for item in batch)
        self.batches.append(
            BatchRecord(
                start_seconds=now,
                size=len(batch),
                algorithm=schedule.algorithm,
                execution_seconds=result.total_seconds,
                queue_wait_seconds=queue_wait,
                locate_seconds=(
                    result.locate_seconds - result.rewind_seconds
                ),
                transfer_seconds=result.transfer_seconds,
                rewind_seconds=result.rewind_seconds,
                estimated_seconds=schedule.estimated_seconds,
                fault_seconds=result.fault_seconds,
                failed=result.failed_count,
            )
        )
        self._drive_free_at = now + result.total_seconds
        # Completion time of each request = batch start + offset of its
        # scheduled position (stamped at its read event, not at batch
        # end).  Map scheduled order back to arrivals; failed requests
        # are requeued (bounded) instead of completed.
        by_key: dict[tuple[int, int], list[TimedRequest]] = {}
        for item in batch:
            by_key.setdefault((item.segment, item.length), []).append(item)
        for position, request in enumerate(schedule):
            item = by_key[(request.segment, request.length)].pop(0)
            if result.success is None or result.success[position]:
                self._requeue_counts.pop(id(item), None)
                self._complete(
                    item,
                    now + float(result.completion_seconds[position]),
                    position,
                )
            else:
                self._handle_failure(item, position)
        if self.bus is not None:
            record = self.batches[-1]
            self.bus.publish(
                BatchCompleted(
                    seconds=self._drive_free_at,
                    batch_index=batch_index,
                    algorithm=record.algorithm,
                    batch_size=record.size,
                    queue_wait_seconds=record.queue_wait_seconds,
                    locate_seconds=record.locate_seconds,
                    transfer_seconds=record.transfer_seconds,
                    rewind_seconds=record.rewind_seconds,
                    total_seconds=record.execution_seconds,
                    estimated_seconds=record.estimated_seconds,
                    fault_seconds=record.fault_seconds,
                )
            )
            self.bus.set_time(self._drive_free_at)
        if self.resilience is not None:
            if schedule_wall > self.resilience.schedule_wall_budget_seconds:
                self._enter_degraded(
                    f"scheduling took {schedule_wall:.3f} s of wall "
                    "clock, over budget",
                    self._drive_free_at,
                )
            elif (
                result.total_seconds
                > self.resilience.execution_budget_seconds
            ):
                self._enter_degraded(
                    f"batch execution took {result.total_seconds:.1f} "
                    "simulated s, over budget",
                    self._drive_free_at,
                )
        return batch, schedule, result

    def _handle_failure(self, item: TimedRequest, position: int) -> None:
        """Requeue a failed request, or surface it once the budget is
        spent."""
        count = self._requeue_counts.get(id(item), 0)
        if (
            self.resilience is not None
            and count < self.resilience.max_requeues
        ):
            self._requeue_counts[id(item)] = count + 1
            self.requeues += 1
            self.queue.push(item)
            return
        self._requeue_counts.pop(id(item), None)
        self.failed.append(item)
        if self.bus is not None:
            self.bus.publish(
                RequestFailed(
                    seconds=self._drive_free_at,
                    position=position,
                    segment=item.segment,
                    attempts=count + 1,
                    reason="requeue budget exhausted",
                )
            )
