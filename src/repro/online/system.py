"""The online tertiary storage system the paper motivates.

Glues the pieces together into the service loop of an online store:
requests arrive over time, accumulate in a batch queue, and whenever
the drive is free the queued batch is handed to a scheduling algorithm
and executed.  The simulation is event-stepped at batch granularity
(the drive is busy for the whole batch, as a real DLT would be), which
is exactly the paper's "a tape is scheduled repeatedly, executing
retrievals in batches" scenario — the head starts each batch wherever
the previous batch finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.drive.simulated import SimulatedDrive
from repro.geometry.tape import TapeGeometry
from repro.model.locate import LocateTimeModel
from repro.online.batch_queue import BatchPolicy, BatchQueue
from repro.online.metrics import ResponseStats
from repro.scheduling.base import Scheduler
from repro.scheduling.executor import ExecutionResult, execute_schedule
from repro.scheduling.loss import LossScheduler
from repro.scheduling.request import Request
from repro.scheduling.schedule import Schedule
from repro.workload.arrivals import TimedRequest


@dataclass(frozen=True)
class BatchRecord:
    """One executed batch, for reporting."""

    start_seconds: float
    size: int
    algorithm: str
    execution_seconds: float


@dataclass
class TertiaryStorageSystem:
    """Single-cartridge online request service.

    Parameters
    ----------
    geometry:
        The mounted cartridge.
    scheduler:
        Batch scheduling algorithm (default: the paper's LOSS).
    policy:
        Batching policy.
    """

    geometry: TapeGeometry
    scheduler: Scheduler = field(default_factory=LossScheduler)
    policy: BatchPolicy = field(default_factory=BatchPolicy)

    def __post_init__(self) -> None:
        self.model = LocateTimeModel(self.geometry)
        self.drive = SimulatedDrive(self.model)
        self.queue = BatchQueue(policy=self.policy)
        self.stats = ResponseStats()
        self.batches: list[BatchRecord] = []
        self._drive_free_at = 0.0

    def run(self, requests: list[TimedRequest]) -> ResponseStats:
        """Service a timed request stream to completion.

        Requests must be in arrival order.  Returns the response-time
        statistics (also kept on ``self.stats``).
        """
        pending = sorted(requests, key=lambda r: r.arrival_seconds)
        index = 0
        now = 0.0
        while index < len(pending) or len(self.queue):
            # Admit everything that has arrived by `now`.
            while (
                index < len(pending)
                and pending[index].arrival_seconds <= now
            ):
                self._admit(pending[index], now)
                index += 1

            drive_idle = now >= self._drive_free_at
            if self.queue.ready(now, drive_idle) and drive_idle:
                self._run_batch(now)
                now = self._drive_free_at
                continue

            # Advance time to the next interesting instant.
            horizons = []
            if index < len(pending):
                horizons.append(pending[index].arrival_seconds)
            if not drive_idle:
                horizons.append(self._drive_free_at)
            oldest = self.queue.oldest_arrival
            if oldest is not None:
                horizons.append(oldest + self.policy.max_wait_seconds)
            if not horizons:
                break
            now = max(now, min(horizons))
        return self.stats

    def _admit(self, item: TimedRequest, now: float) -> None:
        """Route one arrived request (hook: a cache tier front-ends this)."""
        self.queue.push(item)

    def _run_batch(
        self, now: float
    ) -> tuple[list[TimedRequest], Schedule, ExecutionResult]:
        batch = self.queue.flush()
        requests = [Request(item.segment, item.length) for item in batch]
        schedule = self.scheduler.schedule(
            self.model, self.drive.position, requests
        )
        result = execute_schedule(self.drive, schedule)
        self.batches.append(
            BatchRecord(
                start_seconds=now,
                size=len(batch),
                algorithm=schedule.algorithm,
                execution_seconds=result.total_seconds,
            )
        )
        # Completion time of each request = batch start + offset of its
        # scheduled position.  Map scheduled order back to arrivals.
        by_key: dict[tuple[int, int], list[TimedRequest]] = {}
        for item in batch:
            by_key.setdefault((item.segment, item.length), []).append(item)
        for position, request in enumerate(schedule):
            item = by_key[(request.segment, request.length)].pop(0)
            self.stats.record(
                item.arrival_seconds,
                now + float(result.completion_seconds[position]),
            )
        self._drive_free_at = now + result.total_seconds
        return batch, schedule, result
