"""The online tertiary storage system the paper motivates.

Glues the pieces together into the service loop of an online store:
requests arrive over time, accumulate in a batch queue, and whenever
the drive is free the queued batch is handed to a scheduling algorithm
and executed.  The simulation is event-stepped at batch granularity
(the drive is busy for the whole batch, as a real DLT would be), which
is exactly the paper's "a tape is scheduled repeatedly, executing
retrievals in batches" scenario — the head starts each batch wherever
the previous batch finished.

Passing ``bus=`` instruments the whole pipeline: the queue publishes
admit/dispatch events, the scheduler's estimate is published with each
computed schedule, the executor publishes per-request locate/read
events carrying *estimated vs actual* locate seconds, and the system
publishes per-request completions (at each request's read, not at
batch end) plus per-batch spans whose phase durations — queue wait,
locate, read, rewind — partition the measured execution exactly.  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.drive.simulated import SimulatedDrive
from repro.geometry.tape import TapeGeometry
from repro.model.locate import LocateTimeModel
from repro.obs.bus import EventBus
from repro.obs.events import (
    BatchCompleted,
    BatchStarted,
    RequestCompleted,
    ScheduleComputed,
)
from repro.online.batch_queue import BatchPolicy, BatchQueue
from repro.online.metrics import ResponseStats
from repro.scheduling.base import Scheduler
from repro.scheduling.estimator import locate_sequence_times
from repro.scheduling.executor import ExecutionResult, execute_schedule
from repro.scheduling.loss import LossScheduler
from repro.scheduling.request import Request
from repro.scheduling.schedule import Schedule
from repro.workload.arrivals import TimedRequest


@dataclass(frozen=True)
class BatchRecord:
    """One executed batch, for reporting.

    The original fields (start, size, algorithm, total execution) are
    joined by the per-phase decomposition the telemetry layer carries:
    ``locate_seconds + transfer_seconds + rewind_seconds ==
    execution_seconds`` (to float round-off), ``queue_wait_seconds`` is
    the summed pre-execution wait of the batch's requests, and
    ``estimated_seconds`` the scheduler's model estimate.
    """

    start_seconds: float
    size: int
    algorithm: str
    execution_seconds: float
    queue_wait_seconds: float = 0.0
    locate_seconds: float = 0.0
    transfer_seconds: float = 0.0
    rewind_seconds: float = 0.0
    estimated_seconds: float | None = None

    @property
    def phase_seconds(self) -> float:
        """Sum of the execution phases (equals ``execution_seconds``)."""
        return (
            self.locate_seconds
            + self.transfer_seconds
            + self.rewind_seconds
        )


@dataclass
class TertiaryStorageSystem:
    """Single-cartridge online request service.

    Parameters
    ----------
    geometry:
        The mounted cartridge.
    scheduler:
        Batch scheduling algorithm (default: the paper's LOSS).
    policy:
        Batching policy.
    bus:
        Optional :class:`~repro.obs.bus.EventBus`; wires the queue,
        drive, executor, and this system's own batch/request events
        onto one stream.  ``None`` (the default) adds no overhead.
    """

    geometry: TapeGeometry
    scheduler: Scheduler = field(default_factory=LossScheduler)
    policy: BatchPolicy = field(default_factory=BatchPolicy)
    bus: EventBus | None = None

    def __post_init__(self) -> None:
        self.model = LocateTimeModel(self.geometry)
        self.drive = SimulatedDrive(self.model, bus=self.bus)
        self.queue = BatchQueue(policy=self.policy, bus=self.bus)
        self.stats = ResponseStats()
        self.batches: list[BatchRecord] = []
        self._drive_free_at = 0.0

    def run(self, requests: Iterable[TimedRequest]) -> ResponseStats:
        """Service a timed request stream to completion.

        Accepts any iterable of requests (materialized once); order
        does not matter.  Returns the response-time statistics (also
        kept on ``self.stats``).
        """
        pending = sorted(requests, key=lambda r: r.arrival_seconds)
        index = 0
        now = 0.0
        while index < len(pending) or len(self.queue):
            if self.bus is not None:
                self.bus.set_time(now)
            # Admit everything that has arrived by `now`.
            while (
                index < len(pending)
                and pending[index].arrival_seconds <= now
            ):
                self._admit(pending[index], now)
                index += 1

            drive_idle = now >= self._drive_free_at
            if self.queue.ready(now, drive_idle) and drive_idle:
                self._run_batch(now)
                now = self._drive_free_at
                continue

            # Advance time to the next interesting instant.
            horizons = []
            if index < len(pending):
                horizons.append(pending[index].arrival_seconds)
            if not drive_idle:
                horizons.append(self._drive_free_at)
            oldest = self.queue.oldest_arrival
            if oldest is not None:
                horizons.append(oldest + self.policy.max_wait_seconds)
            if not horizons:
                break
            now = max(now, min(horizons))
        return self.stats

    def _admit(self, item: TimedRequest, now: float) -> None:
        """Route one arrived request (hook: a cache tier front-ends this)."""
        self.queue.push(item)

    def _complete(
        self,
        item: TimedRequest,
        completion_seconds: float,
        position: int,
    ) -> None:
        """Record one request's completion (and publish it)."""
        self.stats.record(item.arrival_seconds, completion_seconds)
        if self.bus is not None:
            self.bus.publish(
                RequestCompleted(
                    seconds=completion_seconds,
                    position=position,
                    segment=item.segment,
                    length=item.length,
                    arrival_seconds=item.arrival_seconds,
                    completion_seconds=completion_seconds,
                )
            )

    def _run_batch(
        self, now: float
    ) -> tuple[list[TimedRequest], Schedule, ExecutionResult]:
        batch = self.queue.flush()
        requests = [Request(item.segment, item.length) for item in batch]
        schedule = self.scheduler.schedule(
            self.model, self.drive.position, requests
        )
        batch_index = len(self.batches)
        estimated_locates = None
        if self.bus is not None:
            self.bus.publish(
                ScheduleComputed(
                    seconds=now,
                    algorithm=schedule.algorithm,
                    batch_size=len(schedule),
                    origin=schedule.origin,
                    estimated_seconds=schedule.estimated_seconds,
                )
            )
            self.bus.publish(
                BatchStarted(
                    seconds=now,
                    batch_index=batch_index,
                    batch_size=len(batch),
                    origin=schedule.origin,
                )
            )
            if not schedule.whole_tape:
                # The scheduler's own per-hop estimates, so locate
                # events carry estimated-vs-actual seconds.
                estimated_locates = locate_sequence_times(
                    self.model, schedule
                )
        result = execute_schedule(
            self.drive,
            schedule,
            bus=self.bus,
            estimated_locate_seconds=estimated_locates,
            base_seconds=now,
        )
        queue_wait = sum(now - item.arrival_seconds for item in batch)
        self.batches.append(
            BatchRecord(
                start_seconds=now,
                size=len(batch),
                algorithm=schedule.algorithm,
                execution_seconds=result.total_seconds,
                queue_wait_seconds=queue_wait,
                locate_seconds=(
                    result.locate_seconds - result.rewind_seconds
                ),
                transfer_seconds=result.transfer_seconds,
                rewind_seconds=result.rewind_seconds,
                estimated_seconds=schedule.estimated_seconds,
            )
        )
        # Completion time of each request = batch start + offset of its
        # scheduled position (stamped at its read event, not at batch
        # end).  Map scheduled order back to arrivals.
        by_key: dict[tuple[int, int], list[TimedRequest]] = {}
        for item in batch:
            by_key.setdefault((item.segment, item.length), []).append(item)
        for position, request in enumerate(schedule):
            item = by_key[(request.segment, request.length)].pop(0)
            self._complete(
                item,
                now + float(result.completion_seconds[position]),
                position,
            )
        self._drive_free_at = now + result.total_seconds
        if self.bus is not None:
            record = self.batches[-1]
            self.bus.publish(
                BatchCompleted(
                    seconds=self._drive_free_at,
                    batch_index=batch_index,
                    algorithm=record.algorithm,
                    batch_size=record.size,
                    queue_wait_seconds=record.queue_wait_seconds,
                    locate_seconds=record.locate_seconds,
                    transfer_seconds=record.transfer_seconds,
                    rewind_seconds=record.rewind_seconds,
                    total_seconds=record.execution_seconds,
                    estimated_seconds=record.estimated_seconds,
                )
            )
            self.bus.set_time(self._drive_free_at)
        return batch, schedule, result
