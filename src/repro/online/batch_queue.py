"""Request batching policies.

The whole premise of the paper is that "significant speedups can be
obtained by scheduling *batches* of random I/O's": individual requests
are accumulated and scheduled together.  A batching policy decides when
the accumulated batch is handed to the scheduler — when it reaches a
target size, when the oldest request has waited too long, or whenever
the drive goes idle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.bus import EventBus
from repro.obs.events import QueueAdmitted, QueueDispatched
from repro.workload.arrivals import TimedRequest


@dataclass
class BatchPolicy:
    """When to flush the accumulation queue.

    Attributes
    ----------
    max_batch:
        Flush as soon as this many requests are queued.
    max_wait_seconds:
        Flush once the oldest queued request has waited this long
        (``inf`` disables the deadline).
    flush_when_idle:
        Hand over whatever is queued whenever the drive is idle; when
        False the drive waits for a full batch or a deadline.
    """

    max_batch: int = 96
    max_wait_seconds: float = float("inf")
    flush_when_idle: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if math.isnan(self.max_wait_seconds):
            # NaN would slip past the <= 0 check and silently disable
            # the deadline (every comparison against NaN is False).
            raise ValueError(
                "max_wait_seconds must not be NaN; use float('inf') "
                "to disable the deadline"
            )
        if self.max_wait_seconds <= 0:
            raise ValueError(
                "max_wait_seconds must be positive (float('inf') "
                "disables the deadline)"
            )

    def hold_seconds(self) -> float:
        """How long the oldest request may sit queued before a flush.

        Subclasses tighten this (see :class:`DeadlineBatchPolicy`);
        ``inf`` means only size and idleness trigger flushes.
        """
        return self.max_wait_seconds

    def should_flush(
        self,
        depth: int,
        oldest_arrival_seconds: float,
        now_seconds: float,
        drive_idle: bool,
    ) -> bool:
        """The flush decision, given the queue's observable state.

        This is the policy's whole contract: the queue asks, the
        policy answers.  The base rule flushes on a full batch, on the
        oldest request aging past :meth:`hold_seconds`, or whenever
        the drive is idle (if ``flush_when_idle``).
        """
        if depth <= 0:
            return False
        if depth >= self.max_batch:
            return True
        if now_seconds - oldest_arrival_seconds >= self.hold_seconds():
            return True
        return drive_idle and self.flush_when_idle

    def next_deadline_seconds(self, arrival_seconds: float) -> float:
        """Absolute time a request arriving then must be flushed by.

        ``inf`` when the policy imposes no time-based flush.  The
        serving loops use this to schedule wake-ups, so a policy that
        tightens :meth:`should_flush` in time must tighten this too.
        """
        return arrival_seconds + self.hold_seconds()


@dataclass
class DeadlineBatchPolicy(BatchPolicy):
    """A batch cut keyed to per-request response deadlines.

    Generalizes :class:`BatchPolicy`: in addition to the size and
    max-wait triggers, the queue is cut early enough that the oldest
    request can still make its response-time target.  With a target of
    ``deadline_seconds`` and an execution allowance of
    ``cut_slack_seconds`` (the time a dispatched batch is expected to
    need before that request's read completes), the flush fires at
    ``arrival + deadline - slack``.

    This is the deadline-aware cut an SLA gateway wants: the batch
    grows for throughput while the slack lasts, then dispatches for
    latency the moment the oldest deadline is at risk.
    """

    deadline_seconds: float = float("inf")
    cut_slack_seconds: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if math.isnan(self.deadline_seconds):
            raise ValueError(
                "deadline_seconds must not be NaN; use float('inf') "
                "to disable the deadline cut"
            )
        if self.deadline_seconds <= 0:
            raise ValueError(
                "deadline_seconds must be positive (float('inf') "
                "disables the deadline cut)"
            )
        if math.isnan(self.cut_slack_seconds) or self.cut_slack_seconds < 0:
            raise ValueError("cut_slack_seconds must be >= 0")
        if self.cut_slack_seconds >= self.deadline_seconds:
            raise ValueError(
                "cut_slack_seconds must be smaller than "
                "deadline_seconds, or every request is born late"
            )

    def hold_seconds(self) -> float:
        """The tighter of the max-wait and the deadline-minus-slack."""
        return min(
            self.max_wait_seconds,
            self.deadline_seconds - self.cut_slack_seconds,
        )


@dataclass
class BatchQueue:
    """Accumulates timed requests and releases them per a policy.

    With a ``bus`` attached, every :meth:`push` publishes a
    ``queue.admit`` event and every non-empty :meth:`flush` a
    ``queue.dispatch`` event (stamped with the bus clock, which the
    system advances to simulation time).
    """

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    bus: EventBus | None = None
    _pending: list[TimedRequest] = field(default_factory=list)

    def push(self, request: TimedRequest) -> None:
        """Enqueue an arrived request."""
        self._pending.append(request)
        if self.bus is not None:
            self.bus.publish(
                QueueAdmitted(
                    seconds=self.bus.now,
                    segment=request.segment,
                    length=request.length,
                    arrival_seconds=request.arrival_seconds,
                    queue_depth=len(self._pending),
                )
            )

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def oldest_arrival(self) -> float | None:
        """Arrival time of the oldest queued request, if any.

        The minimum over the queue, not the head: pushes usually come
        in arrival order, but a *requeued* request (resilience layer)
        re-enters at the tail with its original — older — arrival time,
        and the deadline must key off the oldest arrival regardless.
        """
        if not self._pending:
            return None
        return min(item.arrival_seconds for item in self._pending)

    def ready(self, now_seconds: float, drive_idle: bool) -> bool:
        """Should the queue flush at time ``now_seconds``?"""
        if not self._pending:
            return False
        return self.policy.should_flush(
            depth=len(self._pending),
            oldest_arrival_seconds=self.oldest_arrival,
            now_seconds=now_seconds,
            drive_idle=drive_idle,
        )

    def flush(self) -> list[TimedRequest]:
        """Release up to ``max_batch`` requests, oldest first."""
        # Stable sort: a no-op for in-order pushes, and it moves
        # requeued (older) requests ahead of newer arrivals.
        self._pending.sort(key=lambda item: item.arrival_seconds)
        batch = self._pending[: self.policy.max_batch]
        self._pending = self._pending[self.policy.max_batch:]
        if batch and self.bus is not None:
            self.bus.publish(
                QueueDispatched(
                    seconds=self.bus.now,
                    batch_size=len(batch),
                    oldest_arrival_seconds=batch[0].arrival_seconds,
                )
            )
        return batch
