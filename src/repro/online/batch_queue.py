"""Request batching policies.

The whole premise of the paper is that "significant speedups can be
obtained by scheduling *batches* of random I/O's": individual requests
are accumulated and scheduled together.  A batching policy decides when
the accumulated batch is handed to the scheduler — when it reaches a
target size, when the oldest request has waited too long, or whenever
the drive goes idle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.bus import EventBus
from repro.obs.events import QueueAdmitted, QueueDispatched
from repro.workload.arrivals import TimedRequest


@dataclass
class BatchPolicy:
    """When to flush the accumulation queue.

    Attributes
    ----------
    max_batch:
        Flush as soon as this many requests are queued.
    max_wait_seconds:
        Flush once the oldest queued request has waited this long
        (``inf`` disables the deadline).
    flush_when_idle:
        Hand over whatever is queued whenever the drive is idle; when
        False the drive waits for a full batch or a deadline.
    """

    max_batch: int = 96
    max_wait_seconds: float = float("inf")
    flush_when_idle: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if math.isnan(self.max_wait_seconds):
            # NaN would slip past the <= 0 check and silently disable
            # the deadline (every comparison against NaN is False).
            raise ValueError(
                "max_wait_seconds must not be NaN; use float('inf') "
                "to disable the deadline"
            )
        if self.max_wait_seconds <= 0:
            raise ValueError(
                "max_wait_seconds must be positive (float('inf') "
                "disables the deadline)"
            )


@dataclass
class BatchQueue:
    """Accumulates timed requests and releases them per a policy.

    With a ``bus`` attached, every :meth:`push` publishes a
    ``queue.admit`` event and every non-empty :meth:`flush` a
    ``queue.dispatch`` event (stamped with the bus clock, which the
    system advances to simulation time).
    """

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    bus: EventBus | None = None
    _pending: list[TimedRequest] = field(default_factory=list)

    def push(self, request: TimedRequest) -> None:
        """Enqueue an arrived request."""
        self._pending.append(request)
        if self.bus is not None:
            self.bus.publish(
                QueueAdmitted(
                    seconds=self.bus.now,
                    segment=request.segment,
                    length=request.length,
                    arrival_seconds=request.arrival_seconds,
                    queue_depth=len(self._pending),
                )
            )

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def oldest_arrival(self) -> float | None:
        """Arrival time of the oldest queued request, if any.

        The minimum over the queue, not the head: pushes usually come
        in arrival order, but a *requeued* request (resilience layer)
        re-enters at the tail with its original — older — arrival time,
        and the deadline must key off the oldest arrival regardless.
        """
        if not self._pending:
            return None
        return min(item.arrival_seconds for item in self._pending)

    def ready(self, now_seconds: float, drive_idle: bool) -> bool:
        """Should the queue flush at time ``now_seconds``?"""
        if not self._pending:
            return False
        if len(self._pending) >= self.policy.max_batch:
            return True
        if (
            now_seconds - self.oldest_arrival
            >= self.policy.max_wait_seconds
        ):
            return True
        return drive_idle and self.policy.flush_when_idle

    def flush(self) -> list[TimedRequest]:
        """Release up to ``max_batch`` requests, oldest first."""
        # Stable sort: a no-op for in-order pushes, and it moves
        # requeued (older) requests ahead of newer arrivals.
        self._pending.sort(key=lambda item: item.arrival_seconds)
        batch = self._pending[: self.policy.max_batch]
        self._pending = self._pending[self.policy.max_batch:]
        if batch and self.bus is not None:
            self.bus.publish(
                QueueDispatched(
                    seconds=self.bus.now,
                    batch_size=len(batch),
                    oldest_arrival_seconds=batch[0].arrival_seconds,
                )
            )
        return batch
