"""Request batching policies.

The whole premise of the paper is that "significant speedups can be
obtained by scheduling *batches* of random I/O's": individual requests
are accumulated and scheduled together.  A batching policy decides when
the accumulated batch is handed to the scheduler — when it reaches a
target size, when the oldest request has waited too long, or whenever
the drive goes idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.bus import EventBus
from repro.obs.events import QueueAdmitted, QueueDispatched
from repro.workload.arrivals import TimedRequest


@dataclass
class BatchPolicy:
    """When to flush the accumulation queue.

    Attributes
    ----------
    max_batch:
        Flush as soon as this many requests are queued.
    max_wait_seconds:
        Flush once the oldest queued request has waited this long
        (``inf`` disables the deadline).
    flush_when_idle:
        Hand over whatever is queued whenever the drive is idle; when
        False the drive waits for a full batch or a deadline.
    """

    max_batch: int = 96
    max_wait_seconds: float = float("inf")
    flush_when_idle: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_seconds <= 0:
            raise ValueError("max_wait_seconds must be positive")


@dataclass
class BatchQueue:
    """Accumulates timed requests and releases them per a policy.

    With a ``bus`` attached, every :meth:`push` publishes a
    ``queue.admit`` event and every non-empty :meth:`flush` a
    ``queue.dispatch`` event (stamped with the bus clock, which the
    system advances to simulation time).
    """

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    bus: EventBus | None = None
    _pending: list[TimedRequest] = field(default_factory=list)

    def push(self, request: TimedRequest) -> None:
        """Enqueue an arrived request."""
        self._pending.append(request)
        if self.bus is not None:
            self.bus.publish(
                QueueAdmitted(
                    seconds=self.bus.now,
                    segment=request.segment,
                    length=request.length,
                    arrival_seconds=request.arrival_seconds,
                    queue_depth=len(self._pending),
                )
            )

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def oldest_arrival(self) -> float | None:
        """Arrival time of the oldest queued request, if any."""
        return self._pending[0].arrival_seconds if self._pending else None

    def ready(self, now_seconds: float, drive_idle: bool) -> bool:
        """Should the queue flush at time ``now_seconds``?"""
        if not self._pending:
            return False
        if len(self._pending) >= self.policy.max_batch:
            return True
        oldest = self._pending[0].arrival_seconds
        if now_seconds - oldest >= self.policy.max_wait_seconds:
            return True
        return drive_idle and self.policy.flush_when_idle

    def flush(self) -> list[TimedRequest]:
        """Release up to ``max_batch`` requests, oldest first."""
        batch = self._pending[: self.policy.max_batch]
        self._pending = self._pending[self.policy.max_batch:]
        if batch and self.bus is not None:
            self.bus.publish(
                QueueDispatched(
                    seconds=self.bus.now,
                    batch_size=len(batch),
                    oldest_arrival_seconds=batch[0].arrival_seconds,
                )
            )
        return batch
