"""The single public facade of the reproduction.

``repro.api`` re-exports the blessed entry points of every layer under
one import, so downstream code can write::

    from repro import api

    tape = api.generate_tape(seed=7)
    bus = api.EventBus()
    system = api.TertiaryStorageSystem(geometry=tape, bus=bus)

and stay insulated from internal module moves: names re-exported here
are stable across releases (see ``docs/API.md`` for the signatures and
the deprecation policy), while importing from deep module paths may
break when internals are reorganized — such moves keep the old path
working for one release behind a :class:`DeprecationWarning` shim (see
``repro.drive.events``).

The facade groups:

* **geometry / model** — synthetic cartridges and the locate-time model;
* **scheduling** — the paper's eight algorithms, the LTSP frontier
  solvers (exact, repair, sweep, greedy), schedules, execution;
* **online** — the batching service loop, the robotic library, and the
  staging-cache front-end;
* **serving** — the SLA-aware gateway of :mod:`repro.serve` (tenants,
  fairness, backpressure, typed shedding) and its deterministic
  multi-tenant load generator — the entry point external callers are
  meant to program against (see ``docs/SERVING.md``);
* **observability** — the event bus, metrics, and trace tooling of
  :mod:`repro.obs`;
* **experiments** — config plus the tabular-result export helpers;
* **static analysis** — the :mod:`repro.lint` engine behind
  ``repro lint`` (see ``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

import warnings

from repro._version import __version__
from repro.cache.library_tier import CachedLibrarySystem
from repro.cache.store import SegmentCache
from repro.cache.system import CachedTertiaryStorageSystem
from repro.drive.simulated import SimulatedDrive
from repro.exceptions import (
    AdmissionRejected,
    CacheError,
    DeadlineExpired,
    DriveError,
    DriveFault,
    DriveReset,
    LintError,
    LocateFault,
    MetricsError,
    NoSamplesError,
    ReadFault,
    ReproError,
    SchedulingError,
    ServeError,
    TenantOverloaded,
    TraceError,
    UnknownTenant,
)
from repro.lint import Finding, LintRun, ProjectGraph, flow_rules, run_lint
from repro.experiments.config import ExperimentConfig
from repro.experiments.export import result_to_rows, write_result
from repro.experiments.result import TabularResult
from repro.geometry.generator import generate_tape, tiny_tape
from repro.geometry.tape import TapeGeometry
from repro.model.linearize import LinearizedModel
from repro.model.locate import LocateTimeModel
from repro.obs import (
    EventBus,
    MetricsRegistry,
    TraceRecorder,
    TraceSummary,
    bind_standard_metrics,
    cache_stats_from_events,
    read_events_jsonl,
    response_stats_from_events,
    summarize_events,
    write_events_csv,
    write_events_jsonl,
)
from repro.library import (
    LibraryBatchRecord,
    LibraryRequest,
    MediaAgingModel,
    MultiDriveSystem,
    arm_policy_names,
    assignment_policy_names,
    exchange_policy_names,
    get_arm_policy,
    get_assignment_policy,
    get_exchange_policy,
    poisson_library_stream,
)
from repro.library.cartridge import Cartridge, TapeLibrary
from repro.online.batch_queue import (
    BatchPolicy,
    BatchQueue,
    DeadlineBatchPolicy,
)
from repro.online.metrics import CacheStats, ResponseStats
from repro.online.striping import (
    LogicalRead,
    StripedReadCoordinator,
    StripedVolume,
    striped_volume,
)
from repro.online.system import BatchRecord, TertiaryStorageSystem
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
)
from repro.scheduling.base import (
    Scheduler,
    get_scheduler,
    scheduler_names,
)
from repro.scheduling.estimator import estimate_schedule_seconds
from repro.scheduling.executor import ExecutionResult, execute_schedule
from repro.scheduling.ltsp import (
    LtspExactScheduler,
    LtspGreedyScheduler,
    LtspRepairScheduler,
    LtspSweepScheduler,
    exact_ltsp_order,
    linear_deadhead_sections,
)
from repro.scheduling.request import Request
from repro.scheduling.schedule import Schedule
from repro.serve import (
    Gateway,
    ServeConfig,
    ServeReport,
    ServeRequest,
    ShedRecord,
    TenantConfig,
    TenantLoadSpec,
    TenantStats,
    load_serve_trace,
    save_serve_trace,
    zipf_serve_stream,
)
from repro.workload.arrivals import (
    PoissonArrivals,
    TimedRequest,
    ZipfArrivals,
)

__all__ = [
    "AdmissionRejected",
    "BatchPolicy",
    "BatchQueue",
    "BatchRecord",
    "CacheError",
    "CacheStats",
    "CachedLibrarySystem",
    "CachedTertiaryStorageSystem",
    "Cartridge",
    "DeadlineBatchPolicy",
    "DeadlineExpired",
    "DriveError",
    "DriveFault",
    "DriveReset",
    "EventBus",
    "Gateway",
    "ExecutionResult",
    "ExperimentConfig",
    "FaultInjector",
    "FaultPlan",
    "Finding",
    "LibraryBatchRecord",
    "LibraryRequest",
    "LinearizedModel",
    "LintError",
    "LintRun",
    "LocateFault",
    "LocateTimeModel",
    "LogicalRead",
    "LtspExactScheduler",
    "LtspGreedyScheduler",
    "LtspRepairScheduler",
    "LtspSweepScheduler",
    "MediaAgingModel",
    "MetricsError",
    "MetricsRegistry",
    "MultiDriveSystem",
    "NoSamplesError",
    "PoissonArrivals",
    "ProjectGraph",
    "ReadFault",
    "ReproError",
    "Request",
    "ResilienceConfig",
    "ResponseStats",
    "RetryPolicy",
    "Schedule",
    "Scheduler",
    "SchedulingError",
    "SegmentCache",
    "ServeConfig",
    "ServeError",
    "ServeReport",
    "ServeRequest",
    "ShedRecord",
    "SimulatedDrive",
    "StripedReadCoordinator",
    "StripedVolume",
    "TabularResult",
    "TapeGeometry",
    "TapeLibrary",
    "TenantConfig",
    "TenantLoadSpec",
    "TenantOverloaded",
    "TenantStats",
    "TertiaryStorageSystem",
    "TimedRequest",
    "TraceError",
    "TraceRecorder",
    "TraceSummary",
    "UnknownTenant",
    "ZipfArrivals",
    "__version__",
    "arm_policy_names",
    "assignment_policy_names",
    "bind_standard_metrics",
    "cache_stats_from_events",
    "estimate_schedule_seconds",
    "exact_ltsp_order",
    "exchange_policy_names",
    "execute_schedule",
    "flow_rules",
    "generate_tape",
    "get_arm_policy",
    "get_assignment_policy",
    "get_exchange_policy",
    "get_scheduler",
    "linear_deadhead_sections",
    "load_serve_trace",
    "poisson_library_stream",
    "read_events_jsonl",
    "response_stats_from_events",
    "result_to_rows",
    "run_lint",
    "save_serve_trace",
    "scheduler_names",
    "striped_volume",
    "summarize_events",
    "tiny_tape",
    "write_events_csv",
    "write_events_jsonl",
    "write_result",
    "zipf_serve_stream",
]

#: Names demoted from the facade (they were observability internals,
#: not blessed entry points).  Importing them from here still works
#: but warns once; use ``repro.obs`` directly.
_MOVED = ("Subscription", "event_from_record")

#: Names whose deprecation has already been announced.  The guard
#: makes the warning fire exactly once per name per process, however
#: the caller's warning filters are configured — repeated accesses on
#: a hot path must not spam (or, under ``-W error``, crash) the run.
_warned: set[str] = set()


def __getattr__(name: str):
    if name in _MOVED:
        if name not in _warned:
            _warned.add(name)
            warnings.warn(
                f"repro.api.{name} is no longer part of the public "
                "facade; import it from repro.obs instead (this "
                "fallback will be removed in a future release)",
                DeprecationWarning,
                stacklevel=2,
            )
        from repro import obs

        return getattr(obs, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__() -> list[str]:
    return sorted([*__all__, *_MOVED])
