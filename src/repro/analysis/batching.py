"""Batch-size planning for the online system.

The paper quantifies how the per-request cost falls with batch size
(Figures 4/5); an *online* system must pick an operating batch size.
This module turns a measured per-locate curve into operating guidance:

* **stability** — a drive keeps up with arrival rate λ only if the
  service time of a batch of N is below the time N arrivals take to
  accumulate, i.e. ``N * s(N) < N / λ`` where ``s(N)`` is seconds per
  request at batch size N;
* **minimum stable batch** — because ``s(N)`` decreases with N,
  there is a smallest batch size that keeps up with a given λ;
* **response-time estimate** — at a stable operating point a request
  waits for its batch to fill (~``N / (2 λ)`` on average), then for the
  batch service (~``N·s(N)/2`` on average when it completes mid-batch),
  giving a planning estimate (not a queueing-theoretic exact value).

The per-locate curve comes straight from the experiment runner, so the
planner works for any drive profile or workload the harness can
simulate.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass


@dataclass(frozen=True)
class PerLocateCurve:
    """Monotone interpolation of seconds-per-request vs batch size."""

    lengths: tuple[int, ...]
    seconds_per_request: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lengths) != len(self.seconds_per_request):
            raise ValueError("lengths and values must align")
        if not self.lengths:
            raise ValueError("curve needs at least one point")
        if list(self.lengths) != sorted(set(self.lengths)):
            raise ValueError("lengths must be strictly increasing")

    @classmethod
    def from_per_locate_result(
        cls, result, algorithm: str
    ) -> "PerLocateCurve":
        """Build from a Figure 4/5 run for one algorithm."""
        lengths = []
        values = []
        for length in result.lengths:
            point = result.points.get((algorithm, length))
            if point is None or point.total.count == 0:
                continue
            lengths.append(length)
            values.append(point.per_locate_mean)
        return cls(tuple(lengths), tuple(values))

    def at(self, batch_size: int) -> float:
        """Seconds per request at a batch size (log-linear interp)."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        lengths = self.lengths
        if batch_size <= lengths[0]:
            return self.seconds_per_request[0]
        if batch_size >= lengths[-1]:
            return self.seconds_per_request[-1]
        hi = bisect_left(lengths, batch_size)
        lo = hi - 1
        if lengths[hi] == batch_size:
            return self.seconds_per_request[hi]
        # Interpolate in log(batch size), matching the figures' x axis.
        span = math.log(lengths[hi]) - math.log(lengths[lo])
        frac = (math.log(batch_size) - math.log(lengths[lo])) / span
        return (
            self.seconds_per_request[lo] * (1 - frac)
            + self.seconds_per_request[hi] * frac
        )

    def capacity_per_hour(self, batch_size: int) -> float:
        """Sustained throughput ceiling at a batch size."""
        return 3600.0 / self.at(batch_size)


def is_stable(
    curve: PerLocateCurve, batch_size: int, rate_per_hour: float
) -> bool:
    """Can the drive keep up with λ at this batch size?"""
    if rate_per_hour <= 0:
        raise ValueError("rate_per_hour must be positive")
    return curve.capacity_per_hour(batch_size) > rate_per_hour


def min_stable_batch(
    curve: PerLocateCurve, rate_per_hour: float
) -> int | None:
    """Smallest batch size on the curve that keeps up with λ.

    Returns None when even the largest measured batch cannot keep up —
    the workload needs READ mode, striping, or more drives.
    """
    for length in curve.lengths:
        if is_stable(curve, length, rate_per_hour):
            return length
    return None


def estimated_response_seconds(
    curve: PerLocateCurve, batch_size: int, rate_per_hour: float
) -> float:
    """Planning estimate of mean response time at an operating point.

    Mean fill wait ``N/(2λ)`` plus mean in-service wait
    ``N·s(N)/2``; valid for stable, moderately loaded points (it
    ignores queueing between batches, which blows up near saturation).
    """
    if not is_stable(curve, batch_size, rate_per_hour):
        return math.inf
    rate_per_second = rate_per_hour / 3600.0
    fill_wait = batch_size / (2.0 * rate_per_second)
    service_wait = batch_size * curve.at(batch_size) / 2.0
    return fill_wait + service_wait


def recommend_batch(
    curve: PerLocateCurve, rate_per_hour: float
) -> tuple[int, float] | None:
    """Batch size minimizing the response estimate at a rate.

    Returns ``(batch_size, estimated response seconds)``, or None when
    no measured batch size is stable.
    """
    best: tuple[int, float] | None = None
    for length in curve.lengths:
        estimate = estimated_response_seconds(
            curve, length, rate_per_hour
        )
        if math.isinf(estimate):
            continue
        if best is None or estimate < best[1]:
            best = (length, estimate)
    return best
