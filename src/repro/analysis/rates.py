"""Retrieval-rate arithmetic for the Section 8 summary.

The paper's "results in a nutshell" are expressed as random I/Os per
hour: ~50 unscheduled, 93 with OPT at batch size 10, 124 with LOSS at
96, 285 with LOSS at 1024, 391 reading the whole tape for a batch of
1536.
"""

from __future__ import annotations

from dataclasses import dataclass


def ios_per_hour(total_seconds: float, request_count: int) -> float:
    """Requests serviced per hour given a batch's execution time."""
    if total_seconds <= 0:
        raise ValueError("total_seconds must be positive")
    if request_count < 1:
        raise ValueError("request_count must be >= 1")
    return 3600.0 * request_count / total_seconds


def hours_for_batch(total_seconds: float) -> float:
    """Execution time in hours."""
    return total_seconds / 3600.0


@dataclass(frozen=True)
class PaperSummaryTargets:
    """The published Section 8 numbers, for report side-by-sides."""

    fifo_rate: float = 50.0
    opt_rate_at_10: float = 93.0
    loss_rate_at_96: float = 124.0
    loss_rate_at_1024: float = 285.0
    read_rate_at_1536: float = 391.0
    fifo_hours_192: float = 3.87
    loss_hours_192: float = 1.37
