"""Drive-utilization algebra for Figure 7.

Figure 7 of the paper plots, for target utilizations of 25 %, 33 %,
50 %, 75 % and 90 % of the DLT4000's 1.5 MB/s sequential bandwidth, the
per-request transfer size needed as a function of schedule length: long
schedules drive the per-request locate cost down, so smaller transfers
reach the same utilization.

With ``L(n)`` the expected total positioning time of an ``n``-request
schedule and ``S`` the per-request transfer size,

    utilization u = (n * S / rate) / (n * S / rate + L(n))

which solves to ``S(u, n) = u * L(n) * rate / (n * (1 - u))``.
"""

from __future__ import annotations

import numpy as np

from repro.constants import TRANSFER_RATE_BYTES_PER_SECOND

#: The utilization levels plotted in Figure 7.
FIGURE7_UTILIZATIONS = (0.25, 1.0 / 3.0, 0.50, 0.75, 0.90)


def transfer_size_for_utilization(
    utilization: float,
    schedule_length: int,
    total_locate_seconds: float,
    rate_bytes_per_second: float = TRANSFER_RATE_BYTES_PER_SECOND,
) -> float:
    """Bytes per request needed to hit a target utilization.

    Parameters
    ----------
    utilization:
        Target fraction of sequential bandwidth, in (0, 1).
    schedule_length:
        Number of requests in the schedule.
    total_locate_seconds:
        Expected total positioning time of the schedule.
    """
    if not 0.0 < utilization < 1.0:
        raise ValueError("utilization must be in (0, 1)")
    if schedule_length < 1:
        raise ValueError("schedule_length must be >= 1")
    if total_locate_seconds < 0:
        raise ValueError("total_locate_seconds must be >= 0")
    return (
        utilization
        * total_locate_seconds
        * rate_bytes_per_second
        / (schedule_length * (1.0 - utilization))
    )


def utilization_for_transfer_size(
    transfer_bytes: float,
    schedule_length: int,
    total_locate_seconds: float,
    rate_bytes_per_second: float = TRANSFER_RATE_BYTES_PER_SECOND,
) -> float:
    """Inverse of :func:`transfer_size_for_utilization`."""
    transfer_seconds = (
        schedule_length * transfer_bytes / rate_bytes_per_second
    )
    denominator = transfer_seconds + total_locate_seconds
    if denominator <= 0:
        raise ValueError("no time spent at all")
    return transfer_seconds / denominator


def utilization_curve(
    utilization: float,
    schedule_lengths,
    locate_seconds,
    rate_bytes_per_second: float = TRANSFER_RATE_BYTES_PER_SECOND,
) -> np.ndarray:
    """Vectorized Figure 7 series: transfer megabytes per request."""
    lengths = np.asarray(schedule_lengths, dtype=np.float64)
    locates = np.asarray(locate_seconds, dtype=np.float64)
    sizes = (
        utilization
        * locates
        * rate_bytes_per_second
        / (lengths * (1.0 - utilization))
    )
    return sizes / 1e6
