"""Analytical helpers: utilization curves and retrieval rates."""

from repro.analysis.batching import (
    PerLocateCurve,
    estimated_response_seconds,
    is_stable,
    min_stable_batch,
    recommend_batch,
)
from repro.analysis.bounds import (
    in_edge_bound,
    optimality_gap,
    out_edge_bound,
    schedule_lower_bound,
)
from repro.analysis.rates import (
    PaperSummaryTargets,
    hours_for_batch,
    ios_per_hour,
)
from repro.analysis.utilization import (
    FIGURE7_UTILIZATIONS,
    transfer_size_for_utilization,
    utilization_curve,
    utilization_for_transfer_size,
)

__all__ = [
    "FIGURE7_UTILIZATIONS",
    "PaperSummaryTargets",
    "PerLocateCurve",
    "estimated_response_seconds",
    "hours_for_batch",
    "in_edge_bound",
    "is_stable",
    "min_stable_batch",
    "recommend_batch",
    "ios_per_hour",
    "optimality_gap",
    "out_edge_bound",
    "schedule_lower_bound",
    "transfer_size_for_utilization",
    "utilization_curve",
    "utilization_for_transfer_size",
]
