"""Lower bounds on schedule execution time.

OPT certifies optimality only up to ~12 requests (it is exponential).
For larger batches we can still bound how far any heuristic is from
optimal: every schedule must *enter* each request once, so the total
locate time is at least the sum over requests of their cheapest
feasible in-edge; symmetrically, every node except the last must be
*left* once.  The larger of the two relaxations is a valid lower bound
on the locate time of any schedule — the first step of the classic
assignment-relaxation bound for the asymmetric TSP.

This gives the evaluation the paper could not run: the measured
optimality gap of LOSS/SLTF/etc. at batch sizes far beyond OPT's
reach (see ``tests/analysis/test_bounds.py`` and the extension
benchmarks).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.constants import SEGMENT_TRANSFER_SECONDS
from repro.model.distance_matrix import schedule_distance_matrix
from repro.scheduling.request import Request, as_requests, request_lengths


def in_edge_bound(distance: np.ndarray) -> float:
    """Sum of each request's cheapest in-edge."""
    return float(np.min(distance, axis=0).sum())


def out_edge_bound(distance: np.ndarray) -> float:
    """Cheapest-out-edge relaxation.

    Every node except the final one is left exactly once; we do not
    know which request ends the schedule, so the bound drops the most
    expensive inner-row minimum.  Row 0 (the origin) is always left.
    """
    row_minima = np.min(distance, axis=1)
    origin_exit = row_minima[0]
    inner = np.sort(row_minima[1:])[:-1] if distance.shape[0] > 1 else []
    return float(origin_exit + np.sum(inner))


def schedule_lower_bound(
    model,
    origin: int,
    requests: Sequence[int | Request],
    include_transfers: bool = True,
) -> float:
    """Valid lower bound on any schedule's execution time.

    Parameters mirror :meth:`Scheduler.schedule`; the bound applies to
    every ordering of exactly these requests from this origin.
    """
    batch = as_requests(requests)
    segments = np.fromiter(
        (r.segment for r in batch), dtype=np.int64, count=len(batch)
    )
    distance = schedule_distance_matrix(
        model, origin, segments, lengths=request_lengths(batch)
    )
    bound = max(in_edge_bound(distance), out_edge_bound(distance))
    if include_transfers:
        bound += float(request_lengths(batch).sum()) * (
            SEGMENT_TRANSFER_SECONDS
        )
    return bound


def optimality_gap(model, schedule) -> float:
    """Fractional gap of a schedule above the lower bound.

    ``0.10`` means the schedule costs at most 10 % more than optimal
    (the true gap to optimal is no larger than the gap to the bound).
    """
    bound = schedule_lower_bound(
        model, schedule.origin, schedule.requests
    )
    if bound <= 0:
        return 0.0
    return schedule.estimated_seconds / bound - 1.0
