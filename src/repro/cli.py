"""Command-line interface: regenerate any figure or table of the paper.

Examples::

    python -m repro figure4 --scale quick
    python -m repro figure8
    python -m repro summary --scale full
    python -m repro all --max-length 256
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.experiments import (
    cache_sim,
    chaos,
    drive_generations,
    figure1,
    figure4,
    figure5,
    figure6,
    figure7,
    figure7_empirical,
    figure8,
    figure9,
    figure10,
    library_sim,
    optimality,
    section3_stats,
    seed_stability,
    serve_sim,
    summary_table,
    trace_run,
)
from repro.experiments.config import ExperimentConfig

#: Experiments that take an :class:`ExperimentConfig`.
_CONFIGURED = {
    "figure4": figure4.main,
    "figure5": figure5.main,
    "figure6": figure6.main,
    "figure7": figure7.main,
    "figure8": figure8.main,
    "figure9": figure9.main,
    "figure10": figure10.main,
    "figure7x": figure7_empirical.main,
    "summary": summary_table.main,
    "seeds": seed_stability.main,
    "generations": drive_generations.main,
    "gaps": optimality.main,
}

#: Experiments keyed only by the tape seed.
_SEED_ONLY = {
    "figure1": figure1.main,
    "section3": section3_stats.main,
}

#: Experiments whose ``main`` accepts a ``workers`` count (the sweeps
#: the parallel engine fans out).
_WORKERED = {
    "figure4", "figure5", "figure6", "figure7", "figure8", "figure9",
    "figure10",
}

#: Execution order for ``all``.
_ALL_ORDER = (
    "figure1", "section3", "figure4", "figure5", "figure6", "figure7",
    "figure7x", "figure8", "figure9", "figure10", "summary", "seeds",
    "generations", "gaps",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-tape",
        description=(
            "Regenerate the evaluation of Hillyer & Silberschatz, "
            "'Random I/O Scheduling in Online Tertiary Storage "
            "Systems' (SIGMOD 1996)."
        ),
        epilog=(
            "Additionally, 'repro lint [PATH...]' runs the "
            "repo-aware static-analysis gate (RPR001-RPR010, "
            "including the cross-module flow analyses); see "
            "'repro lint --help' and docs/STATIC_ANALYSIS.md."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(
            {*_CONFIGURED, *_SEED_ONLY, "cache-sim", "chaos",
             "library-sim", "optimality", "serve-sim", "trace", "all"}
        ),
        help=(
            "which figure/table to regenerate, 'cache-sim' for the "
            "disk staging cache extension, 'chaos' for a fault-"
            "injection sweep of the hardened serving path, "
            "'library-sim' for the multi-drive robotic library sweep, "
            "'optimality' for the LTSP frontier chart (exact linear "
            "optimum vs every heuristic past the Held-Karp ceiling), "
            "'serve-sim' for the multi-tenant SLA gateway sweep, "
            "or 'trace' for an instrumented run with telemetry "
            "cross-checks"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "full", "paper"),
        default="quick",
        help="trial-count scale (default: quick)",
    )
    parser.add_argument(
        "--tape-seed", type=int, default=1,
        help="seed of the synthetic cartridge (default: 1)",
    )
    parser.add_argument(
        "--workload-seed", type=int, default=0,
        help="srand48 seed for the workload (default: 0)",
    )
    parser.add_argument(
        "--max-length", type=int, default=None,
        help="truncate the schedule-length grid",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help=(
            "fan trials out over N worker processes (0 = all CPUs); "
            "statistics are bit-identical for every N (default: 1)"
        ),
    )
    parser.add_argument(
        "--legacy-seeds", action="store_true",
        help=(
            "replay the pre-parallel sequential lrand48 stream "
            "(serial only) instead of derived per-trial seed streams"
        ),
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="also render figures 4/5 as ASCII log-log charts",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also export the result to FILE (.csv or .json)",
    )
    cache = parser.add_argument_group(
        "cache-sim options (ignored by the paper experiments)"
    )
    cache.add_argument(
        "--cache-capacity", type=int, action="append", default=None,
        metavar="SEGMENTS",
        help=(
            "staging capacity in segments; repeat the flag for a sweep "
            "(default: 1/5/20/50%% of the hot set)"
        ),
    )
    cache.add_argument(
        "--cache-policy", choices=("fifo", "lru", "gdsf"),
        default="gdsf", help="eviction policy (default: gdsf)",
    )
    cache.add_argument(
        "--cache-admission", choices=("always", "frequency", "cost"),
        default="always", help="admission policy (default: always)",
    )
    cache.add_argument(
        "--no-prefetch", action="store_true",
        help="disable opportunistic read-through prefetch",
    )
    cache.add_argument(
        "--zipf-alpha", type=float, default=0.8,
        help="Zipf skew of the workload (default: 0.8)",
    )
    cache.add_argument(
        "--hot-set", type=int, default=4_000,
        help="distinct hot segments in the workload (default: 4000)",
    )
    cache.add_argument(
        "--rate-per-hour", type=float, default=120.0,
        help="Poisson arrival rate (default: 120)",
    )
    cache.add_argument(
        "--horizon-hours", type=float, default=None,
        help="simulated hours (default: set by --scale)",
    )
    chaos_group = parser.add_argument_group(
        "chaos options (ignored by the paper experiments)"
    )
    chaos_group.add_argument(
        "--retry-probability", type=float, action="append",
        default=None, metavar="P",
        help=(
            "per-locate probability of a retryable fault; repeat the "
            "flag for a sweep (default: 0 0.05 0.1 0.2)"
        ),
    )
    chaos_group.add_argument(
        "--read-error-probability", type=float, default=0.0,
        metavar="P",
        help="per-read probability of a read fault (default: 0)",
    )
    chaos_group.add_argument(
        "--reset-probability", type=float, default=0.0, metavar="P",
        help=(
            "per-locate probability of a full drive reset "
            "(default: 0)"
        ),
    )
    chaos_group.add_argument(
        "--max-attempts", type=int, default=5,
        help="in-place retry budget per request (default: 5)",
    )
    chaos_group.add_argument(
        "--max-requeues", type=int, default=2,
        help=(
            "times a failed request re-enters the batch queue before "
            "it is surfaced as failed (default: 2)"
        ),
    )
    chaos_group.add_argument(
        "--library", action="store_true",
        help=(
            "chaos: run the durability variant instead — logical "
            "reads on a replicated striped volume over the multi-arm "
            "library, with media aging, injected faults, degraded "
            "reads, and background repair traffic; exits non-zero on "
            "any silent loss or on data loss despite redundancy"
        ),
    )
    chaos_group.add_argument(
        "--replicas", type=int, action="append", default=None,
        metavar="R",
        help=(
            "chaos --library: redundancy level; repeat the flag for "
            "a sweep (default: 1 2 3, or 1 2 with --smoke)"
        ),
    )
    chaos_group.add_argument(
        "--stripe-unit", type=int, default=4, metavar="N",
        help=(
            "chaos --library: logical segments per stripe unit "
            "(default: 4)"
        ),
    )
    library = parser.add_argument_group(
        "library-sim options (ignored by the paper experiments)"
    )
    library.add_argument(
        "--drives", type=int, action="append", default=None,
        metavar="N",
        help=(
            "drive count; repeat the flag for a sweep "
            "(default: 1 2 4)"
        ),
    )
    library.add_argument(
        "--cartridges", type=int, default=None, metavar="N",
        help="cartridges on the shelf (default: 8)",
    )
    library.add_argument(
        "--assignment-policy", action="append", default=None,
        metavar="NAME",
        help=(
            "tape-to-drive assignment policy; repeat the flag for a "
            "sweep (default: affinity least-loaded)"
        ),
    )
    library.add_argument(
        "--exchange-policy", default="drain", metavar="NAME",
        help=(
            "when a mounted tape may be released back to the shelf "
            "(default: drain)"
        ),
    )
    library.add_argument(
        "--arms", type=int, action="append", default=None,
        metavar="K",
        help=(
            "robot arms in the pool; library-sim: repeat the flag "
            "for a sweep (default: 1 2); chaos --library: the last "
            "value given is used (default: 2)"
        ),
    )
    library.add_argument(
        "--arm-policy", default="least-busy", metavar="NAME",
        help=(
            "arm-assignment policy for multi-arm pools "
            "(default: least-busy)"
        ),
    )
    serve = parser.add_argument_group(
        "serve-sim options (ignored by the paper experiments)"
    )
    serve.add_argument(
        "--backend-depth", type=int, default=None, metavar="N",
        help=(
            "backpressure: released-but-unfinished requests allowed "
            "in the backend at once (default: "
            f"{serve_sim.DEFAULT_BACKEND_DEPTH}; 0 = unbounded)"
        ),
    )
    frontier = parser.add_argument_group(
        "optimality options (ignored by the paper experiments)"
    )
    frontier.add_argument(
        "--frontier-length", type=int, action="append", default=None,
        metavar="N",
        help=(
            "frontier batch size; repeat the flag for a sweep "
            f"(default: {' '.join(map(str, optimality.DEFAULT_FRONTIER_LENGTHS))})"
        ),
    )
    frontier.add_argument(
        "--frontier-algorithm", action="append", default=None,
        metavar="NAME",
        help=(
            "strategy charted against the exact linear optimum; "
            "repeat the flag for a sweep (default: "
            f"{' '.join(optimality.DEFAULT_FRONTIER_ALGORITHMS)})"
        ),
    )
    frontier.add_argument(
        "--frontier-trials", type=int, default=3, metavar="N",
        help="trials per frontier batch size (default: 3)",
    )
    frontier.add_argument(
        "--no-frontier", action="store_true",
        help="optimality: print only the lower-bound gap table",
    )
    trace = parser.add_argument_group(
        "trace options (ignored by the paper experiments)"
    )
    trace.add_argument(
        "--trace-jsonl", default=None, metavar="FILE",
        help="write the raw event stream as JSON Lines",
    )
    trace.add_argument(
        "--smoke", action="store_true",
        help=(
            "trace: exit non-zero unless the telemetry cross-checks "
            "hold; library-sim: shrink to the CI gate (2 drives, one "
            "policy, short horizon); serve-sim: shrink to the CI "
            "gate (2 drives, 10k users, short horizon)"
        ),
    )
    trace.add_argument(
        "--algorithm", default="LOSS",
        help="scheduling algorithm for the run (default: LOSS)",
    )
    trace.add_argument(
        "--max-batch", type=int, default=96,
        help="batch-queue flush size (default: 96)",
    )
    return parser


def run_experiment(
    name: str,
    config: ExperimentConfig,
    chart: bool = False,
    out: str | None = None,
    workers: int = 1,
) -> None:
    """Dispatch one experiment by name."""
    if name in _SEED_ONLY:
        _SEED_ONLY[name](tape_seed=config.tape_seed)
        return
    if name in _WORKERED:
        result = _CONFIGURED[name](config, workers=workers)
    else:
        result = _CONFIGURED[name](config)
    if chart and name in ("figure4", "figure5"):
        from repro.experiments.ascii_plot import render_per_locate_result

        print(render_per_locate_result(result))
        print()
    if out is not None:
        from repro.experiments.export import write_result

        written = write_result(result, out)
        print(f"exported to {written}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # The static-analysis gate has its own option surface; hand
        # off before the experiment parser rejects its flags.
        from repro.lint.cli import main as lint_main

        return lint_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    if args.cache_capacity and any(c < 1 for c in args.cache_capacity):
        parser.error("--cache-capacity must be >= 1 segment")
    if args.workers < 0:
        parser.error("--workers must be >= 0 (0 = all CPUs)")
    if args.legacy_seeds and args.workers not in (0, 1):
        parser.error(
            "--legacy-seeds replays one sequential stream and "
            "requires --workers 1"
        )
    config = ExperimentConfig(
        tape_seed=args.tape_seed,
        workload_seed=args.workload_seed,
        scale=args.scale,
        max_length=args.max_length,
        seed_mode="legacy" if args.legacy_seeds else "per-trial",
    )
    if args.experiment == "cache-sim":
        result = cache_sim.main(
            config,
            capacities=(
                tuple(args.cache_capacity)
                if args.cache_capacity else None
            ),
            alpha=args.zipf_alpha,
            hot_set=args.hot_set,
            rate_per_hour=args.rate_per_hour,
            horizon_hours=args.horizon_hours,
            policy=args.cache_policy,
            admission=args.cache_admission,
            prefetch=not args.no_prefetch,
            workers=args.workers,
        )
        if args.out is not None:
            from repro.experiments.export import write_result

            written = write_result(result, args.out)
            print(f"exported to {written}")
        return 0
    if args.experiment == "chaos":
        probabilities = [
            *(args.retry_probability or ()),
            args.read_error_probability,
            args.reset_probability,
        ]
        if any(not 0.0 <= p <= 1.0 for p in probabilities):
            parser.error("fault probabilities must be in [0, 1]")
        if args.max_attempts < 1:
            parser.error("--max-attempts must be >= 1")
        if args.max_requeues < 0:
            parser.error("--max-requeues must be >= 0")
        if args.library:
            if args.replicas and any(r < 1 for r in args.replicas):
                parser.error("--replicas must be >= 1")
            if args.stripe_unit < 1:
                parser.error("--stripe-unit must be >= 1")
            if args.arms and any(k < 1 for k in args.arms):
                parser.error("--arms must be >= 1")
            lib_result = chaos.main_library(
                config,
                replicas=(
                    tuple(args.replicas) if args.replicas else None
                ),
                drives=(args.drives or [4])[-1],
                arms=(args.arms or [2])[-1],
                cartridges=(
                    args.cartridges if args.cartridges is not None
                    else 6
                ),
                stripe_unit=args.stripe_unit,
                rate_per_hour=args.rate_per_hour,
                horizon_hours=args.horizon_hours,
                smoke=args.smoke,
            )
            if args.out is not None:
                from repro.experiments.export import write_result

                written = write_result(lib_result, args.out)
                print(f"exported to {written}")
            # Both durability invariants are correctness gates: no
            # silent loss, and no data loss once replicated.
            return 0 if lib_result.ok else 1
        result = chaos.main(
            config,
            fault_rates=(
                tuple(args.retry_probability)
                if args.retry_probability else None
            ),
            read_fault_probability=args.read_error_probability,
            reset_probability=args.reset_probability,
            rate_per_hour=args.rate_per_hour,
            horizon_hours=args.horizon_hours,
            max_attempts=args.max_attempts,
            max_requeues=args.max_requeues,
            max_batch=args.max_batch,
            algorithm=args.algorithm,
        )
        if args.out is not None:
            from repro.experiments.export import write_result

            written = write_result(result, args.out)
            print(f"exported to {written}")
        # Losing a request is a resilience-layer bug, not a statistic.
        return 0 if result.all_complete else 1
    if args.experiment == "library-sim":
        if args.drives and any(d < 1 for d in args.drives):
            parser.error("--drives must be >= 1")
        if args.cartridges is not None and args.cartridges < 1:
            parser.error("--cartridges must be >= 1")
        if args.arms and any(k < 1 for k in args.arms):
            parser.error("--arms must be >= 1")
        result = library_sim.main(
            config,
            drives=tuple(args.drives) if args.drives else None,
            arms=tuple(args.arms) if args.arms else None,
            arm_policy=args.arm_policy,
            cartridges=(
                args.cartridges if args.cartridges is not None
                else library_sim.DEFAULT_CARTRIDGES
            ),
            assignments=(
                tuple(args.assignment_policy)
                if args.assignment_policy else None
            ),
            exchange=args.exchange_policy,
            rates=(args.rate_per_hour,),
            horizon_hours=args.horizon_hours,
            max_batch=args.max_batch,
            algorithm=args.algorithm,
            smoke=args.smoke,
        )
        if args.out is not None:
            from repro.experiments.export import write_result

            written = write_result(result, args.out)
            print(f"exported to {written}")
        # A request that neither completed nor failed is a kernel
        # bug, not a statistic.
        return 0 if result.all_complete else 1
    if args.experiment == "serve-sim":
        if args.drives and any(d < 1 for d in args.drives):
            parser.error("--drives must be >= 1")
        if args.cartridges is not None and args.cartridges < 1:
            parser.error("--cartridges must be >= 1")
        if args.backend_depth is not None and args.backend_depth < 0:
            parser.error("--backend-depth must be >= 0 (0 = unbounded)")
        if args.backend_depth is None:
            backend_depth = serve_sim.DEFAULT_BACKEND_DEPTH
        elif args.backend_depth == 0:
            backend_depth = None
        else:
            backend_depth = args.backend_depth
        result = serve_sim.main(
            config,
            drives=tuple(args.drives) if args.drives else None,
            cartridges=(
                args.cartridges if args.cartridges is not None
                else serve_sim.DEFAULT_CARTRIDGES
            ),
            horizon_hours=args.horizon_hours,
            max_batch=args.max_batch,
            algorithm=args.algorithm,
            backend_depth=backend_depth,
            smoke=args.smoke,
        )
        if args.out is not None:
            from repro.experiments.export import write_result

            written = write_result(result, args.out)
            print(f"exported to {written}")
        # A silently dropped request or a blown p999 SLO is a
        # serving-layer bug, not a statistic.
        return 0 if result.all_complete and result.slo_ok else 1
    if args.experiment == "optimality":
        if args.frontier_length and any(
            n < 2 for n in args.frontier_length
        ):
            parser.error("--frontier-length must be >= 2")
        if args.frontier_trials < 1:
            parser.error("--frontier-trials must be >= 1")
        frontier_lengths = (
            tuple(args.frontier_length) if args.frontier_length
            else optimality.DEFAULT_FRONTIER_LENGTHS
        )
        frontier_trials = args.frontier_trials
        if args.smoke:
            # The CI gate: a short grid that still crosses the
            # Held-Karp ceiling.
            frontier_lengths = (8, 48, 192)
            frontier_trials = 1
        result = optimality.run(
            config,
            frontier=not args.no_frontier,
            frontier_algorithms=(
                tuple(args.frontier_algorithm)
                if args.frontier_algorithm
                else optimality.DEFAULT_FRONTIER_ALGORITHMS
            ),
            frontier_lengths=frontier_lengths,
            frontier_trials=frontier_trials,
        )
        optimality.report(result)
        if args.out is not None:
            from repro.experiments.export import write_result

            written = write_result(
                result.frontier if result.frontier is not None
                else result,
                args.out,
            )
            print(f"exported to {written}")
        # A heuristic beating the exact linear optimum is a solver
        # bug, not a statistic.
        if result.frontier is not None:
            worst = min(
                (stats.mean for stats in result.frontier.gaps.values()),
                default=0.0,
            )
            return 0 if worst >= -1e-6 else 1
        return 0
    if args.experiment == "trace":
        result = trace_run.main(
            config,
            algorithm=args.algorithm,
            rate_per_hour=args.rate_per_hour,
            horizon_hours=args.horizon_hours,
            max_batch=args.max_batch,
            trace_jsonl=args.trace_jsonl,
            smoke=args.smoke,
        )
        if args.out is not None:
            from repro.experiments.export import write_result

            written = write_result(result, args.out)
            print(f"exported to {written}")
        return 0
    names = _ALL_ORDER if args.experiment == "all" else (args.experiment,)
    if args.out is not None and len(names) > 1:
        raise SystemExit("--out works with a single experiment")
    for name in names:
        run_experiment(
            name, config, chart=args.chart, out=args.out,
            workers=args.workers,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
