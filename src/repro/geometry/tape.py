"""Whole-tape geometry: fast mappings between segment numbers, physical
coordinates, and key points.

A :class:`TapeGeometry` is an immutable description of how segments are
laid out on one serpentine cartridge.  It is the single source of truth
consumed by the locate-time model (:mod:`repro.model`), the schedulers
(:mod:`repro.scheduling`), and the drive simulator (:mod:`repro.drive`).

The class precomputes per-segment numpy arrays (track, physical position,
ordinal section) so that the locate-time model can be evaluated over
millions of ``(source, destination)`` pairs with vectorized array
arithmetic — the simulation studies of the paper evaluate the model tens
of millions of times.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.constants import SECTIONS_PER_TRACK
from repro.exceptions import GeometryError, SegmentOutOfRange
from repro.geometry.coordinates import SegmentCoordinate, TrackDirection
from repro.geometry.section import SectionLayout
from repro.geometry.track import TrackLayout

#: Physical length of the tape in section units.
TAPE_PHYS_LENGTH = float(SECTIONS_PER_TRACK)


class TapeGeometry:
    """Immutable layout of one serpentine tape.

    Parameters
    ----------
    tracks:
        Track layouts in track-number order.  Tracks must tile the
        segment space contiguously starting at 0.
    label:
        Human-readable cartridge name (used in logs and reports).
    """

    def __init__(self, tracks: Sequence[TrackLayout], label: str = "tape"):
        if not tracks:
            raise GeometryError("a tape needs at least one track")
        self.label = label
        self._tracks = tuple(tracks)
        self._validate_contiguity()
        self._build_arrays()

    # -- construction -----------------------------------------------------

    def _validate_contiguity(self) -> None:
        expected_first = 0
        for layout in self._tracks:
            if layout.first_segment != expected_first:
                raise GeometryError(
                    f"track {layout.track} starts at segment "
                    f"{layout.first_segment}, expected {expected_first}"
                )
            expected_first = layout.last_segment + 1
        for number, layout in enumerate(self._tracks):
            if layout.track != number:
                raise GeometryError(
                    f"track layouts out of order: position {number} holds "
                    f"track {layout.track}"
                )

    def _build_arrays(self) -> None:
        num_tracks = len(self._tracks)
        track_sizes = np.array([t.size for t in self._tracks], dtype=np.int64)
        self._track_first = np.concatenate(
            ([0], np.cumsum(track_sizes))
        )
        self._total = int(self._track_first[-1])
        self._track_dir = np.array(
            [int(t.direction) for t in self._tracks], dtype=np.int8
        )

        seg_phys = np.empty(self._total, dtype=np.float64)
        seg_soi = np.empty(self._total, dtype=np.int8)
        seg_offset = np.empty(self._total, dtype=np.int32)
        seg_track = np.empty(self._total, dtype=np.int32)

        kp_phys = np.empty((num_tracks, SECTIONS_PER_TRACK), dtype=np.float64)
        kp_segments = np.empty(
            (num_tracks, SECTIONS_PER_TRACK), dtype=np.int64
        )

        for layout in self._tracks:
            lo = int(self._track_first[layout.track])
            hi = int(self._track_first[layout.track + 1])
            sizes = layout.section_sizes.astype(np.int64)
            bounds = layout.phys_boundaries
            lengths = np.diff(bounds)

            # Physical-order arrays for the whole track.
            sec_phys = np.repeat(
                np.arange(SECTIONS_PER_TRACK, dtype=np.int64), sizes
            )
            section_starts = np.concatenate(([0], np.cumsum(sizes[:-1])))
            offsets = (
                np.arange(layout.size, dtype=np.int64)
                - np.repeat(section_starts, sizes)
            )
            phys = (
                bounds[sec_phys]
                + (offsets + 0.5) * (lengths[sec_phys] / sizes[sec_phys])
            )

            if layout.direction is TrackDirection.FORWARD:
                seg_phys[lo:hi] = phys
                seg_soi[lo:hi] = sec_phys
                seg_offset[lo:hi] = offsets
            else:
                seg_phys[lo:hi] = phys[::-1]
                seg_soi[lo:hi] = (
                    SECTIONS_PER_TRACK - 1 - sec_phys
                )[::-1]
                seg_offset[lo:hi] = offsets[::-1]
            seg_track[lo:hi] = layout.track

            kp_phys[layout.track] = layout.key_point_phys()
            kp_segments[layout.track] = layout.key_point_segments()

        self._seg_phys = seg_phys
        self._seg_soi = seg_soi
        self._seg_offset = seg_offset
        self._seg_track = seg_track
        self._kp_phys = kp_phys
        self._kp_segments = kp_segments
        # Scan target for a destination with ordinal section ``i`` is the
        # key point two before it in segment order, i.e. key point
        # ``max(0, i - 1)`` (key point 0 is the beginning of the track,
        # which also covers the paper's cases 4 and 7).
        target_index = np.maximum(
            0, np.arange(SECTIONS_PER_TRACK) - 1
        )
        self._scan_target_phys = kp_phys[:, target_index]

    # -- basic properties --------------------------------------------------

    @property
    def total_segments(self) -> int:
        """Number of segments on the tape."""
        return self._total

    @property
    def num_tracks(self) -> int:
        """Number of tracks on the tape."""
        return len(self._tracks)

    @property
    def tracks(self) -> tuple[TrackLayout, ...]:
        """The per-track layouts."""
        return self._tracks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TapeGeometry(label={self.label!r}, "
            f"tracks={self.num_tracks}, segments={self._total})"
        )

    # -- validation ---------------------------------------------------------

    def check_segment(self, segment: int) -> None:
        """Raise :class:`SegmentOutOfRange` unless ``segment`` is on tape."""
        if not 0 <= segment < self._total:
            raise SegmentOutOfRange(segment, self._total)

    def check_segments(self, segments: np.ndarray) -> None:
        """Vectorized range check for an array of segment numbers."""
        segments = np.asarray(segments)
        if segments.size == 0:
            return
        bad = (segments < 0) | (segments >= self._total)
        if bad.any():
            offender = int(segments[bad][0])
            raise SegmentOutOfRange(offender, self._total)

    # -- per-segment lookups (scalar or vectorized) --------------------------

    def track_of(self, segment):
        """Track number(s) of ``segment`` (int or array)."""
        return self._seg_track[segment]

    def phys_of(self, segment):
        """Physical position(s) in section units, in ``[0, 14]``."""
        return self._seg_phys[segment]

    def ordinal_section_of(self, segment):
        """Segment-order section index(es) within the track, 0..13."""
        return self._seg_soi[segment]

    def section_of(self, segment):
        """Physical section number(s), 0 closest to BOT."""
        track = self._seg_track[segment]
        soi = self._seg_soi[segment]
        forward = self._track_dir[track] > 0
        return np.where(forward, soi, SECTIONS_PER_TRACK - 1 - soi)

    def direction_of(self, segment):
        """Track direction sign(s): +1 forward, -1 reverse."""
        return self._track_dir[self._seg_track[segment]]

    def global_section_of(self, segment):
        """Global section id(s): ``track * 14 + ordinal_section``.

        Consecutive ids within a track follow segment order, so two
        segments share an id iff they lie in the same physical section.
        """
        return (
            self._seg_track[segment].astype(np.int64) * SECTIONS_PER_TRACK
            + self._seg_soi[segment]
        )

    def scan_target_phys(self, segment):
        """Physical position the drive scans to before reading ``segment``.

        This is the key point two before the destination in segment
        order; for destinations in the first two ordinal sections it is
        the beginning of the track (the paper's cases 4 and 7).
        """
        track = self._seg_track[segment]
        soi = self._seg_soi[segment]
        return self._scan_target_phys[track, soi]

    # -- coordinates ---------------------------------------------------------

    def coordinate_of(self, segment: int) -> SegmentCoordinate:
        """Full physical coordinate of one segment."""
        self.check_segment(segment)
        track = int(self._seg_track[segment])
        soi = int(self._seg_soi[segment])
        direction = TrackDirection.of_track(track)
        if direction is TrackDirection.FORWARD:
            section = soi
        else:
            section = SECTIONS_PER_TRACK - 1 - soi
        return SegmentCoordinate(
            track=track,
            section=section,
            offset=int(self._seg_offset[segment]),
        )

    def segment_at(self, track: int, section: int, offset: int) -> int:
        """Absolute segment number at coordinate ``(track, section, offset)``."""
        if not 0 <= track < self.num_tracks:
            raise GeometryError(f"track {track} out of range")
        if not 0 <= section < SECTIONS_PER_TRACK:
            raise GeometryError(f"section {section} out of range")
        layout = self._tracks[track].section_layout(section)
        if not 0 <= offset < layout.size:
            raise GeometryError(
                f"offset {offset} out of range for section "
                f"({track}, {section}) of size {layout.size}"
            )
        if TrackDirection.of_track(track) is TrackDirection.FORWARD:
            return layout.first_segment + offset
        return layout.first_segment + (layout.size - 1 - offset)

    # -- sections and key points ---------------------------------------------

    def track_layout(self, track: int) -> TrackLayout:
        """Layout record of one track."""
        return self._tracks[track]

    def section_layout(self, track: int, section: int) -> SectionLayout:
        """Layout record of one physical section."""
        return self._tracks[track].section_layout(section)

    def iter_sections(self) -> Iterator[SectionLayout]:
        """Iterate over every section on the tape, track-major."""
        for layout in self._tracks:
            for section in range(SECTIONS_PER_TRACK):
                yield layout.section_layout(section)

    def key_points(self, track: int) -> np.ndarray:
        """Absolute segment numbers of the track's 14 key points
        (track start followed by the 13 dips), in segment order."""
        return self._kp_segments[track].copy()

    def all_key_points(self) -> np.ndarray:
        """Key-point segment numbers for every track, shape ``(T, 14)``."""
        return self._kp_segments.copy()

    def key_point_phys(self, track: int) -> np.ndarray:
        """Physical positions of the track's key points, segment order."""
        return self._kp_phys[track].copy()

    def track_first_segments(self) -> np.ndarray:
        """First absolute segment of each track plus the total, ``(T+1,)``."""
        return self._track_first.copy()
