"""Serpentine tape geometry: tracks, sections, key points, coordinates.

Public surface::

    from repro.geometry import (
        TapeGeometry, TrackLayout, SectionLayout, SegmentCoordinate,
        TrackDirection, generate_tape, tiny_tape, make_tape_pair,
        calibrate_key_points, geometry_from_key_points,
    )
"""

from repro.geometry.calibration import (
    CalibrationError,
    CalibrationResult,
    calibrate_key_points,
    detect_drops,
    geometry_from_key_points,
    noisy_oracle,
    sweep_locate_curve,
)
from repro.geometry.coordinates import (
    SegmentCoordinate,
    TrackDirection,
    ordinal_section,
    physical_section,
)
from repro.geometry.generator import generate_tape, make_tape_pair, tiny_tape
from repro.geometry.probing import probing_calibrate
from repro.geometry.section import SectionLayout
from repro.geometry.serialization import (
    geometry_from_dict,
    geometry_to_dict,
    load_geometry,
    save_geometry,
)
from repro.geometry.tape import TAPE_PHYS_LENGTH, TapeGeometry
from repro.geometry.track import TrackLayout

__all__ = [
    "CalibrationError",
    "CalibrationResult",
    "SectionLayout",
    "SegmentCoordinate",
    "TAPE_PHYS_LENGTH",
    "TapeGeometry",
    "TrackDirection",
    "TrackLayout",
    "calibrate_key_points",
    "detect_drops",
    "generate_tape",
    "geometry_from_dict",
    "geometry_from_key_points",
    "geometry_to_dict",
    "load_geometry",
    "make_tape_pair",
    "noisy_oracle",
    "ordinal_section",
    "physical_section",
    "probing_calibrate",
    "save_geometry",
    "sweep_locate_curve",
    "tiny_tape",
]
