"""Coordinate types for serpentine tape.

The paper defines a physical coordinate system ``(track, section, segment)``
analogous to a disk's ``(cylinder, track, sector)``:

* *section 0* within a track and *segment 0* within a section are the ones
  physically closest to the beginning of the tape (BOT);
* even-numbered tracks are **forward** tracks (tape motion from BOT toward
  the end), odd-numbered tracks are **reverse** tracks;
* in a reverse track, the absolute segment number therefore *decreases*
  with physical position: the first segment written on a reverse track
  ``t'`` is ``(t', 13, k)`` at the physical far end of the tape.

Two distinct "section indexes" appear throughout the code base:

``section``
    the physical section number, 0 closest to BOT (as in the paper);

``ordinal section`` (``soi`` in code)
    the section's position in *segment order* within its track: 0 for the
    section containing the track's first-written segment.  For forward
    tracks ``soi == section``; for reverse tracks ``soi == 13 - section``.
    The locate-time model's "key point two before the destination" is
    naturally expressed in ordinal terms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.constants import SECTIONS_PER_TRACK


class TrackDirection(enum.IntEnum):
    """Physical direction of tape motion while reading a track forward.

    The integer values are chosen so the enum doubles as the sign of
    ``d(physical position)/d(segment number)`` within the track.
    """

    FORWARD = 1
    REVERSE = -1

    @classmethod
    def of_track(cls, track: int) -> "TrackDirection":
        """Direction of track ``track`` (even tracks are forward)."""
        return cls.FORWARD if track % 2 == 0 else cls.REVERSE


def ordinal_section(track: int, section: int) -> int:
    """Segment-order index of physical ``section`` within ``track``."""
    if TrackDirection.of_track(track) is TrackDirection.FORWARD:
        return section
    return SECTIONS_PER_TRACK - 1 - section


def physical_section(track: int, soi: int) -> int:
    """Inverse of :func:`ordinal_section`."""
    return ordinal_section(track, soi)


@dataclass(frozen=True, slots=True)
class SegmentCoordinate:
    """Physical coordinate of a segment: ``(track, section, offset)``.

    ``offset`` counts segments from the physical start of the section
    (the end closest to BOT), matching the paper's convention that
    "segment 0 within a section" is the one closest to the beginning of
    the tape.
    """

    track: int
    section: int
    offset: int

    @property
    def direction(self) -> TrackDirection:
        """Direction of the coordinate's track."""
        return TrackDirection.of_track(self.track)

    @property
    def ordinal_section(self) -> int:
        """Segment-order section index of this coordinate."""
        return ordinal_section(self.track, self.section)

    def is_codirectional(self, other: "SegmentCoordinate") -> bool:
        """True if both coordinates lie in tracks of the same direction."""
        return self.direction is other.direction

    def as_tuple(self) -> tuple[int, int, int]:
        """Return ``(track, section, offset)``."""
        return (self.track, self.section, self.offset)
