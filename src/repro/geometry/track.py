"""Per-track layout record."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SECTIONS_PER_TRACK
from repro.exceptions import GeometryError
from repro.geometry.coordinates import TrackDirection
from repro.geometry.section import SectionLayout


@dataclass(frozen=True)
class TrackLayout:
    """Layout of one serpentine track.

    Attributes
    ----------
    track:
        Track number, 0..63.  Even tracks are forward, odd reverse.
    first_segment:
        Absolute segment number of the first segment *written* on the
        track (the track's lowest segment number).
    section_sizes:
        ``int`` array of shape ``(14,)`` — segments per physical section.
    phys_boundaries:
        ``float`` array of shape ``(15,)`` — physical positions of the
        section boundaries of this track, ``phys_boundaries[0] == 0.0``
        and ``phys_boundaries[14] == 14.0`` (section units).
    """

    track: int
    first_segment: int
    section_sizes: np.ndarray
    phys_boundaries: np.ndarray

    def __post_init__(self) -> None:
        if self.section_sizes.shape != (SECTIONS_PER_TRACK,):
            raise GeometryError(
                f"track {self.track}: expected {SECTIONS_PER_TRACK} section "
                f"sizes, got shape {self.section_sizes.shape}"
            )
        if self.phys_boundaries.shape != (SECTIONS_PER_TRACK + 1,):
            raise GeometryError(
                f"track {self.track}: expected {SECTIONS_PER_TRACK + 1} "
                f"physical boundaries"
            )
        if (self.section_sizes <= 0).any():
            raise GeometryError(
                f"track {self.track}: all sections must be non-empty"
            )
        if (np.diff(self.phys_boundaries) <= 0).any():
            raise GeometryError(
                f"track {self.track}: physical boundaries must increase"
            )

    @property
    def direction(self) -> TrackDirection:
        """Direction of this track."""
        return TrackDirection.of_track(self.track)

    @property
    def size(self) -> int:
        """Total segments on the track."""
        return int(self.section_sizes.sum())

    @property
    def last_segment(self) -> int:
        """Absolute number of the last segment written on the track."""
        return self.first_segment + self.size - 1

    def section_layout(self, section: int) -> SectionLayout:
        """Full :class:`SectionLayout` for physical ``section``."""
        sizes = self.section_sizes
        if self.direction is TrackDirection.FORWARD:
            first = self.first_segment + int(sizes[:section].sum())
        else:
            # Reverse track: segment numbers start at the far physical end,
            # so the lowest segment number of physical section s follows
            # all segments in physically-farther sections.
            first = self.first_segment + int(sizes[section + 1:].sum())
        return SectionLayout(
            track=self.track,
            section=section,
            size=int(sizes[section]),
            first_segment=first,
            phys_start=float(self.phys_boundaries[section]),
            phys_length=float(
                self.phys_boundaries[section + 1]
                - self.phys_boundaries[section]
            ),
        )

    def key_point_segments(self) -> np.ndarray:
        """Absolute segment numbers of the track's key points.

        The key points, in *segment order*, are the track's first segment
        followed by the 13 dips (the first segment of each subsequent
        section in segment order).  Returns an ``int`` array of shape
        ``(14,)``.
        """
        if self.direction is TrackDirection.FORWARD:
            ordered_sizes = self.section_sizes
        else:
            ordered_sizes = self.section_sizes[::-1]
        starts = np.concatenate(
            ([0], np.cumsum(ordered_sizes[:-1]))
        )
        return self.first_segment + starts

    def key_point_phys(self) -> np.ndarray:
        """Physical positions of the key points, in segment order.

        ``key_point_phys()[j]`` is the physical position of the ``j``-th
        key point in segment order: for forward tracks these are the
        boundaries ``0, b1, .., b13`` in increasing physical order; for
        reverse tracks they run from the physical far end inward
        (``14, b13, .., b1``).
        """
        if self.direction is TrackDirection.FORWARD:
            return self.phys_boundaries[:-1].copy()
        return self.phys_boundaries[:0:-1].copy()
