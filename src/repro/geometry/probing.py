"""Economical key-point calibration by adaptive probing.

The dense calibration of :mod:`repro.geometry.calibration` measures the
locate curve at *every* segment — 1.2 million locate operations, which
is exactly the multi-hour measurement campaign the paper describes.
This module recovers the same key points with a few thousand probes.

The idea: from a fixed anchor, the locate curve rises with a known
per-segment slope inside every section and drops abruptly at each key
point.  Subtracting the nominal slope leaves a *residual* that is flat
within sections and steps down at key points, so the cumulative
residual drop over any window counts (and weights) the key points
inside it.  A recursive bisection descends only into windows whose
endpoints show a residual drop, costing O(log section-size) probes per
key point instead of one probe per segment.

The slope subtraction tolerates the per-section slope variation of a
real cartridge (a fraction of a second across a section) because
windows without key points are at most one section long by the time
the recursion inspects them.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    READ_SECONDS_PER_SECTION,
    SECTIONS_PER_TRACK,
)
from repro.geometry.calibration import (
    CalibrationResult,
    LocateOracle,
    assemble_key_points,
)

#: Default residual-drop threshold; same role as the dense detector's.
DEFAULT_RESIDUAL_THRESHOLD = 2.5


class _ProbeCurve:
    """Memoized point probes of ``locate_time(anchor, y)``."""

    def __init__(self, oracle: LocateOracle, anchor: int,
                 slope: float) -> None:
        self._oracle = oracle
        self._anchor = anchor
        self._slope = slope
        self._cache: dict[int, float] = {}
        self.probes = 0

    def residual(self, y: int) -> float:
        """Locate time at ``y`` minus the nominal within-section rise."""
        if y not in self._cache:
            value = float(
                np.asarray(
                    self._oracle(self._anchor, np.asarray([y]))
                )[0]
            )
            self._cache[y] = value
            self.probes += 1
        return self._cache[y] - self._slope * y


def _find_drops(
    curve: _ProbeCurve,
    lo: int,
    hi: int,
    threshold: float,
    out: set[int],
) -> None:
    """Collect every ``y`` in ``(lo, hi]`` whose residual drops.

    Iterative bisection (the tape is ~620k segments; recursion depth
    would be fine, but an explicit stack keeps it obviously safe).
    """
    stack = [(lo, hi)]
    while stack:
        low, high = stack.pop()
        if curve.residual(high) >= curve.residual(low) - threshold:
            continue
        if high - low == 1:
            out.add(high)
            continue
        mid = (low + high) // 2
        stack.append((low, mid))
        stack.append((mid, high))


def probing_calibrate(
    oracle: LocateOracle,
    total_segments: int,
    num_tracks: int,
    threshold: float = DEFAULT_RESIDUAL_THRESHOLD,
    slope: float | None = None,
) -> CalibrationResult:
    """Recover all key points with adaptive point probes.

    Same contract as
    :func:`repro.geometry.calibration.calibrate_key_points`, at a small
    fraction of the measurement cost.  Suitable for clean oracles (the
    bisection predicate compares single probes, so heavy measurement
    noise calls for the dense sweep or repeated probing).
    """
    if slope is None:
        slope = (
            READ_SECONDS_PER_SECTION
            * num_tracks
            * SECTIONS_PER_TRACK
            / total_segments
        )

    detected: set[int] = set()
    probes = 0
    for anchor in (0, total_segments - 1):
        curve = _ProbeCurve(oracle, anchor, slope)
        _find_drops(curve, 0, total_segments - 1, threshold, detected)
        probes += curve.probes
    detected.discard(0)
    detected.discard(total_segments - 1)
    detected.add(0)

    key_points = assemble_key_points(detected, total_segments, num_tracks)
    return CalibrationResult(key_points=key_points, probes=probes)
