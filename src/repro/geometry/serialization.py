"""Persisting tape geometries.

Characterizing a cartridge costs a full locate-time sweep (Section 3 of
the paper reports multi-hour measurement campaigns), so a production
system stores each cartridge's key points alongside its label and
reloads them at mount time.  The format is plain JSON: one object per
cartridge with the section sizes and physical boundaries per track.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import GeometryError
from repro.geometry.tape import TapeGeometry
from repro.geometry.track import TrackLayout

#: Format identifier embedded in every file.
FORMAT = "repro-tape-geometry"
VERSION = 1


def geometry_to_dict(geometry: TapeGeometry) -> dict:
    """Serializable representation of a tape geometry."""
    return {
        "format": FORMAT,
        "version": VERSION,
        "label": geometry.label,
        "total_segments": geometry.total_segments,
        "tracks": [
            {
                "track": layout.track,
                "first_segment": layout.first_segment,
                "section_sizes": layout.section_sizes.tolist(),
                "phys_boundaries": layout.phys_boundaries.tolist(),
            }
            for layout in geometry.tracks
        ],
    }


def geometry_from_dict(payload: dict) -> TapeGeometry:
    """Inverse of :func:`geometry_to_dict`."""
    if payload.get("format") != FORMAT:
        raise GeometryError(
            f"not a tape-geometry payload: format={payload.get('format')!r}"
        )
    if payload.get("version") != VERSION:
        raise GeometryError(
            f"unsupported geometry version {payload.get('version')!r}"
        )
    layouts = [
        TrackLayout(
            track=int(entry["track"]),
            first_segment=int(entry["first_segment"]),
            section_sizes=np.asarray(entry["section_sizes"],
                                     dtype=np.int64),
            phys_boundaries=np.asarray(entry["phys_boundaries"],
                                       dtype=np.float64),
        )
        for entry in payload["tracks"]
    ]
    geometry = TapeGeometry(layouts, label=payload.get("label", "tape"))
    if geometry.total_segments != int(payload["total_segments"]):
        raise GeometryError(
            "total_segments in payload disagrees with track layouts"
        )
    return geometry


def save_geometry(geometry: TapeGeometry, path: str | Path) -> None:
    """Write a geometry to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(geometry_to_dict(geometry), indent=1))


def load_geometry(path: str | Path) -> TapeGeometry:
    """Read a geometry from a JSON file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise GeometryError(
            f"corrupt geometry file {path}: {error}"
        ) from error
    return geometry_from_dict(payload)
