"""Seeded generation of synthetic tape geometries.

The paper characterizes individual physical tapes: tracks have differing
lengths (bad-spot losses), section boundaries sit at slightly different
physical positions from track to track, sections hold roughly 704
segments except the short section 13 (~600).  Two different cartridges
("tape A" and "tape B" in Sections 6–7) have *different* key points, and
using the wrong tape's key points wrecks the schedule estimates.

This module generates tapes with exactly that structure from a seed:
per-section segment counts are drawn with configurable jitter and then
normalized to a requested total, so two seeds give cartridges whose key
points drift apart by hundreds of segments — the property that drives the
paper's Figure 9 experiment.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    DEFAULT_TOTAL_SEGMENTS,
    NOMINAL_LAST_SECTION_SEGMENTS,
    NOMINAL_SECTION_SEGMENTS,
    SECTIONS_PER_TRACK,
    TRACKS,
)
from repro.exceptions import GeometryError
from repro.geometry.tape import TAPE_PHYS_LENGTH, TapeGeometry
from repro.geometry.track import TrackLayout

#: Default standard deviation of section sizes (segments).
DEFAULT_SECTION_SIGMA = 8.0

#: Default standard deviation of the short last section (segments).
DEFAULT_LAST_SECTION_SIGMA = 20.0


def generate_tape(
    seed: int = 0,
    total_segments: int = DEFAULT_TOTAL_SEGMENTS,
    tracks: int = TRACKS,
    label: str | None = None,
    section_sigma: float = DEFAULT_SECTION_SIGMA,
    last_section_sigma: float = DEFAULT_LAST_SECTION_SIGMA,
    nominal_section: int | None = None,
    nominal_last_section: int | None = None,
) -> TapeGeometry:
    """Generate a synthetic serpentine tape.

    Parameters
    ----------
    seed:
        Seed for the geometry jitter.  The same seed always produces the
        identical cartridge.
    total_segments:
        Exact number of segments on the tape (the per-section draws are
        adjusted to hit this total, mirroring how a fixed-size file set
        fills a real cartridge).
    tracks:
        Number of tracks; must be even so the serpentine pattern ends at
        the physical beginning of the tape.
    section_sigma, last_section_sigma:
        Jitter of the per-section segment counts.  Larger values make two
        cartridges' key points diverge faster.
    nominal_section, nominal_last_section:
        Override the nominal section sizes (used to build miniature tapes
        for fast tests).

    Returns
    -------
    TapeGeometry
    """
    if tracks < 2 or tracks % 2:
        raise GeometryError("tracks must be an even number >= 2")
    if nominal_section is None or nominal_last_section is None:
        scale = total_segments / (
            tracks
            * (
                (SECTIONS_PER_TRACK - 1) * NOMINAL_SECTION_SEGMENTS
                + NOMINAL_LAST_SECTION_SEGMENTS
            )
        )
        nominal_section = nominal_section or max(
            2, round(NOMINAL_SECTION_SEGMENTS * scale)
        )
        nominal_last_section = nominal_last_section or max(
            2, round(NOMINAL_LAST_SECTION_SEGMENTS * scale)
        )

    rng = np.random.default_rng(seed)
    sizes = np.rint(
        rng.normal(
            loc=nominal_section,
            scale=section_sigma,
            size=(tracks, SECTIONS_PER_TRACK),
        )
    ).astype(np.int64)
    sizes[:, -1] = np.rint(
        rng.normal(
            loc=nominal_last_section, scale=last_section_sigma, size=tracks
        )
    ).astype(np.int64)
    floor = max(2, nominal_last_section // 4)
    np.clip(sizes, floor, None, out=sizes)

    _normalize_total(sizes, total_segments, floor, rng)

    layouts = []
    first_segment = 0
    for track in range(tracks):
        track_sizes = sizes[track]
        boundaries = np.concatenate(
            ([0.0], np.cumsum(track_sizes, dtype=np.float64))
        )
        boundaries *= TAPE_PHYS_LENGTH / boundaries[-1]
        layouts.append(
            TrackLayout(
                track=track,
                first_segment=first_segment,
                section_sizes=track_sizes.copy(),
                phys_boundaries=boundaries,
            )
        )
        first_segment += int(track_sizes.sum())

    return TapeGeometry(layouts, label=label or f"synthetic-{seed}")


def _normalize_total(
    sizes: np.ndarray, total: int, floor: int, rng: np.random.Generator
) -> None:
    """Adjust ``sizes`` in place so they sum to exactly ``total``."""
    cells = sizes.size
    diff = total - int(sizes.sum())
    base, remainder = divmod(abs(diff), cells)
    if diff == 0:
        return
    sign = 1 if diff > 0 else -1
    sizes += sign * base
    if remainder:
        flat = sizes.reshape(-1)
        chosen = rng.choice(cells, size=remainder, replace=False)
        flat[chosen] += sign
    if (sizes < max(2, floor // 2)).any():
        raise GeometryError(
            "requested total_segments too small for this tape shape"
        )


def tiny_tape(
    seed: int = 0,
    tracks: int = 4,
    section_segments: int = 12,
    last_section_segments: int = 8,
    label: str | None = None,
) -> TapeGeometry:
    """A miniature tape for fast tests (hundreds of segments, not 622k).

    Shares the full tape's serpentine structure — forward/reverse tracks,
    14 sections, short last section, jittered sizes — so every code path
    exercised on a real-size tape is also exercised here.
    """
    total = tracks * (
        (SECTIONS_PER_TRACK - 1) * section_segments + last_section_segments
    )
    return generate_tape(
        seed=seed,
        total_segments=total,
        tracks=tracks,
        label=label or f"tiny-{seed}",
        section_sigma=1.0,
        last_section_sigma=1.0,
        nominal_section=section_segments,
        nominal_last_section=last_section_segments,
    )


#: Jitter used for cartridge *pairs*: large enough that two tapes' key
#: points diverge by up to a few thousand segments (several sections at
#: the far end), which is what makes using the wrong tape's key points
#: "disastrous" (~20 % estimate error) in the paper's Figure 9.
PAIR_SECTION_SIGMA = 60.0
PAIR_LAST_SECTION_SIGMA = 120.0


def make_tape_pair(
    seed: int = 0,
    section_sigma: float = PAIR_SECTION_SIGMA,
    last_section_sigma: float = PAIR_LAST_SECTION_SIGMA,
    **kwargs,
) -> tuple[TapeGeometry, TapeGeometry]:
    """Two cartridges with independent geometry jitter ("tape A"/"tape B").

    Used by the Figure 9 experiment: schedules built with tape B's key
    points and executed on tape A.  The default jitter is larger than
    :func:`generate_tape`'s so the pair diverges the way two physical
    cartridges with different bad-spot maps do.
    """
    tape_a = generate_tape(
        seed=seed * 2 + 1,
        label=f"tape-A-{seed}",
        section_sigma=section_sigma,
        last_section_sigma=last_section_sigma,
        **kwargs,
    )
    tape_b = generate_tape(
        seed=seed * 2 + 2,
        label=f"tape-B-{seed}",
        section_sigma=section_sigma,
        last_section_sigma=last_section_sigma,
        **kwargs,
    )
    return tape_a, tape_b
