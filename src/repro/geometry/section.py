"""Per-section layout record."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SectionLayout:
    """Layout of one physical section within one track.

    Attributes
    ----------
    track, section:
        Physical coordinates of the section.
    size:
        Number of 32 KB segments recorded in the section.
    first_segment:
        Absolute segment number of the *lowest-numbered* segment in the
        section.  Because reverse tracks are written from the physical
        far end, this is the segment at the physically-far edge of the
        section for reverse tracks and at the near edge for forward
        tracks.
    phys_start, phys_length:
        Physical extent of the section along the tape, in section units
        (the tape spans ``[0, 14]``).  Boundaries differ slightly from
        track to track, as the paper observes.
    """

    track: int
    section: int
    size: int
    first_segment: int
    phys_start: float
    phys_length: float

    @property
    def last_segment(self) -> int:
        """Absolute number of the highest-numbered segment in the section."""
        return self.first_segment + self.size - 1

    @property
    def phys_end(self) -> float:
        """Physical position of the far edge of the section."""
        return self.phys_start + self.phys_length

    def __contains__(self, segment: int) -> bool:
        return self.first_segment <= segment <= self.last_segment
