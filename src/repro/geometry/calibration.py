"""Key-point calibration: recovering a tape's geometry from locate times.

The locate-time model is parameterized by the *key points* of an
individual cartridge (each track's first segment and its 13 dips).  The
paper notes that "algorithms to determine the precise segment numbers of
the key points are given in [HS96]; in essence, each dip is found by
measuring locate times from the preceding dip", and Figure 1 shows the
raw material: the locate-time curve from a fixed source exhibits an
abrupt drop of ~5 s (forward tracks) or ~25 s (reverse tracks) exactly
one segment past each peak.

This module reproduces that procedure against any locate-time oracle
(the ground-truth drive, or a model): sweep the locate curve from a fixed
anchor, detect the abrupt drops, and read off the key points.  Because a
fixed anchor cannot see the boundaries inside its own read-ahead window
(the model's case 1 is smooth there), a second anchor at the far end of
the tape covers the blind spot.

One boundary per track is *not directly observable*: destinations in a
track's first two ordinal sections both scan to the beginning of the
track (the model's cases 4 and 7), so the locate curve is smooth across
their shared boundary.  The calibrator interpolates it (midpoint split)
and flags it.  The interpolated boundary still serves as the scan
target for destinations in ordinal section 2, so its error perturbs
those locates by (error x track density x scan/read rates) — a fraction
of a second on a full-size cartridge.  Every *observable* key point is
recovered exactly from a noiseless oracle (asserted by tests); a noisy
oracle yields approximate key points, which feeds the sensitivity
experiments of Section 7.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.constants import SECTIONS_PER_TRACK
from repro.exceptions import GeometryError
from repro.geometry.tape import TAPE_PHYS_LENGTH, TapeGeometry
from repro.geometry.track import TrackLayout

#: Signature of a locate-time oracle: ``oracle(source, destinations)``
#: returns the locate time(s) in seconds.  ``destinations`` may be an
#: integer array; the result has matching shape.
LocateOracle = Callable[[int, np.ndarray], np.ndarray]

#: Default drop threshold, safely between probe noise and the smallest
#: genuine discontinuity (~5 s on forward tracks).
DEFAULT_DROP_THRESHOLD = 2.5


class CalibrationError(GeometryError):
    """Key-point recovery failed (wrong count of detected drops)."""


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a key-point calibration run.

    Attributes
    ----------
    key_points:
        ``(tracks, 14)`` array of absolute segment numbers, row ``t``
        holding track ``t``'s key points in segment order.
    probes:
        Number of locate-time measurements performed.
    interpolated_column:
        Column of ``key_points`` (always 1) whose boundaries are not
        observable from locate times and were interpolated.
    """

    key_points: np.ndarray
    probes: int
    interpolated_column: int = 1

    def max_error(self, reference: np.ndarray) -> int:
        """Largest absolute deviation from reference key points."""
        return int(np.abs(self.key_points - reference).max())

    def max_observable_error(self, reference: np.ndarray) -> int:
        """Largest deviation over the *observable* key points."""
        mask = np.ones(self.key_points.shape[1], dtype=bool)
        mask[self.interpolated_column] = False
        return int(
            np.abs(self.key_points[:, mask] - reference[:, mask]).max()
        )


def sweep_locate_curve(
    oracle: LocateOracle, anchor: int, total_segments: int
) -> np.ndarray:
    """Measure ``locate_time(anchor, y)`` for every segment ``y``."""
    destinations = np.arange(total_segments, dtype=np.int64)
    return np.asarray(oracle(anchor, destinations), dtype=np.float64)


def detect_drops(
    curve: np.ndarray, threshold: float = DEFAULT_DROP_THRESHOLD
) -> np.ndarray:
    """Destinations where the locate curve drops abruptly.

    Returns the segment numbers ``y`` with
    ``curve[y] < curve[y - 1] - threshold`` — the paper's dips, each
    "exactly one segment beyond a peak".
    """
    drops = np.flatnonzero(np.diff(curve) < -threshold) + 1
    return drops.astype(np.int64)


def calibrate_key_points(
    oracle: LocateOracle,
    total_segments: int,
    num_tracks: int,
    threshold: float = DEFAULT_DROP_THRESHOLD,
) -> CalibrationResult:
    """Recover every key point of a tape from locate-time measurements.

    Parameters
    ----------
    oracle:
        Locate-time oracle for the cartridge being characterized.
    total_segments, num_tracks:
        Size of the cartridge (known from writing it).
    threshold:
        Minimum abrupt drop treated as a key-point signature.

    Raises
    ------
    CalibrationError
        If the number of detected drops is inconsistent with
        ``num_tracks`` tracks of 14 sections (e.g. because oracle noise
        exceeded the threshold).
    """
    front_anchor = 0
    back_anchor = total_segments - 1
    front_curve = sweep_locate_curve(oracle, front_anchor, total_segments)
    back_curve = sweep_locate_curve(oracle, back_anchor, total_segments)
    probes = 2 * total_segments

    detected = set(detect_drops(front_curve, threshold).tolist())
    detected.update(detect_drops(back_curve, threshold).tolist())
    # The anchors themselves produce a trivial zero-time "drop".
    detected.discard(front_anchor)
    detected.discard(back_anchor)
    # Segment 0 is the first key point by definition.
    detected.add(0)

    key_points = assemble_key_points(detected, total_segments, num_tracks)
    return CalibrationResult(key_points=key_points, probes=probes)


def assemble_key_points(
    detected: set[int], total_segments: int, num_tracks: int
) -> np.ndarray:
    """Turn a set of detected drop positions into the key-point table.

    Validates the count (13 observable key points per track: the track
    start and 12 dips — the boundary between the first two ordinal
    sections is smooth because both scan to the beginning of the
    track), then interpolates that unobservable boundary per track.
    """
    observable_per_track = SECTIONS_PER_TRACK - 1
    expected = num_tracks * observable_per_track
    observed = np.array(sorted(detected), dtype=np.int64)
    if observed.size != expected:
        raise CalibrationError(
            f"detected {observed.size} key points, expected {expected}; "
            "oracle noise may exceed the drop threshold"
        )
    observed = observed.reshape(num_tracks, observable_per_track)
    # Interpolate the unobservable boundary between each track's first
    # two ordinal sections.  The serpentine format tells us the split:
    # on forward tracks both are normal-length sections (even split);
    # on reverse tracks ordinal section 0 is the short physical
    # section 13, so the span splits short:normal.  Both lengths are
    # estimated from the observable sections of the sweep itself.
    interior = np.diff(observed[:, 1:], axis=1)
    normal_size = float(np.median(interior))
    forward_rows = np.arange(num_tracks) % 2 == 0
    track_ends = np.concatenate(
        (observed[1:, 0], [total_segments])
    )
    last_ordinal_sizes = track_ends - observed[:, -1]
    # Forward tracks end in the short physical section 13.
    short_size = float(np.median(last_ordinal_sizes[forward_rows]))

    span = observed[:, 1] - observed[:, 0]
    even_split = span // 2
    short_ratio = short_size / max(1.0, short_size + normal_size)
    short_split = np.rint(span * short_ratio).astype(np.int64)
    first_dip = observed[:, 0] + np.where(
        forward_rows, even_split, short_split
    )
    return np.concatenate(
        (observed[:, :1], first_dip[:, None], observed[:, 1:]), axis=1
    )


def noisy_oracle(
    oracle: LocateOracle, sigma: float, seed: int = 0
) -> LocateOracle:
    """Wrap an oracle with i.i.d. Gaussian measurement noise."""
    rng = np.random.default_rng(seed)

    def measure(source: int, destinations: np.ndarray) -> np.ndarray:
        clean = np.asarray(oracle(source, destinations), dtype=np.float64)
        return clean + rng.normal(0.0, sigma, size=clean.shape)

    return measure


def geometry_from_key_points(
    key_points: np.ndarray,
    total_segments: int,
    label: str = "calibrated",
) -> TapeGeometry:
    """Reconstruct a :class:`TapeGeometry` from calibrated key points.

    The key points determine every section's segment count exactly; the
    physical boundary positions are reconstructed proportionally (the
    same convention the synthetic generator uses), so a calibration of a
    synthetic tape reproduces its geometry bit-for-bit.
    """
    key_points = np.asarray(key_points, dtype=np.int64)
    if key_points.ndim != 2 or key_points.shape[1] != SECTIONS_PER_TRACK:
        raise GeometryError(
            f"key_points must have shape (tracks, {SECTIONS_PER_TRACK})"
        )
    num_tracks = key_points.shape[0]
    layouts = []
    for track in range(num_tracks):
        row = key_points[track]
        next_first = (
            int(key_points[track + 1, 0])
            if track + 1 < num_tracks
            else total_segments
        )
        ordered_sizes = np.diff(np.concatenate((row, [next_first])))
        if (ordered_sizes <= 0).any():
            raise GeometryError(
                f"track {track}: key points are not strictly increasing"
            )
        if track % 2 == 0:
            section_sizes = ordered_sizes
        else:
            section_sizes = ordered_sizes[::-1]
        boundaries = np.concatenate(
            ([0.0], np.cumsum(section_sizes, dtype=np.float64))
        )
        boundaries *= TAPE_PHYS_LENGTH / boundaries[-1]
        layouts.append(
            TrackLayout(
                track=track,
                first_segment=int(row[0]),
                section_sizes=section_sizes.astype(np.int64),
                phys_boundaries=boundaries,
            )
        )
    return TapeGeometry(layouts, label=label)
