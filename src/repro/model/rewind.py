"""Rewind-time model.

Rewind moves the head from its current physical position back to the
beginning of the tape at scan speed.  Figure 1 of the paper plots the
rewind time (dotted curve) alongside the locate curve; it tracks the
physical position of the destination segment — a sawtooth across tracks,
rising within forward tracks and falling within reverse tracks.

Single-reel cartridges (DLT, IBM 3590) must rewind before ejecting, so
this model also feeds the robotic-library simulation in
:mod:`repro.online`.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    REWIND_OVERHEAD_SECONDS,
    SCAN_SECONDS_PER_SECTION,
)
from repro.geometry.tape import TapeGeometry


def rewind_time(geometry: TapeGeometry, segment) -> np.ndarray:
    """Seconds to rewind to BOT from (the start of) ``segment``.

    Accepts a scalar or an array of segment numbers; returns matching
    shape.
    """
    phys = geometry.phys_of(np.asarray(segment, dtype=np.int64))
    return REWIND_OVERHEAD_SECONDS + phys * SCAN_SECONDS_PER_SECTION


def max_rewind_time(geometry: TapeGeometry) -> float:
    """Worst-case rewind time (from the physical end of the tape)."""
    from repro.geometry.tape import TAPE_PHYS_LENGTH

    return (
        REWIND_OVERHEAD_SECONDS
        + TAPE_PHYS_LENGTH * SCAN_SECONDS_PER_SECTION
    )
