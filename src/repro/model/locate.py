"""The DLT4000 locate-time model.

This is a reconstruction of the model of Hillyer & Silberschatz [HS96],
as described intuitively in Section 3 of the SIGMOD '96 paper.  The
model has two transport speeds:

* **read** — 15.5 seconds per section, used for I/O transfers and
  short-distance motion;
* **scan** — 10 seconds per section, used for rewind and long motions.

and seven cases, all of which reduce to one of two behaviours:

1. *Read-through* (the paper's case 1): the destination is in the same
   track, at or ahead of the source, within the same section or the
   following two — the drive simply keeps reading forward.  Time is the
   physical distance at read speed.

2. *Scan-and-read* (cases 2–7): the drive repositions, scans (forward or
   backward) to the **key point two before the destination** in segment
   order — which is the beginning of the track when the destination lies
   in the first two ordinal sections (cases 4 and 7) — and then reads
   forward to the destination.  Time is a fixed repositioning overhead,
   plus the scan distance at scan speed, plus the read-in distance at
   read speed, plus a reversal penalty when the scan direction opposes
   the track's read direction.

The case distinctions the paper spells out (same/co-directional/
anti-directional track, forwards/backwards) all fall out of the segment
geometry: given the scan target, the scan direction and distances are
determined.  :mod:`repro.model.cases` implements the explicit 7-way
classifier for testing and exposition.

The published behavioural anchors this model reproduces (asserted in
``tests/model/test_anchors.py``):

========================================  =================
maximum locate time                       ~180 s
mean locate, BOT -> random                ~96.5 s
mean locate, random -> random             ~72.4 s
adjacent-section drop, forward tracks     ~5 s
adjacent-section drop, reverse tracks     ~25 s
dips per track                            13, one segment past each peak
========================================  =================
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    READ_SECONDS_PER_SECTION,
    REPOSITION_SECONDS,
    REVERSAL_SECONDS,
    SCAN_SECONDS_PER_SECTION,
)
from repro.geometry.tape import TapeGeometry


class LocateTimeModel:
    """Locate-time model parameterized by one tape's geometry.

    Parameters
    ----------
    geometry:
        The cartridge's :class:`~repro.geometry.TapeGeometry` — in
        practice, the key points measured by calibration
        (:mod:`repro.geometry.calibration`).
    reposition_seconds, reversal_seconds:
        Overhead constants; defaults are the calibrated package-level
        values.
    """

    def __init__(
        self,
        geometry: TapeGeometry,
        reposition_seconds: float = REPOSITION_SECONDS,
        reversal_seconds: float = REVERSAL_SECONDS,
        read_seconds_per_section: float = READ_SECONDS_PER_SECTION,
        scan_seconds_per_section: float = SCAN_SECONDS_PER_SECTION,
        segment_transfer_seconds: float | None = None,
    ) -> None:
        self.geometry = geometry
        self.reposition_seconds = float(reposition_seconds)
        self.reversal_seconds = float(reversal_seconds)
        self.read_seconds_per_section = float(read_seconds_per_section)
        self.scan_seconds_per_section = float(scan_seconds_per_section)
        if segment_transfer_seconds is None:
            # Transfer time per segment is tied to the read transport
            # speed: a nominal section passes in one read-section time.
            from repro.constants import SEGMENT_TRANSFER_SECONDS

            segment_transfer_seconds = SEGMENT_TRANSFER_SECONDS * (
                read_seconds_per_section / READ_SECONDS_PER_SECTION
            )
        self.segment_transfer_seconds = float(segment_transfer_seconds)

    # -- public API ---------------------------------------------------------

    def locate_time(self, source: int, destination: int) -> float:
        """Seconds to position the head from ``source`` to ``destination``.

        Both arguments are absolute segment numbers; the head is assumed
        to be parked at the start of ``source``, and ends positioned to
        read ``destination``.
        """
        times = self.locate_times(
            source, np.asarray([destination], dtype=np.int64)
        )
        return float(times[0])

    def locate_times(self, source: int, destinations) -> np.ndarray:
        """Vectorized :meth:`locate_time` for one source, many destinations."""
        destinations = np.asarray(destinations, dtype=np.int64)
        sources = np.asarray(source, dtype=np.int64)
        return self._times(sources, destinations)

    def times(self, sources, destinations) -> np.ndarray:
        """Elementwise locate times for paired source/destination arrays.

        ``sources[k] -> destinations[k]`` for each ``k``; used by the
        schedule estimator to cost a whole schedule in one vectorized
        call.
        """
        sources = np.asarray(sources, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
        return self._times(sources, destinations)

    def pairwise_times(self, sources, destinations) -> np.ndarray:
        """Locate-time matrix: entry ``[i, j]`` is source ``i`` to dest ``j``.

        Uses broadcasting; for ``n`` sources and ``m`` destinations the
        peak memory is a few ``n x m`` float arrays.  Callers with very
        large problems should chunk over source rows.
        """
        sources = np.asarray(sources, dtype=np.int64).reshape(-1, 1)
        destinations = np.asarray(destinations, dtype=np.int64).reshape(1, -1)
        return self._times(sources, destinations)

    def travel_sections(self, source: int, destinations) -> np.ndarray:
        """Physical head travel of each locate, in section units.

        For read-through locates this is the physical distance; for
        scan-and-read locates it is scan distance plus read-in distance
        (the head overshoots to the key point).  Feeds the wear
        accounting of :mod:`repro.drive.wear` — tape lifetime is rated
        in head passes (the paper's Section 2: 500,000 passes for DLT).
        """
        geo = self.geometry
        sources = np.asarray(source, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
        src_phys = geo.phys_of(sources)
        dst_phys = geo.phys_of(destinations)
        read_through = (
            (geo.track_of(sources) == geo.track_of(destinations))
            & (destinations >= sources)
            & (
                geo.ordinal_section_of(destinations)
                - geo.ordinal_section_of(sources)
                <= 2
            )
        )
        direct = np.abs(dst_phys - src_phys)
        target = geo.scan_target_phys(destinations)
        via_target = np.abs(target - src_phys) + np.abs(dst_phys - target)
        return np.where(read_through, direct, via_target)

    def rewind_seconds(self, segment) -> np.ndarray:
        """Rewind-to-BOT time from ``segment`` at this model's speeds."""
        from repro.constants import REWIND_OVERHEAD_SECONDS

        phys = self.geometry.phys_of(np.asarray(segment, dtype=np.int64))
        return (
            REWIND_OVERHEAD_SECONDS
            + phys * self.scan_seconds_per_section
        )

    def oracle(self):
        """Adapter with the :data:`~repro.geometry.calibration.LocateOracle`
        signature, for the calibration procedure."""

        def measure(source: int, destinations: np.ndarray) -> np.ndarray:
            return self.locate_times(source, destinations)

        return measure

    # -- core ----------------------------------------------------------------

    def _times(self, sources, destinations) -> np.ndarray:
        """Broadcasted locate-time computation.

        ``sources`` and ``destinations`` are int64 arrays (any mutually
        broadcastable shapes).
        """
        geo = self.geometry
        src_track = geo.track_of(sources)
        dst_track = geo.track_of(destinations)
        src_phys = geo.phys_of(sources)
        dst_phys = geo.phys_of(destinations)
        src_soi = geo.ordinal_section_of(sources)
        dst_soi = geo.ordinal_section_of(destinations)

        # Case 1: same track, destination at/ahead within the read-ahead
        # window of two following sections -> read straight through.
        read_through = (
            (src_track == dst_track)
            & (destinations >= sources)
            & (dst_soi - src_soi <= 2)
        )
        read_through_time = (
            np.abs(dst_phys - src_phys) * self.read_seconds_per_section
        )

        # Cases 2-7: scan to the key point two before the destination,
        # then read forward to it.
        target = geo.scan_target_phys(destinations)
        scan_dist = np.abs(target - src_phys)
        read_dist = np.abs(dst_phys - target)
        read_dir = geo.direction_of(destinations).astype(np.float64)
        reversal = (scan_dist > 1e-12) & (
            np.sign(target - src_phys) != read_dir
        )
        scan_time = (
            self.reposition_seconds
            + scan_dist * self.scan_seconds_per_section
            + read_dist * self.read_seconds_per_section
            + np.where(reversal, self.reversal_seconds, 0.0)
        )

        return np.where(read_through, read_through_time, scan_time)
