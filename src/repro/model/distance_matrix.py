"""Asymmetric locate-time distance matrices for TSP-style schedulers.

The OPT and LOSS algorithms view scheduling as an asymmetric traveling
salesman path problem (Section 4 of the paper): each request ``x`` is a
pair of cities ``x_in`` (head positioned to read ``x``) and ``x_out``
(head just past ``x`` after reading it), a read edge joins them, and a
locate edge of weight ``locate_time(x_i_out, x_j_in)`` joins every
ordered pair of distinct requests.  Collapsing the read edges leaves the
matrix built here: entry ``[i, j]`` is the locate time from the *end* of
request ``i`` to the *start* of request ``j``, with an extra first row
for the initial head position ``I``.
"""

from __future__ import annotations

import numpy as np

from repro.model.locate import LocateTimeModel

#: Row-chunk size for matrix construction; bounds peak memory to a few
#: ``chunk x n`` float arrays.
DEFAULT_CHUNK_ROWS = 1024


def out_positions(
    in_segments: np.ndarray, lengths, total_segments: int
) -> np.ndarray:
    """Head position after reading each request.

    Reading ``length`` segments starting at ``s`` parks the head at
    ``s + length``; the position is clamped to the last segment for
    requests that end at the physical end of data.
    """
    in_segments = np.asarray(in_segments, dtype=np.int64)
    lengths = np.broadcast_to(
        np.asarray(lengths, dtype=np.int64), in_segments.shape
    )
    return np.minimum(in_segments + lengths, total_segments - 1)


def schedule_distance_matrix(
    model: LocateTimeModel,
    origin: int,
    in_segments: np.ndarray,
    lengths=1,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> np.ndarray:
    """Build the ``(n + 1, n)`` locate-time matrix for a request batch.

    Row 0 holds locate times from the initial position ``origin``; row
    ``i + 1`` holds locate times from the out-position of request ``i``.
    The self-edge ``[i + 1, i]`` is set to ``+inf`` (a request cannot
    follow itself).

    Parameters
    ----------
    model:
        Locate-time model (or any wrapper with ``pairwise_times``).
    origin:
        Initial head position ``I`` (absolute segment number).
    in_segments:
        Requested segment numbers, one per request.
    lengths:
        Per-request read lengths in segments (scalar or array).
    chunk_rows:
        Number of source rows evaluated per vectorized call.
    """
    in_segments = np.asarray(in_segments, dtype=np.int64)
    n = in_segments.size
    total = model.geometry.total_segments
    sources = np.concatenate(
        (
            np.asarray([origin], dtype=np.int64),
            out_positions(in_segments, lengths, total),
        )
    )

    matrix = np.empty((n + 1, n), dtype=np.float64)
    for start in range(0, n + 1, chunk_rows):
        stop = min(start + chunk_rows, n + 1)
        matrix[start:stop] = model.pairwise_times(
            sources[start:stop], in_segments
        )
    matrix[np.arange(1, n + 1), np.arange(n)] = np.inf
    return matrix
