"""Linearized locate-cost adapter: the LTSP view of a serpentine tape.

The linear tape scheduling literature (Cardonha & Villa Real 2018;
Honoré, Simon & Suter 2021; Cardonha & Cire 2021) models a tape as a
one-dimensional track where moving the head between two longitudinal
positions costs time proportional to the distance.  The serpentine
DLT4000 model of the source paper is *almost* that: every scan-and-read
locate is dominated by the longitudinal scan distance at scan speed,
and the physical coordinate of a segment (``TapeGeometry.phys_of``) is
continuous across track turnarounds.  :class:`LinearizedModel` keeps
exactly that linear term and drops everything else:

* no repositioning overhead, no reversal penalty, no read-in leg —
  ``locate(S, D) = scan_seconds_per_section * |phys(D) - phys(S)|``;
* tracks collapse onto one longitudinal axis: two segments at the same
  physical position on different tracks are zero distance apart.

Under this cost the scheduling problem becomes the Linear Tape
Scheduling Problem, for which :mod:`repro.scheduling.ltsp` has an exact
polynomial solver — the scalable ground-truth oracle the exponential
Held–Karp OPT cannot provide past ~16 requests.  The dropped terms are
the *linearization caveats* documented in ``docs/OPTIMALITY.md``: orders
that are optimal here are merely near-optimal under the true piecewise
model, which is why :class:`~repro.scheduling.ltsp.LtspRepairScheduler`
re-polishes the linear-exact order with the Or-opt local search.

The adapter exposes the same duck-typed surface as
:class:`~repro.model.locate.LocateTimeModel` (``geometry``,
``locate_time``, ``locate_times``, ``times``, ``pairwise_times``,
``travel_sections``, ``rewind_seconds``, ``segment_transfer_seconds``),
so every scheduler and the distance-matrix builder accept it unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    SCAN_SECONDS_PER_SECTION,
    SEGMENT_TRANSFER_SECONDS,
)


class LinearizedModel:
    """Linear locate costs derived from a piecewise model's geometry.

    Parameters
    ----------
    base:
        The piecewise model being linearized (a
        :class:`~repro.model.locate.LocateTimeModel` or any wrapper
        exposing ``geometry``).  Only its geometry, scan speed, and
        transfer time are consulted.
    seconds_per_section:
        Cost of one section of longitudinal head travel.  Defaults to
        the base model's scan speed (the DLT4000's 10 s/section).
    """

    def __init__(
        self, base, *, seconds_per_section: float | None = None
    ) -> None:
        self.base = base
        self.geometry = base.geometry
        if seconds_per_section is None:
            seconds_per_section = getattr(
                base, "scan_seconds_per_section", SCAN_SECONDS_PER_SECTION
            )
        self.seconds_per_section = float(seconds_per_section)
        self.segment_transfer_seconds = float(
            getattr(
                base, "segment_transfer_seconds", SEGMENT_TRANSFER_SECONDS
            )
        )

    # -- the linear coordinate ---------------------------------------------

    def linear_position(self, segment) -> np.ndarray:
        """Longitudinal coordinate(s) of ``segment``, in section units."""
        return self.geometry.phys_of(np.asarray(segment, dtype=np.int64))

    # -- LocateTimeModel surface -------------------------------------------

    def locate_time(self, source: int, destination: int) -> float:
        """Linear locate seconds from ``source`` to ``destination``."""
        times = self.locate_times(
            source, np.asarray([destination], dtype=np.int64)
        )
        return float(times[0])

    def locate_times(self, source: int, destinations) -> np.ndarray:
        """Vectorized :meth:`locate_time`: one source, many destinations."""
        return self._times(
            np.asarray(source, dtype=np.int64),
            np.asarray(destinations, dtype=np.int64),
        )

    def times(self, sources, destinations) -> np.ndarray:
        """Elementwise linear locate times for paired arrays."""
        return self._times(
            np.asarray(sources, dtype=np.int64),
            np.asarray(destinations, dtype=np.int64),
        )

    def pairwise_times(self, sources, destinations) -> np.ndarray:
        """Linear locate-time matrix: ``[i, j]`` is source i to dest j."""
        return self._times(
            np.asarray(sources, dtype=np.int64).reshape(-1, 1),
            np.asarray(destinations, dtype=np.int64).reshape(1, -1),
        )

    def travel_sections(self, source: int, destinations) -> np.ndarray:
        """Physical travel equals linear distance under this model."""
        geo = self.geometry
        src_phys = geo.phys_of(np.asarray(source, dtype=np.int64))
        dst_phys = geo.phys_of(np.asarray(destinations, dtype=np.int64))
        return np.abs(dst_phys - src_phys)

    def rewind_seconds(self, segment) -> np.ndarray:
        """Rewind-to-BOT at the linear speed (no overhead term)."""
        phys = self.geometry.phys_of(np.asarray(segment, dtype=np.int64))
        return phys * self.seconds_per_section

    def oracle(self):
        """Calibration-oracle adapter, mirroring the piecewise model."""

        def measure(source: int, destinations: np.ndarray) -> np.ndarray:
            return self.locate_times(source, destinations)

        return measure

    # -- core ----------------------------------------------------------------

    def _times(self, sources, destinations) -> np.ndarray:
        geo = self.geometry
        distance = np.abs(geo.phys_of(destinations) - geo.phys_of(sources))
        return distance * self.seconds_per_section

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinearizedModel(seconds_per_section="
            f"{self.seconds_per_section!r})"
        )
