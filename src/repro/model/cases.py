"""Explicit classifier for the paper's seven locate-model cases.

The production model (:mod:`repro.model.locate`) computes locate times
from the scan-target geometry directly; the seven prose cases of the
paper's Section 3 are descriptions of where that geometry lands.  This
module implements the prose classification literally, which gives tests
(and readers) an independent way to cross-check the model: for each case
the scan direction and target predicted by the prose must match what the
unified formula uses.
"""

from __future__ import annotations

import enum

from repro.geometry.tape import TapeGeometry


class LocateCase(enum.Enum):
    """The paper's Section 3 model cases."""

    #: Same track, same section or one of the following two: read forward.
    READ_THROUGH = 1
    #: >2 sections forward same track / >1 section forward co-directional:
    #: scan forward to the key point two before, read forward.
    CO_SCAN_FORWARD = 2
    #: Backwards (not to the first two sections) or forwards up to one
    #: section, co-directional: scan backward to key point two before.
    CO_SCAN_BACKWARD = 3
    #: Backwards to the first or second section, co-directional: scan to
    #: the beginning of the track, read forward.
    CO_TRACK_START = 4
    #: Anti-directional, >= 2 sections forward after switching: scan
    #: forward to key point two before.
    ANTI_SCAN_FORWARD = 5
    #: Anti-directional, forwards 0-1 section or reversing (not to the
    #: first two sections): scan backward to key point two before.
    ANTI_SCAN_BACKWARD = 6
    #: Anti-directional, reversing to the first or second section: scan
    #: to the beginning of the track.
    ANTI_TRACK_START = 7


def classify(
    geometry: TapeGeometry, source: int, destination: int
) -> LocateCase:
    """Classify a ``(source, destination)`` pair into the paper's cases.

    The classification follows the prose of Section 3: "forward" is
    always toward higher segment numbers relative to the *destination
    track's* direction of travel, and distances are physical distances
    measured in sections.
    """
    geometry.check_segment(source)
    geometry.check_segment(destination)

    src_track = int(geometry.track_of(source))
    dst_track = int(geometry.track_of(destination))
    src_phys = float(geometry.phys_of(source))
    dst_phys = float(geometry.phys_of(destination))
    src_soi = int(geometry.ordinal_section_of(source))
    dst_soi = int(geometry.ordinal_section_of(destination))
    dst_dir = int(geometry.direction_of(destination))
    src_dir = int(geometry.direction_of(source))

    same_track = src_track == dst_track
    co_directional = src_dir == dst_dir

    if same_track and destination >= source and dst_soi - src_soi <= 2:
        return LocateCase.READ_THROUGH

    # Sections the head would move *forward* (in the destination track's
    # segment-order direction) after switching tracks at constant
    # physical position.
    forward_sections = (dst_phys - src_phys) * dst_dir

    if co_directional:
        if same_track and destination > source:
            # dst_soi - src_soi > 2 here, by the case-1 test above.
            return LocateCase.CO_SCAN_FORWARD
        if not same_track and forward_sections > 1.0:
            return LocateCase.CO_SCAN_FORWARD
        if dst_soi <= 1:
            return LocateCase.CO_TRACK_START
        return LocateCase.CO_SCAN_BACKWARD

    if forward_sections >= 2.0:
        return LocateCase.ANTI_SCAN_FORWARD
    if dst_soi <= 1:
        return LocateCase.ANTI_TRACK_START
    return LocateCase.ANTI_SCAN_BACKWARD
